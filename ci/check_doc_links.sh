#!/usr/bin/env bash
# Fail if any markdown doc references a repo path that does not exist.
# Checks backtick-quoted and markdown-link paths that look like files
# (docs/, ci/, src/, tests/, examples/, crates/). Runnable locally:
#
#   ./ci/check_doc_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for doc in README.md DESIGN.md ROADMAP.md EXPERIMENTS.md docs/*.md; do
    [ -f "$doc" ] || continue
    # `path/to/file.ext` in backticks, or ](path) markdown links.
    refs=$(grep -oE '(`|\()(docs|ci|src|tests|examples|crates)/[A-Za-z0-9_./-]+\.(md|rs|sh|toml|yml)' "$doc" |
        sed -E 's/^[`(]//' | sort -u || true)
    for ref in $refs; do
        if [ ! -e "$ref" ]; then
            echo "ERROR: $doc references missing path: $ref" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "ok: all doc-referenced paths exist"
fi
exit "$status"
