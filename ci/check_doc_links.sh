#!/usr/bin/env bash
# Fail if any markdown doc references a repo path that does not exist.
# Checks backtick-quoted and markdown-link paths that look like files
# (docs/, ci/, src/, tests/, examples/, crates/), and that the core doc
# set is actually present (a rename or deletion must update this list).
# Runnable locally:
#
#   ./ci/check_doc_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
required_docs="README.md DESIGN.md ROADMAP.md EXPERIMENTS.md \
docs/ALGORITHMS.md docs/ANALYSIS.md docs/OBSERVABILITY.md \
docs/PIPELINES.md docs/SERVING.md docs/TESTING.md"
for doc in $required_docs; do
    if [ ! -f "$doc" ]; then
        echo "ERROR: required doc is missing: $doc" >&2
        status=1
    fi
done
for doc in README.md DESIGN.md ROADMAP.md EXPERIMENTS.md docs/*.md; do
    [ -f "$doc" ] || continue
    # `path/to/file.ext` in backticks, or ](path) markdown links.
    refs=$(grep -oE '(`|\()(docs|ci|src|tests|examples|crates)/[A-Za-z0-9_./-]+\.(md|rs|sh|toml|yml)' "$doc" |
        sed -E 's/^[`(]//' | sort -u || true)
    for ref in $refs; do
        if [ ! -e "$ref" ]; then
            echo "ERROR: $doc references missing path: $ref" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "ok: all doc-referenced paths exist"
fi
exit "$status"
