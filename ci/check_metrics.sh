#!/usr/bin/env bash
# Fail if docs/OBSERVABILITY.md names a metric that does not exist in the
# catalog (crates/obs/src/names.rs), or if the catalog has a metric the
# doc never mentions. Keeps the documented catalog and the code from
# drifting apart; run by the CI docs job and runnable locally:
#
#   ./ci/check_metrics.sh
#
# A thin wrapper: the actual diff lives in the `ivm-lint` engine
# (crates/lint/src/catalog.rs), shared with the `metric-literal` source
# lint so both checks parse the catalog exactly the same way.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p ivm-lint -- \
    --metrics-doc docs/OBSERVABILITY.md \
    --catalog crates/obs/src/names.rs
