#!/usr/bin/env bash
# Fail if docs/OBSERVABILITY.md names a metric that does not exist in the
# catalog (crates/obs/src/names.rs), or if the catalog has a metric the
# doc never mentions. Keeps the documented catalog and the code from
# drifting apart; run by the CI docs job and runnable locally:
#
#   ./ci/check_metrics.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/OBSERVABILITY.md
CATALOG=crates/obs/src/names.rs

# Metric names look like layer.metric_name (lowercase, dot-separated).
# File-path lookalikes (filter.rs, manager.rs, ...) are excluded.
extract() {
    grep -oE '\b(filter|diff|manager|pool|wal|checkpoint)\.[a-z][a-z0-9_]*\b' "$1" |
        grep -vE '\.(rs|md|sh|toml|yml|log)$' |
        sort -u
}

doc_names=$(extract "$DOC")
catalog_names=$(extract "$CATALOG")

status=0
missing=$(comm -23 <(echo "$doc_names") <(echo "$catalog_names"))
if [ -n "$missing" ]; then
    echo "ERROR: $DOC names metrics that do not exist in $CATALOG:" >&2
    echo "$missing" | sed 's/^/  /' >&2
    status=1
fi

undocumented=$(comm -13 <(echo "$doc_names") <(echo "$catalog_names"))
if [ -n "$undocumented" ]; then
    echo "ERROR: $CATALOG defines metrics that $DOC never mentions:" >&2
    echo "$undocumented" | sed 's/^/  /' >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "ok: $(echo "$doc_names" | wc -l | tr -d ' ') metric names agree between $DOC and $CATALOG"
fi
exit "$status"
