#!/usr/bin/env bash
# Run the bench-smoke set and emit a flat JSON map of benchmark -> ns/iter.
#
#   ./ci/bench_to_json.sh [OUT.json]
#
# The smoke set is the fast, stable subset of the paper-experiment benches
# (full sweeps stay manual; see crates/bench). Budget per measurement is
# CRITERION_MEASUREMENT_MS (default 120 ms), small enough for a PR gate.
# Output pairs with ci/check_bench_regression.sh and the committed
# BENCH_baseline.json.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr.json}"
MS="${CRITERION_MEASUREMENT_MS:-120}"
SMOKE_BENCHES=(select_view relevance_filter join_view serve_qps)

raw=$(for bench in "${SMOKE_BENCHES[@]}"; do
    CRITERION_MEASUREMENT_MS="$MS" cargo bench -p ivm-bench --bench "$bench" 2>/dev/null
done)

printf '%s\n' "$raw" | awk -v ms="$MS" '
BEGIN { n = 0 }
# Bench lines look like:
#   group/id/param: 13.47 µs per iter (4455 iters)[, 1209999 elem/s]
/ per iter / {
    name = $1
    sub(/:$/, "", name)
    value = $2 + 0
    unit = $3
    mult = 1
    if (unit == "\302\265s") mult = 1e3      # µs, UTF-8
    else if (unit == "ms")   mult = 1e6
    else if (unit == "s")    mult = 1e9
    names[n] = name
    vals[n] = value * mult
    n++
}
END {
    if (n == 0) {
        print "bench_to_json: parsed zero benchmark lines" > "/dev/stderr"
        exit 1
    }
    printf "{\n  \"measurement_ms\": %d,\n  \"benchmarks\": {\n", ms
    for (i = 0; i < n; i++)
        printf "    \"%s\": %.1f%s\n", names[i], vals[i], (i < n - 1 ? "," : "")
    printf "  }\n}\n"
    printf "bench_to_json: %d benchmarks\n", n > "/dev/stderr"
}' > "$OUT"

echo "wrote $OUT" >&2
