#!/usr/bin/env bash
# Workspace static analysis gate (the `analyze` CI job; runnable locally).
#
#   ./ci/analyze.sh
#
# Three stages:
#   1. build the `ivm-lint` binary (release — the scan itself is timed);
#   2. self-test: the seeded regression fixture under
#      crates/lint/fixtures/regression MUST fail the scan, proving the
#      gate can actually catch violations;
#   3. scan the real workspace against the committed lint-baseline.toml —
#      grandfathered findings pass, anything new fails.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build ivm-lint =="
cargo build --release -q -p ivm-lint
LINT=target/release/ivm-lint

echo "== self-test: seeded regression fixture must fail =="
if "$LINT" --root crates/lint/fixtures/regression --no-baseline --quiet; then
    echo "ERROR: the seeded regression fixture scanned clean — the lint gate is broken" >&2
    exit 1
fi
echo "ok: fixture violations detected"

echo "== workspace scan =="
start_ns=$(date +%s%N)
"$LINT" --root .
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
echo "scan wall time: ${elapsed_ms} ms"
# The scan must stay interactive-fast (the PR's acceptance bar is 5 s);
# the budget guards against accidentally quadratic rules.
if [ "$elapsed_ms" -gt 5000 ]; then
    echo "ERROR: workspace scan took ${elapsed_ms} ms (> 5000 ms budget)" >&2
    exit 1
fi
