#!/usr/bin/env bash
# Workspace static analysis gate (the `analyze` CI job; runnable locally).
#
#   ./ci/analyze.sh
#
# Four stages:
#   1. build the `ivm-lint` binary (release — the scan itself is timed);
#   2. self-test: the seeded regression fixture under
#      crates/lint/fixtures/regression MUST fail the scan, proving the
#      gate can actually catch violations;
#   3. scan the real workspace against the committed lint-baseline.toml
#      and concurrency-catalog.toml — grandfathered findings pass,
#      anything new fails;
#   4. model-check the snapshot/serve protocols with `ivm-race`: both
#      clean models must verify (≥500 interleavings each), every seeded
#      foil must be caught with a replayable counterexample.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build ivm-lint =="
cargo build --release -q -p ivm-lint
LINT=target/release/ivm-lint

echo "== self-test: seeded regression fixture must fail =="
if "$LINT" --root crates/lint/fixtures/regression --no-baseline --quiet; then
    echo "ERROR: the seeded regression fixture scanned clean — the lint gate is broken" >&2
    exit 1
fi
echo "ok: fixture violations detected"

echo "== workspace scan =="
start_ns=$(date +%s%N)
"$LINT" --root .
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
echo "scan wall time: ${elapsed_ms} ms"
# The scan must stay interactive-fast (the PR's acceptance bar is 5 s);
# the budget guards against accidentally quadratic rules.
if [ "$elapsed_ms" -gt 5000 ]; then
    echo "ERROR: workspace scan took ${elapsed_ms} ms (> 5000 ms budget)" >&2
    exit 1
fi

echo "== model-check protocols (ivm-race) =="
cargo build --release -q -p ivm-race
start_ns=$(date +%s%N)
target/release/ivm-race
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
echo "model-check wall time: ${elapsed_ms} ms"
# The full DPOR sweep (two clean protocols, three foils, the litmus in
# both memory modes) finishes in well under a second; the budget only
# guards against a state-space explosion slipping into a model.
if [ "$elapsed_ms" -gt 60000 ]; then
    echo "ERROR: model checking took ${elapsed_ms} ms (> 60000 ms budget)" >&2
    exit 1
fi
