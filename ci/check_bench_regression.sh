#!/usr/bin/env bash
# Compare a PR bench run against the committed baseline; WARN on slowdowns.
#
#   ./ci/check_bench_regression.sh [BASELINE.json] [PR.json]
#
# Policy: warn-only. Shared-runner timings are too noisy to hard-fail a
# PR; a slowdown past the threshold (default 15%, override with
# BENCH_REGRESSION_PCT) prints a GitHub warning annotation and a table,
# and the job still exits 0. Hard failures are reserved for broken input
# (missing files, zero parsed benchmarks).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_baseline.json}"
PR="${2:-BENCH_pr.json}"
THRESHOLD="${BENCH_REGRESSION_PCT:-15}"

for f in "$BASELINE" "$PR"; do
    if [ ! -f "$f" ]; then
        echo "check_bench_regression: missing $f" >&2
        exit 1
    fi
done

awk -v threshold="$THRESHOLD" -v base_file="$BASELINE" -v pr_file="$PR" '
BEGIN { n = 0; file = 0 }
# Both files are the flat format bench_to_json.sh emits:
#   "group/id/param": 1234.5,
FNR == 1 { file++ }
/"measurement_ms"/ { next }
match($0, /"[^"]+": [0-9.]+/) {
    entry = substr($0, RSTART + 1, RLENGTH - 1)
    q = index(entry, "\"")
    name = substr(entry, 1, q - 1)
    value = substr(entry, q + 2) + 0
    if (file == 1) {
        base[name] = value
    } else {
        pr[name] = value
        order[n++] = name
    }
}
END {
    if (n == 0) {
        print "check_bench_regression: zero benchmarks in " pr_file > "/dev/stderr"
        exit 1
    }
    regressions = 0
    printf "%-55s %12s %12s %8s\n", "benchmark", "baseline_ns", "pr_ns", "delta"
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in base)) {
            printf "%-55s %12s %12.1f %8s\n", name, "(new)", pr[name], "-"
            continue
        }
        delta = (pr[name] - base[name]) / base[name] * 100
        flag = ""
        if (delta > threshold) {
            flag = "  <-- SLOWER"
            regressions++
            printf "::warning title=bench regression::%s is %.1f%% slower than baseline (%.1f ns -> %.1f ns)\n", \
                name, delta, base[name], pr[name]
        }
        printf "%-55s %12.1f %12.1f %+7.1f%%%s\n", name, base[name], pr[name], delta, flag
    }
    for (name in base)
        if (!(name in pr))
            printf "%-55s %12.1f %12s %8s\n", name, base[name], "(gone)", "-"
    if (regressions > 0)
        printf "\n%d benchmark(s) regressed past %s%% (warn-only; not failing the job)\n", regressions, threshold
    else
        printf "\nno regression past %s%%\n", threshold
}' "$BASELINE" "$PR"
