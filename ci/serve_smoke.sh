#!/usr/bin/env bash
# End-to-end smoke of the serving layer on loopback.
#
#   ./ci/serve_smoke.sh [OBS_JSONL]
#
# Starts `ivm-serve serve` with the demo scenario and a JSON-lines
# metrics sink, drives it with the closed-loop load generator
# (8 clients, 90% reads, SERVE_SMOKE_SECS seconds, default 5), shuts
# the server down over the wire, and then gates:
#
#   FAIL  any load-generator operation error (the binary exits nonzero)
#   FAIL  any serve.protocol_errors event in the metrics JSONL
#   FAIL  server did not exit cleanly after Shutdown
#   WARN  throughput below SERVE_SMOKE_MIN_QPS (default 10000) —
#         warn-only: shared-runner timings are too noisy to hard-fail
#
# The JSONL file is left behind for CI artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

OBS_JSONL="${1:-serve_obs.jsonl}"
SECS="${SERVE_SMOKE_SECS:-5}"
MIN_QPS="${SERVE_SMOKE_MIN_QPS:-10000}"
SERVER_LOG=$(mktemp)
LOAD_LOG=$(mktemp)
SERVER_PID=

cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
    fi
    rm -f "$SERVER_LOG" "$LOAD_LOG"
}
trap cleanup EXIT

cargo build --release -p ivm-serve --bin ivm-serve
BIN=target/release/ivm-serve

rm -f "$OBS_JSONL"
# Port 0: the kernel picks a free port; the server prints the bound addr.
"$BIN" serve --addr 127.0.0.1:0 --obs-jsonl "$OBS_JSONL" >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^ivm-serve listening on //p' "$SERVER_LOG")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "serve_smoke: server exited before binding" >&2
        cat "$SERVER_LOG" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve_smoke: server never reported its address" >&2
    cat "$SERVER_LOG" >&2
    exit 1
fi
echo "serve_smoke: server up at $ADDR (pid $SERVER_PID)"

# The load binary exits nonzero if any operation returned an error, and
# --shutdown-after sends the Shutdown command once the run completes.
"$BIN" load --addr "$ADDR" --clients 8 --read-pct 90 --secs "$SECS" \
    --shutdown-after | tee "$LOAD_LOG"

# Graceful shutdown must complete promptly — a hang here means session
# or writer threads failed to join.
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_smoke: server still running after Shutdown" >&2
    exit 1
fi
wait "$SERVER_PID" || {
    echo "serve_smoke: server exited nonzero" >&2
    cat "$SERVER_LOG" >&2
    exit 1
}
SERVER_PID=

if [ ! -s "$OBS_JSONL" ]; then
    echo "serve_smoke: metrics JSONL $OBS_JSONL is missing or empty" >&2
    exit 1
fi
if grep -q 'serve\.protocol_errors' "$OBS_JSONL"; then
    echo "serve_smoke: protocol errors recorded during the run:" >&2
    grep 'serve\.protocol_errors' "$OBS_JSONL" >&2
    exit 1
fi

QPS=$(sed -n 's/^load report: qps=\([0-9]*\).*/\1/p' "$LOAD_LOG")
if [ -z "$QPS" ]; then
    echo "serve_smoke: could not parse qps from load report" >&2
    exit 1
fi
if [ "$QPS" -lt "$MIN_QPS" ]; then
    echo "::warning title=serve throughput::serve_smoke measured ${QPS} QPS, below the ${MIN_QPS} QPS target (warn-only)"
else
    echo "serve_smoke: ${QPS} QPS (target ${MIN_QPS})"
fi

echo "serve_smoke: OK ($(wc -l < "$OBS_JSONL") metric events in $OBS_JSONL)"
