//! An interactive shell over the view manager: create relations, define
//! SPJ views with textual conditions, run transactions, and watch
//! maintenance statistics — a small REPL for exploring the paper's
//! machinery. The command interpreter lives in `ivm_repro::shell` (where
//! it is unit-tested); this binary is the read–eval–print loop.
//!
//! Run with: `cargo run --example ivm_shell`, or pipe a script:
//! `printf 'create R (A,B)\n...' | IVM_SHELL_BATCH=1 cargo run --example ivm_shell`

use std::io::{self, BufRead, Write};

use ivm_repro::shell::Shell;

fn main() {
    let mut shell = Shell::new();
    let stdin = io::stdin();
    // Crude interactivity check without extra dependencies: piped scripts
    // set IVM_SHELL_BATCH to suppress the prompt.
    let interactive = std::env::var_os("IVM_SHELL_BATCH").is_none();
    if interactive {
        println!("ivm shell — SIGMOD 1986 incremental view maintenance. Type `help`.");
    }
    loop {
        if interactive {
            print!("ivm> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim().to_string();
        if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
            break;
        }
        match shell.dispatch(&trimmed) {
            Ok(msg) if msg.is_empty() => {}
            Ok(msg) => println!("{msg}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
