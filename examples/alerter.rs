//! Alerter support — the Buneman & Clemons use case from the paper's
//! introduction: "views for the support of alerters, which monitor a
//! database and report to some user or application whether a state of the
//! database, described by the view definition, has been reached."
//!
//! A fraud-monitoring view watches a stream of account transfers from a
//! producer thread; alerts fire only when the view actually changes, and
//! the §4 relevance filter discards the bulk of the stream without doing
//! any join work at all.
//!
//! Run with: `cargo run --example alerter`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use ivm::prelude::*;

fn main() -> Result<()> {
    // transfers(XFER, ACCT, AMOUNT), watchlist(ACCT, RISK).
    let mut m = ViewManager::new();
    m.create_relation("transfers", Schema::new(["XFER", "ACCT", "AMOUNT"])?)?;
    m.create_relation("watchlist", Schema::new(["ACCT", "RISK"])?)?;
    m.load("watchlist", [[7, 9], [13, 8], [21, 10]])?;

    // Alert condition: a transfer above 10 000 by a watchlisted account
    // with risk ≥ 9.
    let alert_view = SpjExpr::new(
        ["transfers", "watchlist"],
        Condition::conjunction([Atom::gt_const("AMOUNT", 10_000), Atom::ge_const("RISK", 9)]),
        Some(vec!["XFER".into(), "ACCT".into(), "AMOUNT".into()]),
    );
    m.register_view("fraud_alerts", alert_view, RefreshPolicy::Immediate)?;

    let alerts = Arc::new(AtomicUsize::new(0));
    let alerts_in_cb = alerts.clone();
    m.on_change(
        "fraud_alerts",
        Arc::new(move |view, delta| {
            for (tuple, count) in delta.sorted() {
                if count > 0 {
                    println!("  ALERT [{view}]: suspicious transfer {tuple}");
                    alerts_in_cb.fetch_add(1, Ordering::SeqCst);
                }
            }
        }),
    )?;

    let shared = SharedViewManager::new(m);

    // Producer thread: a stream of 1000 transfers; only a handful touch a
    // high-risk account with a large amount.
    let producer = {
        let shared = shared.clone();
        thread::spawn(move || {
            for i in 0..1000i64 {
                let acct = match i % 97 {
                    0 => 7,       // risk 9 — alertable if amount is big
                    1 => 13,      // risk 8 — never alerts (RISK ≥ 9 fails)
                    n => 100 + n, // not on the watchlist
                };
                // Every 10th transfer is large; the rest are small and get
                // dropped by the relevance filter without any join work.
                let amount = if i % 10 == 0 { 20_000 + i } else { 40 + i };
                let mut txn = Transaction::new();
                txn.insert("transfers", [i, acct, amount]).unwrap();
                shared.execute(&txn).unwrap();
            }
        })
    };
    producer.join().expect("producer thread");

    let (stats, total) = shared.read(|m| {
        (
            m.stats("fraud_alerts").unwrap(),
            m.database().relation("transfers").unwrap().total_count(),
        )
    });
    println!("\nprocessed {total} transfers");
    println!(
        "relevance filter: {} checked, {} dropped as provably irrelevant ({:.1}%)",
        stats.filter.checked,
        stats.filter.irrelevant,
        100.0 * stats.filter.irrelevant as f64 / stats.filter.checked.max(1) as f64
    );
    println!(
        "maintenance runs: {} (transactions skipped outright: {})",
        stats.maintenance_runs, stats.skipped_by_filter
    );
    println!("alerts fired: {}", alerts.load(Ordering::SeqCst));

    shared.write(|m| m.verify_consistency())?;
    println!("view verified consistent with full re-evaluation ✓");
    Ok(())
}
