//! Quickstart: define base relations, register an SPJ view, run
//! transactions, and watch the two-stage maintenance pipeline work —
//! irrelevant updates filtered by §4, the rest folded in differentially
//! by §5.
//!
//! Run with: `cargo run --example quickstart`

use ivm::prelude::*;

fn main() -> Result<()> {
    // 1. Base relations: employees(EMP, DEPT, SALARY), depts(DEPT, FLOOR).
    let mut m = ViewManager::new();
    m.create_relation("employees", Schema::new(["EMP", "DEPT", "SALARY"])?)?;
    m.create_relation("depts", Schema::new(["DEPT", "FLOOR"])?)?;
    m.load(
        "employees",
        [
            [1, 10, 48_000],
            [2, 10, 95_000],
            [3, 20, 61_000],
            [4, 30, 72_000],
        ],
    )?;
    m.load("depts", [[10, 1], [20, 2], [30, 2]])?;

    // 2. A materialized SPJ view:
    //    well_paid_upstairs := π_{EMP, SALARY}(
    //        σ_{SALARY > 60000 ∧ FLOOR ≥ 2}(employees ⋈ depts))
    let expr = SpjExpr::new(
        ["employees", "depts"],
        Condition::conjunction([Atom::gt_const("SALARY", 60_000), Atom::ge_const("FLOOR", 2)]),
        Some(vec!["EMP".into(), "SALARY".into()]),
    );
    m.register_view("well_paid_upstairs", expr, RefreshPolicy::Immediate)?;

    println!("== initial materialization ==");
    println!("{}", m.view_contents("well_paid_upstairs")?);

    // 3. A transaction with a provably irrelevant update: SALARY = 30000
    //    cannot satisfy SALARY > 60000 in any database state, so the §4
    //    filter drops it before any differential work happens.
    let mut txn = Transaction::new();
    txn.insert("employees", [5, 20, 30_000])?;
    m.execute(&txn)?;
    let stats = m.stats("well_paid_upstairs")?;
    println!(
        "after irrelevant insert: filter dropped {} tuple(s), {} maintenance run(s)",
        stats.filter.irrelevant, stats.maintenance_runs
    );

    // 4. A relevant transaction: maintained differentially — only the
    //    change sets are joined, never the full base relations.
    let mut txn = Transaction::new();
    txn.insert("employees", [6, 30, 85_000])?;
    txn.delete("employees", [3, 20, 61_000])?;
    m.execute(&txn)?;

    println!("\n== after relevant transaction ==");
    println!("{}", m.view_contents("well_paid_upstairs")?);
    let stats = m.stats("well_paid_upstairs")?;
    println!(
        "maintenance work: {} (vs scanning {} base tuples for a full re-evaluation)",
        stats.diff,
        m.database().total_tuples()
    );

    // 5. The invariant everything rests on: the maintained view equals a
    //    from-scratch evaluation.
    m.verify_consistency()?;
    println!("\nview verified consistent with full re-evaluation ✓");
    Ok(())
}
