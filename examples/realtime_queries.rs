//! Real-time queries over materialized views — the Gardarin et al. use
//! case from the paper's introduction: concrete (materialized) views were
//! considered "a candidate approach for the support of real time queries
//! … discarded because of the lack of an efficient algorithm to keep the
//! concrete views up to date". This example is that missing algorithm at
//! work: a dashboard repeatedly reads a join view under a write-heavy
//! stream, and the maintained materialization answers in O(|answer|) while
//! the re-evaluating baseline pays the join on every read.
//!
//! Run with: `cargo run --release --example realtime_queries`

use std::time::Instant;

use ivm::prelude::*;

const READINGS: usize = 20_000;
const SENSORS: usize = 500;
const TXNS: usize = 400;
const QUERIES_PER_TXN: usize = 5;

fn build() -> Result<(ViewManager, SpjExpr)> {
    // readings(RID, SENSOR, VALUE), sensors(SENSOR, ZONE).
    let mut m = ViewManager::new();
    m.create_relation("readings", Schema::new(["RID", "SENSOR", "VALUE"])?)?;
    m.create_relation("sensors", Schema::new(["SENSOR", "ZONE"])?)?;
    let sensor_rows: Vec<[i64; 2]> = (0..SENSORS as i64).map(|s| [s, s % 10]).collect();
    m.load("sensors", sensor_rows)?;
    let reading_rows: Vec<[i64; 3]> = (0..READINGS as i64)
        .map(|r| [r, r % SENSORS as i64, (r * 7919) % 1000])
        .collect();
    m.load("readings", reading_rows)?;

    // Dashboard view: hot readings (VALUE > 950) in zone 3.
    let expr = SpjExpr::new(
        ["readings", "sensors"],
        Condition::conjunction([Atom::gt_const("VALUE", 950), Atom::eq_const("ZONE", 3)]),
        Some(vec!["RID".into(), "SENSOR".into(), "VALUE".into()]),
    );
    Ok((m, expr))
}

fn main() -> Result<()> {
    let (mut m, expr) = build()?;
    m.register_view("hot_zone3", expr.clone(), RefreshPolicy::Immediate)?;
    println!(
        "dashboard view materialized: {} tuples out of {READINGS} readings",
        m.view_contents("hot_zone3")?.total_count()
    );

    let mut materialized_read = std::time::Duration::ZERO;
    let mut reeval_read = std::time::Duration::ZERO;
    let mut maintenance = std::time::Duration::ZERO;
    let mut checksum = 0u64;

    let mut next_rid = READINGS as i64;
    for t in 0..TXNS {
        // A write transaction: a burst of new readings.
        let mut txn = Transaction::new();
        for k in 0..10 {
            let rid = next_rid;
            next_rid += 1;
            let sensor = ((t * 13 + k) % SENSORS) as i64;
            let value = ((t * 31 + k * 97) % 1000) as i64;
            txn.insert("readings", [rid, sensor, value])?;
        }
        let start = Instant::now();
        m.execute(&txn)?;
        maintenance += start.elapsed();

        // The dashboard polls the view several times per write.
        for _ in 0..QUERIES_PER_TXN {
            // (a) served from the materialization,
            let start = Instant::now();
            let v = m.view_contents("hot_zone3")?;
            checksum = checksum.wrapping_add(v.total_count());
            materialized_read += start.elapsed();

            // (b) the no-materialization baseline: evaluate from scratch.
            let start = Instant::now();
            let v = expr.eval(m.database())?;
            checksum = checksum.wrapping_add(v.total_count());
            reeval_read += start.elapsed();
        }
    }

    let stats = m.stats("hot_zone3")?;
    let n_q = (TXNS * QUERIES_PER_TXN) as f64;
    println!(
        "\n{TXNS} write transactions, {} dashboard queries",
        TXNS * QUERIES_PER_TXN
    );
    println!(
        "  query via materialized view : {:>10.1} µs/query",
        materialized_read.as_micros() as f64 / n_q
    );
    println!(
        "  query via re-evaluation     : {:>10.1} µs/query",
        reeval_read.as_micros() as f64 / n_q
    );
    println!(
        "  maintenance (all txns)      : {:>10.1} µs/txn",
        maintenance.as_micros() as f64 / TXNS as f64
    );
    println!(
        "  relevance filter            : {} checked, {} dropped, {} txns skipped",
        stats.filter.checked, stats.filter.irrelevant, stats.skipped_by_filter
    );
    println!("  (checksum {checksum})");

    m.verify_consistency()?;
    println!("view verified consistent with full re-evaluation ✓");
    Ok(())
}
