//! Integrity enforcement — the Hammer & Sarin application (§2 of the
//! paper, and its conclusion: "our results can be used in those contexts
//! as well"). Assertions are *error views* that must stay empty; the §4
//! relevance filter plays the role of Hammer–Sarin's compile-time
//! candidate tests, dismissing most updates without touching any data, and
//! the §5 differential engine checks the rest in time proportional to the
//! change, not the database.
//!
//! Run with: `cargo run --release --example integrity_guard`

use ivm::integrity::IntegrityMonitor;
use ivm::prelude::*;

fn main() -> Result<()> {
    // accounts(ACCT, BALANCE, TIER), limits(TIER, MAX_WITHDRAWAL).
    let mut db = Database::new();
    db.create("accounts", Schema::new(["ACCT", "BALANCE", "TIER"])?)?;
    db.create(
        "withdrawals",
        Schema::new(["WID", "ACCT", "AMOUNT", "TIER"])?,
    )?;
    db.create("limits", Schema::new(["TIER", "MAX_WITHDRAWAL"])?)?;
    db.load("limits", [[1, 1_000], [2, 10_000], [3, 100_000]])?;
    db.load(
        "accounts",
        (0..1_000i64)
            .map(|a| [a, 5_000 + (a * 137) % 50_000, 1 + a % 3])
            .collect::<Vec<_>>(),
    )?;

    let mut monitor = IntegrityMonitor::new();
    // A1: no negative balances.
    monitor.assert_empty(
        "non_negative_balance",
        SpjExpr::new(["accounts"], Atom::lt_const("BALANCE", 0).into(), None),
        &db,
    )?;
    // A2: no withdrawal above its tier's limit (cross-relation: the
    // withdrawal's TIER joins limits on TIER, error when
    // AMOUNT > MAX_WITHDRAWAL, i.e. AMOUNT ≥ MAX_WITHDRAWAL + 1).
    monitor.assert_empty(
        "withdrawal_within_limit",
        SpjExpr::new(
            ["withdrawals", "limits"],
            Atom::cmp_attr("AMOUNT", CompOp::Gt, "MAX_WITHDRAWAL", 0).into(),
            None,
        ),
        &db,
    )?;

    // A stream of candidate transactions: mostly small, legal
    // withdrawals; a few violators.
    let mut accepted = 0;
    let mut rejected = 0;
    for w in 0..2_000i64 {
        let acct = w % 1_000;
        let tier = 1 + acct % 3;
        // Every 400th withdrawal tries to exceed even the top-tier limit.
        let amount = if w % 400 == 399 {
            150_000
        } else {
            50 + w % 800
        };
        let mut txn = Transaction::new();
        txn.insert("withdrawals", [w, acct, amount, tier])?;
        match monitor.apply_checked(&mut db, &txn)? {
            Ok(()) => accepted += 1,
            Err(violations) => {
                rejected += 1;
                for v in &violations {
                    println!(
                        "REJECTED txn {w}: assertion {} with witness {}",
                        v.assertion, v.witnesses[0].0
                    );
                }
            }
        }
    }

    let s = monitor.stats();
    println!(
        "\n{} transactions: {accepted} accepted, {rejected} rejected",
        s.checked
    );
    println!(
        "assertion checks skipped by the relevance filter: {} of {} (error views never evaluated)",
        s.skipped_by_filter,
        s.checked * 2
    );
    println!("differential evaluations actually run: {}", s.evaluated);
    println!(
        "withdrawals table now holds {} rows; no violation ever reached it ✓",
        db.relation("withdrawals")?.total_count()
    );
    Ok(())
}
