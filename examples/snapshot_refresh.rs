//! Snapshot refresh (§6): "It is also possible to envision a mechanism in
//! which materialized views are updated periodically or only on demand.
//! Such materialized views are known as snapshots [AL80] and their
//! maintenance mechanism as snapshot refresh. The approach proposed in
//! this paper also applies to this environment."
//!
//! A reporting snapshot over a sales join is refreshed every N
//! transactions; the accumulated net changes are folded in with one
//! differential pass per refresh. The example contrasts per-refresh work
//! across refresh periods and against full recomputation — the System R*
//! style trade-off.
//!
//! Run with: `cargo run --release --example snapshot_refresh`

use std::time::Instant;

use ivm::prelude::*;

const ITEMS: i64 = 200;
const SALES: i64 = 10_000;
const TXNS: usize = 600;

fn build_manager() -> Result<ViewManager> {
    // sales(SID, ITEM, QTY), items(ITEM, PRICE).
    let mut m = ViewManager::new();
    m.create_relation("sales", Schema::new(["SID", "ITEM", "QTY"])?)?;
    m.create_relation("items", Schema::new(["ITEM", "PRICE"])?)?;
    m.load(
        "items",
        (0..ITEMS)
            .map(|i| [i, 5 + (i * 37) % 500])
            .collect::<Vec<_>>(),
    )?;
    m.load(
        "sales",
        (0..SALES)
            .map(|s| [s, s % ITEMS, 1 + (s * 13) % 9])
            .collect::<Vec<_>>(),
    )?;
    Ok(m)
}

fn snapshot_expr() -> SpjExpr {
    // Big-ticket snapshot: sales of items priced above 400.
    SpjExpr::new(
        ["sales", "items"],
        Atom::gt_const("PRICE", 400).into(),
        Some(vec![
            "SID".into(),
            "ITEM".into(),
            "QTY".into(),
            "PRICE".into(),
        ]),
    )
}

fn run_with_period(period: usize) -> Result<(f64, f64, usize)> {
    let mut m = build_manager()?;
    m.register_view("big_ticket", snapshot_expr(), RefreshPolicy::Deferred)?;

    let mut refresh_time = std::time::Duration::ZERO;
    let mut refreshes = 0usize;
    let mut next_sid = SALES;
    for t in 0..TXNS {
        let mut txn = Transaction::new();
        for k in 0..5 {
            let sid = next_sid;
            next_sid += 1;
            txn.insert("sales", [sid, (sid * 7 + k) % ITEMS, 1 + (t as i64 % 9)])?;
        }
        // Also retire an old sale now and then.
        if t % 3 == 0 {
            txn.delete(
                "sales",
                [
                    t as i64 * 2,
                    (t as i64 * 2) % ITEMS,
                    1 + (t as i64 * 2 * 13) % 9,
                ],
            )?;
        }
        m.execute(&txn)?;

        if (t + 1) % period == 0 {
            let start = Instant::now();
            m.refresh("big_ticket")?;
            refresh_time += start.elapsed();
            refreshes += 1;
        }
    }
    // Final refresh so the comparison is fair.
    let start = Instant::now();
    m.refresh("big_ticket")?;
    refresh_time += start.elapsed();
    refreshes += 1;
    m.verify_consistency()?;

    let per_refresh = refresh_time.as_micros() as f64 / refreshes as f64;
    let per_txn = refresh_time.as_micros() as f64 / TXNS as f64;
    Ok((per_refresh, per_txn, refreshes))
}

fn main() -> Result<()> {
    println!("snapshot refresh cost vs refresh period ({TXNS} transactions total)\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "period", "refreshes", "µs/refresh", "µs/txn"
    );
    for period in [1usize, 5, 20, 100, 300] {
        let (per_refresh, per_txn, refreshes) = run_with_period(period)?;
        println!("{period:>8} {refreshes:>10} {per_refresh:>14.1} {per_txn:>14.1}");
    }

    // Baseline: full recomputation at the same cadence (period 20).
    let mut m = build_manager()?;
    let expr = snapshot_expr();
    let mut full_time = std::time::Duration::ZERO;
    let mut next_sid = SALES;
    let mut recomputes = 0usize;
    for t in 0..TXNS {
        let mut txn = Transaction::new();
        for k in 0..5 {
            let sid = next_sid;
            next_sid += 1;
            txn.insert("sales", [sid, (sid * 7 + k) % ITEMS, 1 + (t as i64 % 9)])?;
        }
        m.execute(&txn)?;
        if (t + 1) % 20 == 0 {
            let start = Instant::now();
            let v = ivm::full_reval::recompute(&expr, m.database())?;
            full_time += start.elapsed();
            recomputes += 1;
            std::hint::black_box(v.total_count());
        }
    }
    println!(
        "\nfull recomputation at period 20: {:.1} µs/refresh ({} refreshes)",
        full_time.as_micros() as f64 / recomputes as f64,
        recomputes
    );
    println!("\n(differential snapshot refresh scales with the accumulated change set;\n full recomputation re-joins all {SALES}+ sales every time)");
    Ok(())
}
