//! Kill-and-recover demonstration of the durability layer.
//!
//! The example re-invokes itself as a child process that opens a durable
//! [`ViewManager`], runs a deterministic workload with a mid-stream
//! checkpoint, and then dies with `std::process::abort()` — no clean
//! shutdown, no final flush. The parent then tears the last WAL frame
//! (simulating a write that was in flight when the process died),
//! recovers, and checks the result against an uninterrupted in-memory run
//! of the same workload.
//!
//! Run with: `cargo run --example crash_recovery`

use ivm::prelude::*;

const CHILD_ENV: &str = "IVM_CRASH_RECOVERY_CHILD";
const DIR_ENV: &str = "IVM_CRASH_RECOVERY_DIR";
const TOTAL_TXNS: i64 = 40;
const CHECKPOINT_AT: i64 = 15;

fn setup(m: &mut ViewManager) -> Result<()> {
    m.create_relation("orders", Schema::new(["ID", "ITEM", "QTY"])?)?;
    m.create_relation("items", Schema::new(["ITEM", "PRICE"])?)?;
    m.load("items", [[1, 5], [2, 9], [3, 20]])?;
    // big_orders := σ_{QTY > 3}(orders ⋈ items), projected to (ID, PRICE).
    let expr = SpjExpr::new(
        ["orders", "items"],
        Atom::gt_const("QTY", 3).into(),
        Some(vec!["ID".into(), "PRICE".into()]),
    );
    m.register_view("big_orders", expr, RefreshPolicy::Immediate)?;
    Ok(())
}

/// The i-th workload transaction, identical in child and reference runs.
fn txn(i: i64) -> Transaction {
    let mut t = Transaction::new();
    t.insert("orders", [i, i % 3 + 1, i % 7])
        .expect("static schema");
    if i % 5 == 4 {
        // Every fifth step retracts the order placed four steps earlier.
        t.delete("orders", [i - 4, (i - 4) % 3 + 1, (i - 4) % 7])
            .expect("static schema");
    }
    t
}

fn child(dir: &str) -> Result<()> {
    let mut m = ViewManager::open(dir)?;
    setup(&mut m)?;
    for i in 0..TOTAL_TXNS {
        if i == CHECKPOINT_AT {
            m.checkpoint()?;
        }
        m.execute(&txn(i))?;
    }
    // Die with the WAL synced but no shutdown handshake of any kind.
    std::process::abort();
}

fn main() -> Result<()> {
    if let Ok(dir) = std::env::var(DIR_ENV) {
        if std::env::var(CHILD_ENV).is_ok() {
            return child(&dir);
        }
    }

    let dir = ivm_storage::temp::scratch_dir("crash-recovery-example");
    let exe = std::env::current_exe().expect("own executable path");
    println!("storage dir: {}", dir.display());

    let status = std::process::Command::new(exe)
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, &dir)
        .status()
        .expect("spawn child");
    println!(
        "child ran {TOTAL_TXNS} transaction(s), checkpointed at {CHECKPOINT_AT}, \
         then aborted (status: {status})"
    );
    assert!(!status.success(), "child was supposed to crash");

    // Simulate a torn in-flight write: rip the last few bytes off the log.
    let wal = dir.join(ivm_storage::WAL_FILE);
    let len = ivm_storage::fault::file_len(&wal).expect("wal exists");
    ivm_storage::fault::truncate_file(&wal, len - 5).expect("tear wal tail");
    println!("tore the final WAL frame ({len} -> {} bytes)", len - 5);

    // Recover.
    let recovered = ViewManager::open(&dir)?;
    let report = recovered
        .recovery_report()
        .expect("durable manager has a report")
        .clone();
    println!(
        "\nrecovered: checkpoint {:?} (lsn {}), {} WAL record(s) replayed \
         differentially, torn tail: {}",
        report.checkpoint_seq,
        report.checkpoint_lsn,
        report.wal_records_replayed,
        report.wal_truncated.as_deref().unwrap_or("none"),
    );

    // Reference: the same workload, minus the torn-off final transaction,
    // in one uninterrupted in-memory run.
    let mut reference = ViewManager::new();
    setup(&mut reference)?;
    for i in 0..TOTAL_TXNS - 1 {
        reference.execute(&txn(i))?;
    }
    assert_eq!(
        recovered.database().relation("orders")?,
        reference.database().relation("orders")?,
        "base relation diverged"
    );
    assert_eq!(
        recovered.view_contents("big_orders")?,
        reference.view_contents("big_orders")?,
        "view materialization diverged"
    );
    assert_eq!(
        recovered.stats("big_orders")?.full_recomputes,
        0,
        "recovery re-evaluated big_orders instead of replaying differentially"
    );

    let mut recovered = recovered;
    recovered.verify_consistency()?;
    println!(
        "recovered state equals the uninterrupted run (minus the torn transaction) \
         and is consistent with full re-evaluation ✓"
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
