//! Root package of the SIGMOD 1986 IVM reproduction.
//!
//! The library code lives in `crates/` (`ivm`, `ivm-relational`,
//! `ivm-satisfiability`); this package hosts the integration tests
//! (`tests/`), the runnable examples (`examples/`) and the interactive
//! [`shell`] they share.

#![warn(missing_docs)]

pub mod shell;
