//! The command interpreter behind `examples/ivm_shell.rs`.
//!
//! Commands (one per line; `#` starts a comment):
//!
//! ```text
//! create <rel> (<attrs>)                     create a base relation
//! load <rel> (<tuple>) [(<tuple>)...]        bulk-load rows
//! view <name> [deferred|ondemand] = from <rels> [where <cond>] [project <attrs>]
//!                                            (operands may be previously defined views)
//! begin / insert <rel> (<tuple>) / delete <rel> (<tuple>) / commit
//! insert|delete outside begin..commit run as single-op transactions
//! show <rel-or-view>                         print contents
//! views                                      dependency DAG with per-node stats
//! stats <view>                               per-view maintenance statistics
//! stats                                      session-wide metrics snapshot
//! refresh <view>                             fold pending changes in
//! check <rel> (<tuple>) against <view>       Theorem 4.1 relevance verdict
//! analyze [<view> | from <body>]             definition-time static analysis
//! verify                                     compare views vs full re-eval
//! open <dir>                                 switch to a durable session
//! checkpoint                                 atomic snapshot of the session
//! wal-stats                                  WAL / checkpoint counters
//! serve <addr>                               serve this session over TCP and attach to it
//! connect <addr>                             attach to a running ivm-serve server
//! disconnect                                 detach (stops the server `serve` started)
//! help
//! ```
//!
//! Every command also accepts a psql-style `\` prefix (`\checkpoint`).
//!
//! While attached to a server (`serve`/`connect`), data commands —
//! `create`, `load`, `view`, `insert`/`delete`/`begin`/`commit`, `show`,
//! `refresh`, `stats` — are routed over the wire (see `docs/SERVING.md`);
//! `show` reads the server's published snapshot, so it only resolves
//! view names. Local-only commands (`open`, `checkpoint`, `analyze`,
//! ...) ask you to `disconnect` first.
//!
//! The shell keeps an [`InMemoryRecorder`] attached to its manager, so
//! `\stats` (no argument) prints the full metric snapshot — every
//! `filter.*`, `diff.*`, `manager.*`, `pool.*` and `wal.*` counter plus
//! the `execute/...` span tree documented in `docs/OBSERVABILITY.md`.

use std::sync::Arc;

use ivm::prelude::*;
use ivm_relational::parser::{parse_condition, parse_schema, parse_tuple};

/// An attached serving session: the wire client, plus the in-process
/// [`ivm_serve::Server`] when this shell started it (`serve` vs
/// `connect`).
struct Remote {
    client: ivm_serve::Client,
    addr: String,
    /// `Some` when `serve` started the server in-process: `disconnect`
    /// then stops it and takes the [`ViewManager`] back.
    server: Option<ivm_serve::Server>,
}

/// An interactive session: a [`ViewManager`] plus an optional open
/// transaction.
pub struct Shell {
    manager: ViewManager,
    /// Session-wide metrics backend; `\stats` prints its snapshot.
    recorder: Arc<InMemoryRecorder>,
    pending: Option<Transaction>,
    /// When attached, data commands route over the wire.
    remote: Option<Remote>,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    /// A fresh session over an empty database.
    pub fn new() -> Self {
        let recorder = Arc::new(InMemoryRecorder::new());
        Shell {
            manager: ViewManager::new().with_recorder(recorder.clone()),
            recorder,
            pending: None,
            remote: None,
        }
    }

    /// Access the underlying manager (e.g. for inspection in tests).
    pub fn manager(&self) -> &ViewManager {
        &self.manager
    }

    /// The session metrics recorder behind `\stats`.
    pub fn recorder(&self) -> &Arc<InMemoryRecorder> {
        &self.recorder
    }

    /// Interpret one command line, returning the text to print.
    pub fn dispatch(&mut self, line: &str) -> Result<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        // psql-style `\checkpoint` etc. are accepted as aliases.
        let line = line.strip_prefix('\\').unwrap_or(line);
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let cmd = cmd.to_ascii_lowercase();
        if self.remote.is_some() {
            return self.dispatch_remote(&cmd, rest);
        }
        match cmd.as_str() {
            "serve" => return self.cmd_serve(rest),
            "connect" => return self.cmd_connect(rest),
            "disconnect" => return Ok("not connected".into()),
            _ => {}
        }
        match cmd.as_str() {
            "create" => self.cmd_create(rest),
            "load" => self.cmd_load(rest),
            "view" => self.cmd_view(rest),
            "begin" => {
                if self.pending.is_some() {
                    return Ok("already in a transaction".into());
                }
                self.pending = Some(Transaction::new());
                Ok("transaction started".into())
            }
            "insert" => self.cmd_change(rest, true),
            "delete" => self.cmd_change(rest, false),
            "commit" => match self.pending.take() {
                None => Ok("no open transaction".into()),
                Some(txn) => {
                    self.manager.execute(&txn)?;
                    Ok(format!("committed {} change(s)", txn.size()))
                }
            },
            "show" => self.cmd_show(rest),
            "views" => self.cmd_views(),
            "stats" => {
                if rest.is_empty() {
                    Ok(self.recorder.snapshot().to_string())
                } else {
                    self.cmd_stats(rest)
                }
            }
            "refresh" => {
                self.manager.refresh(rest)?;
                Ok(format!("view {rest} refreshed"))
            }
            "check" => self.cmd_check(rest),
            "analyze" => self.cmd_analyze(rest),
            "dump" => self.dump_script(),
            "save" => {
                let script = self.dump_script()?;
                std::fs::write(rest, script)
                    .map_err(|e| parse_err(format!("cannot write {rest}: {e}")))?;
                Ok(format!("saved to {rest}"))
            }
            "source" => {
                let script = std::fs::read_to_string(rest)
                    .map_err(|e| parse_err(format!("cannot read {rest}: {e}")))?;
                let mut executed = 0;
                for line in script.lines() {
                    let out = self.dispatch(line)?;
                    if !out.is_empty() {
                        executed += 1;
                    }
                }
                Ok(format!("sourced {rest}: {executed} command(s)"))
            }
            "verify" => {
                self.manager.verify_consistency()?;
                Ok("all views consistent with full re-evaluation ✓".into())
            }
            "open" => self.cmd_open(rest),
            "checkpoint" => {
                let seq = self.manager.checkpoint()?;
                Ok(format!("checkpoint {seq} written"))
            }
            "wal-stats" => self.cmd_wal_stats(),
            "help" => Ok(HELP.trim().to_string()),
            "quit" | "exit" => Ok("bye".into()),
            other => Ok(format!("unknown command {other:?} — try `help`")),
        }
    }

    fn cmd_create(&mut self, rest: &str) -> Result<String> {
        let (name, schema_text) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| parse_err("usage: create <rel> (<attrs>)"))?;
        let schema = parse_schema(schema_text)?;
        self.manager.create_relation(name, schema.clone())?;
        Ok(format!("created {name} {schema}"))
    }

    fn cmd_load(&mut self, rest: &str) -> Result<String> {
        let (name, tuples_text) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| parse_err("usage: load <rel> (<tuple>) [(<tuple>)...]"))?;
        let mut rows = Vec::new();
        for part in split_tuples(tuples_text)? {
            rows.push(parse_tuple(&part)?);
        }
        let n = rows.len();
        self.manager.load(name, rows)?;
        Ok(format!("loaded {n} row(s) into {name}"))
    }

    fn cmd_view(&mut self, rest: &str) -> Result<String> {
        // view <name> [deferred|ondemand] = from R, S [where …] [project …]
        let (head, body) = rest
            .split_once('=')
            .ok_or_else(|| parse_err("usage: view <name> [deferred|ondemand] = from ..."))?;
        let mut head_parts = head.split_whitespace();
        let name = head_parts
            .next()
            .ok_or_else(|| parse_err("view needs a name"))?;
        let policy = match head_parts.next() {
            None => RefreshPolicy::Immediate,
            Some(p) if p.eq_ignore_ascii_case("deferred") => RefreshPolicy::Deferred,
            Some(p) if p.eq_ignore_ascii_case("ondemand") => RefreshPolicy::OnDemand,
            Some(p) => return Err(parse_err(format!("unknown policy {p:?}"))),
        };
        let expr = parse_view_body(body)?;
        // Definition-time static analysis (Frontend B of `ivm-lint`): a
        // statically-unsatisfiable condition means the materialization is
        // empty for every database instance — registering it is a bug in
        // the definition, so the shell refuses outright. Softer findings
        // (dead disjuncts, redundant atoms) register fine but warn.
        let analysis = ivm_lint::analyze_view(name, &expr, self.manager.database());
        if !analysis.satisfiable {
            return Err(parse_err(format!(
                "view {name} rejected: condition is statically unsatisfiable \
                 (empty for every database instance)\n{analysis}"
            )));
        }
        self.manager.register_view(name, expr.clone(), policy)?;
        let mut out = format!("registered {name} := {expr}");
        if !analysis.is_clean() {
            out.push_str(&format!(
                "\nwarning: definition-time findings (run `\\analyze {name}`):\n{}",
                analysis.to_string().trim_end()
            ));
        }
        Ok(out)
    }

    /// `analyze` — definition-time static analysis of view definitions
    /// (Frontend B of `ivm-lint`). Three forms:
    ///
    /// * `analyze` — every registered view, plus the structural DAG
    ///   analysis of the whole definition set (strata, reachability,
    ///   shared select-join cores)
    /// * `analyze <view>` — one registered view
    /// * `analyze from …` — an ad-hoc candidate definition, without
    ///   registering it (the only way to inspect the full report of an
    ///   unsatisfiable definition, since `view` refuses to register one)
    fn cmd_analyze(&self, rest: &str) -> Result<String> {
        if rest.to_ascii_lowercase().starts_with("from") {
            let expr = parse_view_body(rest)?;
            let r = ivm_lint::analyze_view("<candidate>", &expr, self.manager.database());
            return Ok(r.to_string().trim_end().to_string());
        }
        let names: Vec<&str> = if rest.is_empty() {
            self.manager.view_names().collect()
        } else {
            if !self.manager.view_names().any(|n| n == rest) {
                return Err(parse_err(format!("unknown view `{rest}`")));
            }
            vec![rest]
        };
        if names.is_empty() {
            return Ok("no views registered — try `analyze from R where ...`".into());
        }
        let mut out = String::new();
        let mut findings = 0;
        let mut defs: Vec<(String, SpjExpr)> = Vec::new();
        for name in names {
            let Ok(expr) = self.manager.view_expr(name) else {
                // Tree views have no SPJ definition to analyze.
                out.push_str(&format!("view {name}: tree view, skipped\n"));
                continue;
            };
            let r = ivm_lint::analyze_view(name, &expr, self.manager.database());
            findings += r.to_report().findings.len();
            out.push_str(&r.to_string());
            defs.push((name.to_owned(), expr));
        }
        // Whole-set structural analysis: how the definitions stack into a
        // DAG and where cores coincide. The registry is acyclic by
        // construction, so this reports strata/sharing, never cycles.
        if rest.is_empty() && !defs.is_empty() {
            let dag = ivm_lint::analyze_dag(
                defs.iter().map(|(n, e)| (n.as_str(), e)),
                self.manager.database(),
            );
            findings += dag.to_report().findings.len();
            out.push_str(&dag.to_string());
        }
        out.push_str(&format!("{findings} definition-time finding(s)"));
        Ok(out)
    }

    /// `views` — the dependency DAG, stratum by stratum: every node
    /// (internal shared cores included), its operands and dependents,
    /// and per-node maintenance statistics from the last run.
    fn cmd_views(&self) -> Result<String> {
        use std::fmt::Write as _;
        let dag = self.manager.dag();
        let spj: std::collections::BTreeSet<&str> = dag.iter().map(|n| n.name.as_str()).collect();
        let tree: Vec<&str> = self
            .manager
            .view_names()
            .filter(|n| !spj.contains(n))
            .collect();
        if dag.is_empty() && tree.is_empty() {
            return Ok("no views registered".into());
        }
        let mut out = String::new();
        let mut cur = usize::MAX;
        for node in &dag {
            if node.stratum != cur {
                cur = node.stratum;
                writeln!(out, "stratum {cur}:").expect("write to string");
            }
            let role = if node.shared { " [shared core]" } else { "" };
            writeln!(
                out,
                "  {}{role} := {} [{}, {} row(s)]",
                node.name,
                node.user_expr,
                policy_name(node.policy),
                node.rows
            )
            .expect("write to string");
            let ops: Vec<String> = node
                .effective_expr
                .relations
                .iter()
                .map(|op| {
                    if spj.contains(op.as_str()) {
                        format!("{op} (view)")
                    } else {
                        op.clone()
                    }
                })
                .collect();
            let feeds = if node.dependents.is_empty() {
                String::new()
            } else {
                format!("; feeds {}", node.dependents.join(", "))
            };
            writeln!(
                out,
                "      operands {}{feeds}; {} run(s), {} full, last Δ {} tuple(s), {} row(s) evaluated",
                ops.join(", "),
                node.stats.maintenance_runs,
                node.stats.full_recomputes,
                node.stats.last_delta_tuples,
                node.stats.last_rows_evaluated,
            )
            .expect("write to string");
        }
        for name in tree {
            let rows = self.manager.view_contents(name)?.len();
            writeln!(out, "tree view {name} [{rows} row(s); no SPJ plan]")
                .expect("write to string");
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_change(&mut self, rest: &str, is_insert: bool) -> Result<String> {
        let (name, tuple_text) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| parse_err("usage: insert|delete <rel> (<tuple>)"))?;
        let tuple = parse_tuple(tuple_text)?;
        match &mut self.pending {
            Some(txn) => {
                if is_insert {
                    txn.insert(name, tuple)?;
                } else {
                    txn.delete(name, tuple)?;
                }
                Ok("queued".into())
            }
            None => {
                let mut txn = Transaction::new();
                if is_insert {
                    txn.insert(name, tuple)?;
                } else {
                    txn.delete(name, tuple)?;
                }
                self.manager.execute(&txn)?;
                Ok("applied".into())
            }
        }
    }

    fn cmd_show(&mut self, rest: &str) -> Result<String> {
        if self.manager.view_names().any(|v| v == rest) {
            let contents = self.manager.query(rest)?;
            return Ok(format!("{contents}"));
        }
        Ok(format!("{}", self.manager.database().relation(rest)?))
    }

    fn cmd_stats(&self, rest: &str) -> Result<String> {
        let s = self.manager.stats(rest)?;
        Ok(format!(
            "txns seen {}, maintenance runs {}, skipped by filter {}, full recomputes {}\n\
             filter: {} checked / {} relevant / {} irrelevant\n\
             engine: {}",
            s.transactions_seen,
            s.maintenance_runs,
            s.skipped_by_filter,
            s.full_recomputes,
            s.filter.checked,
            s.filter.relevant,
            s.filter.irrelevant,
            s.diff,
        ))
    }

    fn cmd_open(&mut self, rest: &str) -> Result<String> {
        if rest.is_empty() {
            return Err(parse_err("usage: open <dir>"));
        }
        if self.pending.is_some() {
            return Err(parse_err("commit or discard the open transaction first"));
        }
        self.manager = ViewManager::open(rest)?.with_recorder(self.recorder.clone());
        let report = self.manager.recovery_report().cloned().unwrap_or_default();
        let mut out = format!("opened {rest}");
        match report.checkpoint_seq {
            Some(seq) => out.push_str(&format!(
                ": checkpoint {seq} (lsn {}) restored",
                report.checkpoint_lsn
            )),
            None => out.push_str(": no checkpoint"),
        }
        out.push_str(&format!(
            ", {} WAL record(s) replayed",
            report.wal_records_replayed
        ));
        if report.checkpoints_skipped > 0 {
            out.push_str(&format!(
                ", {} corrupt checkpoint(s) skipped",
                report.checkpoints_skipped
            ));
        }
        if let Some(why) = &report.wal_truncated {
            out.push_str(&format!("\nWAL tail truncated: {why}"));
        }
        Ok(out)
    }

    fn cmd_wal_stats(&self) -> Result<String> {
        let Some(status) = self.manager.durability_status() else {
            return Ok("in-memory session — no WAL (use `open <dir>`)".into());
        };
        // The headline size is re-read from the live file: cumulative
        // append counters keep growing across checkpoints, while
        // compaction shrinks the file, so the two diverge the moment a
        // checkpoint truncates the log.
        Ok(format!(
            "dir {}\nwal file: {} byte(s), next lsn {}\n\
             appended since open: {} record(s), {} byte(s), {} sync(s)\n\
             compaction: {} pass(es), {} byte(s) reclaimed\n\
             {} txn(s) since last checkpoint",
            status.dir.display(),
            status.wal_file_bytes,
            status.next_lsn,
            status.wal.records_appended,
            status.wal.bytes_appended,
            status.wal.syncs,
            status.wal.compactions,
            status.wal.bytes_reclaimed,
            status.txns_since_checkpoint,
        ))
    }

    fn cmd_check(&self, rest: &str) -> Result<String> {
        // check <rel> (<tuple>) against <view>
        let lower = rest.to_ascii_lowercase();
        let pos = lower
            .find(" against ")
            .ok_or_else(|| parse_err("usage: check <rel> (<tuple>) against <view>"))?;
        let (lhs, view_name) = (rest[..pos].trim(), rest[pos + 9..].trim());
        let (rel, tuple_text) = lhs
            .split_once(char::is_whitespace)
            .ok_or_else(|| parse_err("usage: check <rel> (<tuple>) against <view>"))?;
        let tuple = parse_tuple(tuple_text)?;
        let v = self.manager.view_expr(view_name)?;
        let filter = RelevanceFilter::new(&v, self.manager.database(), rel)?;
        if filter.is_relevant(&tuple)? {
            Ok(format!(
                "{tuple} is RELEVANT to {view_name} (may affect it in some state)"
            ))
        } else {
            Ok(format!(
                "{tuple} is IRRELEVANT to {view_name} (provably, in every database state)"
            ))
        }
    }

    /// `serve <addr>` — move this session's [`ViewManager`] into an
    /// in-process [`ivm_serve::Server`] and attach the shell to it over
    /// TCP. Other clients (another shell's `connect`, `ivm-serve load`)
    /// can attach concurrently; `disconnect` stops the server and takes
    /// the session back.
    fn cmd_serve(&mut self, rest: &str) -> Result<String> {
        if rest.is_empty() {
            return Err(parse_err("usage: serve <host:port> (port 0 for ephemeral)"));
        }
        if self.pending.is_some() {
            return Err(parse_err("commit or discard the open transaction first"));
        }
        let manager = std::mem::take(&mut self.manager);
        let server = match ivm_serve::Server::start(manager, rest) {
            Ok(s) => s,
            Err(e) => return Err(remote_err(e)),
        };
        let addr = server.addr().to_string();
        let client = ivm_serve::Client::connect(addr.as_str()).map_err(remote_err)?;
        self.remote = Some(Remote {
            client,
            addr: addr.clone(),
            server: Some(server),
        });
        Ok(format!(
            "serving on {addr}; shell attached (disconnect to stop)"
        ))
    }

    /// `connect <addr>` — attach to an already-running `ivm-serve`
    /// server. The local session is untouched; `disconnect` detaches and
    /// leaves the server running.
    fn cmd_connect(&mut self, rest: &str) -> Result<String> {
        if rest.is_empty() {
            return Err(parse_err("usage: connect <host:port>"));
        }
        let client = ivm_serve::Client::connect(rest).map_err(remote_err)?;
        self.remote = Some(Remote {
            client,
            addr: rest.to_string(),
            server: None,
        });
        Ok(format!("connected to {rest}"))
    }

    /// Command interpretation while attached to a server: data commands
    /// route over the wire, everything else is local-only.
    fn dispatch_remote(&mut self, cmd: &str, rest: &str) -> Result<String> {
        match cmd {
            "disconnect" => return self.cmd_disconnect(),
            "serve" | "connect" => {
                let addr = self
                    .remote
                    .as_ref()
                    .map(|r| r.addr.clone())
                    .unwrap_or_default();
                return Err(parse_err(format!(
                    "already attached to {addr} — disconnect first"
                )));
            }
            "help" => return Ok(HELP.trim().to_string()),
            "quit" | "exit" => return Ok("bye (still attached — server keeps running)".into()),
            _ => {}
        }
        let Some(remote) = self.remote.as_mut() else {
            return Err(parse_err("not connected"));
        };
        let client = &mut remote.client;
        let out = match cmd {
            "create" => {
                let (name, schema_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| parse_err("usage: create <rel> (<attrs>)"))?;
                let schema = parse_schema(schema_text)?;
                client
                    .create_relation(name, schema.clone())
                    .map(|()| format!("created {name} {schema} (remote)"))
            }
            "load" => {
                let (name, tuples_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| parse_err("usage: load <rel> (<tuple>) [(<tuple>)...]"))?;
                let mut txn = Transaction::new();
                let mut n = 0usize;
                for part in split_tuples(tuples_text)? {
                    txn.insert(name, parse_tuple(&part)?)?;
                    n += 1;
                }
                client
                    .execute(txn)
                    .map(|_| format!("loaded {n} row(s) into {name} (remote)"))
            }
            "view" => {
                let (head, body) = rest.split_once('=').ok_or_else(|| {
                    parse_err("usage: view <name> [deferred|ondemand] = from ...")
                })?;
                let mut head_parts = head.split_whitespace();
                let name = head_parts
                    .next()
                    .ok_or_else(|| parse_err("view needs a name"))?;
                let policy = match head_parts.next() {
                    None => RefreshPolicy::Immediate,
                    Some(p) if p.eq_ignore_ascii_case("deferred") => RefreshPolicy::Deferred,
                    Some(p) if p.eq_ignore_ascii_case("ondemand") => RefreshPolicy::OnDemand,
                    Some(p) => return Err(parse_err(format!("unknown policy {p:?}"))),
                };
                let expr = parse_view_body(body)?;
                client
                    .register_view(name, expr.clone(), policy)
                    .map(|()| format!("registered {name} := {expr} (remote)"))
            }
            "begin" => {
                if self.pending.is_some() {
                    return Ok("already in a transaction".into());
                }
                self.pending = Some(Transaction::new());
                return Ok("transaction started".into());
            }
            "insert" | "delete" => {
                let is_insert = cmd == "insert";
                let (name, tuple_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| parse_err("usage: insert|delete <rel> (<tuple>)"))?;
                let tuple = parse_tuple(tuple_text)?;
                if let Some(txn) = &mut self.pending {
                    if is_insert {
                        txn.insert(name, tuple)?;
                    } else {
                        txn.delete(name, tuple)?;
                    }
                    return Ok("queued".into());
                }
                let mut txn = Transaction::new();
                if is_insert {
                    txn.insert(name, tuple)?;
                } else {
                    txn.delete(name, tuple)?;
                }
                client.execute(txn).map(|_| "applied (remote)".to_string())
            }
            "commit" => match self.pending.take() {
                None => return Ok("no open transaction".into()),
                Some(txn) => {
                    let size = txn.size();
                    client
                        .execute(txn)
                        .map(|_| format!("committed {size} change(s) (remote)"))
                }
            },
            "show" => client
                .query(rest)
                .map(|(epoch, rows)| format!("{rows}-- snapshot epoch {epoch}")),
            "views" => client.list_views().map(|names| names.join("\n")),
            "refresh" => client
                .refresh(rest)
                .map(|()| format!("view {rest} refreshed (remote)")),
            "stats" if rest.is_empty() => client.stats(),
            "epoch" => client.epoch().map(|e| format!("publication epoch {e}")),
            "digest" => client
                .digest()
                .map(|(e, d)| format!("epoch {e} digest {d:#018x}")),
            "ping" => client.ping().map(|()| "pong".to_string()),
            other => {
                return Ok(format!(
                    "command {other:?} is local-only — `disconnect` first"
                ))
            }
        };
        out.map_err(remote_err)
    }

    /// `disconnect` — detach; if this shell's `serve` started the
    /// server, stop it and restore the session (the served state becomes
    /// the local state again).
    fn cmd_disconnect(&mut self) -> Result<String> {
        let Some(remote) = self.remote.take() else {
            return Ok("not connected".into());
        };
        self.pending = None;
        match remote.server {
            Some(server) => {
                drop(remote.client);
                // Stop without waiting for a client-side Shutdown.
                let manager = server.stop().map_err(remote_err)?;
                self.manager = manager.with_recorder(self.recorder.clone());
                Ok(format!(
                    "server on {} stopped; session restored locally",
                    remote.addr
                ))
            }
            None => Ok(format!(
                "disconnected from {} (server keeps running)",
                remote.addr
            )),
        }
    }
}

fn remote_err(e: ivm_serve::ServeError) -> IvmError {
    parse_err(format!("serving layer: {e}"))
}

impl Shell {
    /// Render the session (base relations + SPJ view definitions) as a
    /// replayable command script — `source`-ing the output into a fresh
    /// shell reproduces the database and re-materializes every view.
    /// Deferred views lose their pending backlog (they re-materialize
    /// fresh, i.e. fully refreshed); tree views have no textual syntax and
    /// are skipped with a comment.
    pub fn dump_script(&self) -> Result<String> {
        use std::fmt::Write as _;
        let mut out = String::from("# ivm shell session dump\n");
        let db = self.manager.database();
        for name in db.relation_names() {
            let rel = db.relation(name)?;
            let attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_str()).collect();
            writeln!(out, "create {name} ({})", attrs.join(", ")).expect("write to string");
            let rows = rel.sorted();
            if rows.is_empty() {
                continue;
            }
            // Chunked loads keep the lines readable.
            for chunk in rows.chunks(8) {
                let rendered: Vec<String> = chunk.iter().map(|(t, _)| render_tuple(t)).collect();
                writeln!(out, "load {name} {}", rendered.join(" ")).expect("write to string");
            }
        }
        // Views replay in topological (stratum-major) order so a stacked
        // view's operands are always registered before it; internal
        // shared cores are plan-level and re-derived on replay.
        let dag = self.manager.dag();
        let spj: std::collections::BTreeSet<&str> = dag.iter().map(|n| n.name.as_str()).collect();
        for name in self.manager.view_names().filter(|n| !spj.contains(n)) {
            writeln!(out, "# tree view {name} skipped (no textual syntax)")
                .expect("write to string");
        }
        for node in &dag {
            if node.shared {
                continue;
            }
            let name = node.name.as_str();
            let expr = &node.user_expr;
            let policy = match node.policy {
                RefreshPolicy::Immediate => "",
                RefreshPolicy::Deferred => " deferred",
                RefreshPolicy::OnDemand => " ondemand",
            };
            let mut line = format!("view {name}{policy} = from {}", expr.relations.join(", "));
            if !expr.condition.is_trivially_true() {
                line.push_str(&format!(" where {}", render_condition(&expr.condition)));
            }
            if let Some(attrs) = &expr.projection {
                let names: Vec<&str> = attrs.iter().map(|a| a.as_str()).collect();
                line.push_str(&format!(" project {}", names.join(", ")));
            }
            writeln!(out, "{line}").expect("write to string");
        }
        Ok(out)
    }
}

/// Parse a view body — `from R, S [where <cond>] [project <attrs>]` —
/// into an [`SpjExpr`]. Shared by `view` (registration) and `analyze`
/// (ad-hoc candidate analysis).
fn parse_view_body(body: &str) -> Result<SpjExpr> {
    let body = body.trim();
    let lower = body.to_ascii_lowercase();
    if !lower.starts_with("from ") {
        return Err(parse_err("view body must start with `from`"));
    }
    let after_from = &body[5..];
    let lower_after = after_from.to_ascii_lowercase();
    let where_pos = lower_after.find(" where ");
    let project_pos = lower_after.find(" project ");
    let rel_end = [where_pos, project_pos]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(after_from.len());
    let relations: Vec<String> = after_from[..rel_end]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let condition = match where_pos {
        None => Condition::always_true(),
        Some(pos) => {
            let start = pos + " where ".len();
            let end = match project_pos {
                Some(p) if p > pos => p,
                _ => after_from.len(),
            };
            parse_condition(&after_from[start..end])?
        }
    };
    let projection = match project_pos {
        None => None,
        Some(pos) => {
            let start = pos + " project ".len();
            let schema = parse_schema(&after_from[start..])?;
            Some(schema.attrs().to_vec())
        }
    };
    Ok(SpjExpr::new(relations, condition, projection))
}

/// Render a tuple in the shell's literal syntax (strings always quoted).
fn render_tuple(t: &Tuple) -> String {
    let fields: Vec<String> = t
        .values()
        .iter()
        .map(|v| match v {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("\"{s}\""),
        })
        .collect();
    format!("({})", fields.join(", "))
}

/// Render a refresh policy in the shell's surface syntax.
fn policy_name(p: RefreshPolicy) -> &'static str {
    match p {
        RefreshPolicy::Immediate => "immediate",
        RefreshPolicy::Deferred => "deferred",
        RefreshPolicy::OnDemand => "ondemand",
    }
}

/// Render a condition in the shell's `and`/`or` surface syntax.
fn render_condition(cond: &Condition) -> String {
    cond.disjuncts
        .iter()
        .map(|c| {
            c.atoms
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" and ")
        })
        .collect::<Vec<_>>()
        .join(" or ")
}

fn parse_err(msg: impl Into<String>) -> IvmError {
    IvmError::Relational(ivm_relational::error::RelError::Parse(msg.into()))
}

/// Split `"(1,2) (3,4)"` into tuple literals.
fn split_tuples(text: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth -= 1;
                cur.push(ch);
                if depth == 0 {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ if depth > 0 => cur.push(ch),
            _ => {}
        }
    }
    if depth != 0 || out.is_empty() {
        return Err(parse_err(format!("malformed tuple list: {text:?}")));
    }
    Ok(out)
}

/// Help text shown by the `help` command.
pub const HELP: &str = r#"
create <rel> (<attrs>)                        create a base relation
load <rel> (<tuple>) [(<tuple>)...]           bulk-load rows
view <name> [deferred|ondemand] = from <rels> [where <cond>] [project <attrs>]
begin / insert <rel> (<t>) / delete <rel> (<t>) / commit
show <rel-or-view> | stats [<view>] | refresh <view>
views                                         dependency DAG with per-node maintenance stats
stats without a view prints the session-wide metrics snapshot
check <rel> (<tuple>) against <view>          Theorem 4.1 relevance verdict
analyze [<view> | from <body>]                definition-time static analysis
dump | save <file> | source <file>            persist / replay a session
open <dir>                                    switch to a durable (WAL-backed) session
checkpoint                                    write an atomic snapshot of the session
wal-stats                                     WAL / checkpoint counters
serve <addr> | connect <addr> | disconnect    serve this session over TCP / attach to a server
while attached: data commands route remotely; also views, epoch, digest, ping
verify | help | quit
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, script: &[&str]) -> Vec<String> {
        script
            .iter()
            .map(|line| {
                shell
                    .dispatch(line)
                    .unwrap_or_else(|e| format!("error: {e}"))
            })
            .collect()
    }

    fn seeded() -> Shell {
        let mut s = Shell::new();
        run(
            &mut s,
            &[
                "create R (A, B)",
                "create S (B, C)",
                "load R (1,10) (2,20)",
                "load S (10,100) (20,200)",
            ],
        );
        s
    }

    #[test]
    fn create_and_load() {
        let s = seeded();
        assert_eq!(
            s.manager().database().relation("R").unwrap().total_count(),
            2
        );
        assert_eq!(
            s.manager().database().relation("S").unwrap().total_count(),
            2
        );
    }

    #[test]
    fn view_definition_and_maintenance() {
        let mut s = seeded();
        let out = s
            .dispatch("view v = from R, S where A < 10 project A, C")
            .unwrap();
        assert!(out.contains("registered v"));
        s.dispatch("insert R (3, 10)").unwrap();
        let shown = s.dispatch("show v").unwrap();
        assert!(shown.contains("(3, 100)"), "{shown}");
        assert!(s.dispatch("verify").unwrap().contains('✓'));
    }

    #[test]
    fn transactions_queue_until_commit() {
        let mut s = seeded();
        s.dispatch("view v = from R, S project A, C").unwrap();
        s.dispatch("begin").unwrap();
        s.dispatch("insert R (5, 10)").unwrap();
        assert!(
            !s.dispatch("show v").unwrap().contains("(5, 100)"),
            "not yet committed"
        );
        let out = s.dispatch("commit").unwrap();
        assert!(out.contains("committed 1"));
        assert!(s.dispatch("show v").unwrap().contains("(5, 100)"));
    }

    #[test]
    fn relevance_check_command() {
        let mut s = seeded();
        s.dispatch("view v = from R, S where A < 10").unwrap();
        let out = s.dispatch("check R (99, 10) against v").unwrap();
        assert!(out.contains("IRRELEVANT"), "{out}");
        let out = s.dispatch("check R (5, 10) against v").unwrap();
        assert!(out.contains("RELEVANT"), "{out}");
    }

    #[test]
    fn deferred_view_and_refresh() {
        let mut s = seeded();
        s.dispatch("view d deferred = from R project B").unwrap();
        s.dispatch("insert R (7, 70)").unwrap();
        assert!(!s.dispatch("show d").unwrap().contains("70"));
        s.dispatch("refresh d").unwrap();
        assert!(s.dispatch("show d").unwrap().contains("70"));
    }

    #[test]
    fn stats_command_reports_filtering() {
        let mut s = seeded();
        s.dispatch("view v = from R, S where A < 10").unwrap();
        s.dispatch("insert R (50, 10)").unwrap(); // irrelevant
        let out = s.dispatch("stats v").unwrap();
        assert!(out.contains("1 irrelevant"), "{out}");
        assert!(out.contains("skipped by filter 1"), "{out}");
    }

    #[test]
    fn stacked_view_over_view() {
        let mut s = seeded();
        s.dispatch("view base = from R, S where A < 10").unwrap();
        let out = s
            .dispatch("view top = from base where C > 50 project A")
            .unwrap();
        assert!(out.contains("registered top"), "{out}");
        s.dispatch("insert R (3, 20)").unwrap(); // joins S(20,200), C=200>50
        assert!(s.dispatch("show top").unwrap().contains("(3)"));
        assert!(s.dispatch("verify").unwrap().contains('✓'));
    }

    #[test]
    fn views_command_renders_the_dag() {
        let mut s = seeded();
        assert_eq!(s.dispatch("views").unwrap(), "no views registered");
        s.dispatch("view base = from R, S where A < 10").unwrap();
        s.dispatch("view top = from base project A").unwrap();
        s.dispatch("insert R (3, 20)").unwrap();
        let out = s.dispatch("\\views").unwrap();
        assert!(out.contains("stratum 0:"), "{out}");
        assert!(out.contains("stratum 1:"), "{out}");
        assert!(out.contains("feeds top"), "{out}");
        assert!(out.contains("base (view)"), "{out}");
        assert!(out.contains("run(s)"), "{out}");
    }

    #[test]
    fn views_command_shows_shared_cores() {
        let mut s = seeded();
        s.dispatch("view pa = from R, S where A < 10 project A")
            .unwrap();
        s.dispatch("view pc = from R, S where A < 10 project C")
            .unwrap();
        let out = s.dispatch("views").unwrap();
        assert!(out.contains("[shared core]"), "{out}");
        assert!(out.contains("~s0"), "{out}");
    }

    #[test]
    fn analyze_reports_dag_structure() {
        let mut s = seeded();
        s.dispatch("view base = from R, S where A < 10").unwrap();
        s.dispatch("view top = from base project A").unwrap();
        s.dispatch("view pa = from R where A < 5 project A")
            .unwrap();
        s.dispatch("view pb = from R where A < 5 project B")
            .unwrap();
        let out = s.dispatch("analyze").unwrap();
        assert!(out.contains("dependency DAG"), "{out}");
        assert!(out.contains("acyclic"), "{out}");
        assert!(out.contains("shared core: pa, pb"), "{out}");
        // Per-view analysis of one view skips the DAG section.
        let one = s.dispatch("analyze top").unwrap();
        assert!(!one.contains("dependency DAG"), "{one}");
    }

    #[test]
    fn dump_replays_stacked_views_in_dependency_order() {
        let mut s = seeded();
        // Register so that name order disagrees with dependency order.
        s.dispatch("view z_base = from R, S where A < 10").unwrap();
        s.dispatch("view a_top = from z_base project A").unwrap();
        s.dispatch("insert R (3, 20)").unwrap();
        let script = s.dispatch("dump").unwrap();
        let base_pos = script.find("view z_base").unwrap();
        let top_pos = script.find("view a_top").unwrap();
        assert!(base_pos < top_pos, "{script}");
        assert!(
            !script.contains("~s"),
            "shared nodes are plan-internal: {script}"
        );
        // The dump replays into an equivalent session.
        let mut replay = Shell::new();
        for line in script.lines() {
            replay.dispatch(line).unwrap();
        }
        assert_eq!(
            replay.dispatch("show a_top").unwrap(),
            s.dispatch("show a_top").unwrap()
        );
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = seeded();
        assert!(s.dispatch("create R (X)").is_err(), "duplicate relation");
        assert!(s.dispatch("view v = select nonsense").is_err());
        assert!(s.dispatch("show nothere").is_err());
        // The shell keeps working afterwards.
        assert!(s.dispatch("show R").unwrap().contains("(1, 10)"));
    }

    #[test]
    fn unknown_and_empty_commands() {
        let mut s = Shell::new();
        assert!(s
            .dispatch("frobnicate")
            .unwrap()
            .contains("unknown command"));
        assert_eq!(s.dispatch("").unwrap(), "");
        assert_eq!(s.dispatch("# a comment").unwrap(), "");
        assert!(s.dispatch("help").unwrap().contains("create"));
    }

    #[test]
    fn string_payload_columns() {
        let mut s = Shell::new();
        run(
            &mut s,
            &[
                "create P (ID, NAME)",
                "load P (1, widget) (2, \"left handed wrench\")",
            ],
        );
        let out = s.dispatch("show P").unwrap();
        assert!(out.contains("widget"));
        assert!(out.contains("left handed wrench"));
    }

    #[test]
    fn durability_commands() {
        let dir = ivm_storage::temp::scratch_dir("shell-durability");
        let dir_str = dir.to_str().unwrap().to_string();

        let mut s = Shell::new();
        assert!(s.dispatch("wal-stats").unwrap().contains("in-memory"));
        assert!(s.dispatch("checkpoint").is_err(), "no durable state yet");

        let out = s.dispatch(&format!("\\open {dir_str}")).unwrap();
        assert!(out.contains("no checkpoint"), "{out}");
        run(&mut s, &["create R (A, B)", "load R (1,10) (2,20)"]);
        assert!(s.dispatch("\\checkpoint").unwrap().contains("checkpoint 1"));
        s.dispatch("insert R (3, 30)").unwrap();
        let stats = s.dispatch("\\wal-stats").unwrap();
        assert!(stats.contains("sync"), "{stats}");

        // A fresh shell opening the same directory recovers everything.
        let mut fresh = Shell::new();
        let out = fresh.dispatch(&format!("open {dir_str}")).unwrap();
        assert!(out.contains("checkpoint 1"), "{out}");
        assert!(fresh.dispatch("show R").unwrap().contains("(3, 30)"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_without_view_prints_metrics_snapshot() {
        let mut s = seeded();
        s.dispatch("view v = from R, S where A < 10").unwrap();
        s.dispatch("insert R (3, 10)").unwrap(); // relevant: engine runs
        s.dispatch("insert R (50, 10)").unwrap(); // irrelevant: filtered
        let out = s.dispatch("\\stats").unwrap();
        assert!(out.contains("manager.transactions"), "{out}");
        assert!(out.contains("diff.rows_evaluated"), "{out}");
        assert!(out.contains("filter.tuples_filtered"), "{out}");
        assert!(out.contains("execute"), "{out}");
    }

    #[test]
    fn wal_stats_reports_live_file_size_after_compaction() {
        let dir = ivm_storage::temp::scratch_dir("shell-wal-stats");
        let dir_str = dir.to_str().unwrap().to_string();

        let mut s = Shell::new();
        s.dispatch(&format!("open {dir_str}")).unwrap();
        run(&mut s, &["create R (A, B)", "load R (1,10) (2,20)"]);
        for i in 0..10 {
            s.dispatch(&format!("insert R ({}, {})", 100 + i, i))
                .unwrap();
        }
        // Two checkpoints: the second prunes to the retained pair and
        // compacts the WAL behind the older image, shrinking the file.
        s.dispatch("checkpoint").unwrap();
        for i in 0..5 {
            s.dispatch(&format!("insert R ({}, {})", 200 + i, i))
                .unwrap();
        }
        s.dispatch("checkpoint").unwrap();

        let status = s.manager().durability_status().unwrap();
        assert!(status.wal.compactions >= 1, "compaction must have run");
        let on_disk = std::fs::metadata(dir.join(ivm_storage::WAL_FILE))
            .unwrap()
            .len();
        assert_eq!(status.wal_file_bytes, on_disk);
        assert!(
            status.wal.bytes_appended > on_disk,
            "cumulative appends ({}) must exceed the compacted live file ({on_disk})",
            status.wal.bytes_appended,
        );

        // The report's headline is the live size, not the cumulative count.
        let out = s.dispatch("\\wal-stats").unwrap();
        assert!(
            out.contains(&format!("wal file: {on_disk} byte(s)")),
            "{out}"
        );
        assert!(out.contains("reclaimed"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsatisfiable_view_is_rejected_at_create_time() {
        let mut s = seeded();
        let err = s
            .dispatch("view dead = from R, S where A < 5 and A > 10")
            .unwrap_err()
            .to_string();
        assert!(err.contains("statically unsatisfiable"), "{err}");
        assert!(err.contains("always-irrelevant"), "{err}");
        // Nothing was registered; the shell keeps working.
        assert!(s.manager().view_names().next().is_none());
        assert!(s.dispatch("show R").unwrap().contains("(1, 10)"));
    }

    #[test]
    fn redundant_predicate_warns_but_registers() {
        let mut s = seeded();
        let out = s
            .dispatch("view v = from R, S where A < 5 and A < 10")
            .unwrap();
        assert!(out.contains("registered v"), "{out}");
        assert!(out.contains("redundant"), "{out}");
        assert!(s.dispatch("verify").unwrap().contains('✓'));
    }

    #[test]
    fn analyze_command_reports_all_views() {
        let mut s = seeded();
        s.dispatch("view clean = from R, S where A < 10").unwrap();
        s.dispatch("view dup = from R where A < 5 and A < 10")
            .unwrap();
        let out = s.dispatch("\\analyze").unwrap();
        assert!(out.contains("view clean"), "{out}");
        assert!(out.contains("view dup"), "{out}");
        assert!(out.contains("1 definition-time finding(s)"), "{out}");
        let one = s.dispatch("analyze clean").unwrap();
        assert!(one.contains("clean: no definition-time findings"), "{one}");
    }

    #[test]
    fn analyze_adhoc_prints_unsat_and_always_irrelevant() {
        let mut s = seeded();
        let out = s
            .dispatch("analyze from R, S where A < 5 and A > 10 and C > 0")
            .unwrap();
        assert!(out.contains("UNSATISFIABLE"), "{out}");
        assert!(out.contains("always-irrelevant"), "{out}");
        assert!(out.contains("`R`"), "{out}");
    }

    #[test]
    fn split_tuples_nested_and_errors() {
        assert_eq!(split_tuples("(1,2) (3,4)").unwrap().len(), 2);
        assert!(split_tuples("(1,2").is_err());
        assert!(split_tuples("nothing").is_err());
    }

    #[test]
    fn serve_routes_commands_remotely_and_disconnect_restores() {
        let mut s = seeded();
        s.dispatch("view v = from R, S where A < 10 project A, C")
            .unwrap();

        let out = s.dispatch("serve 127.0.0.1:0").unwrap();
        assert!(out.contains("serving on"), "{out}");

        // Data commands now go over the wire.
        assert_eq!(s.dispatch("insert R (3, 10)").unwrap(), "applied (remote)");
        let shown = s.dispatch("show v").unwrap();
        assert!(shown.contains("(3, 100)"), "{shown}");
        assert!(shown.contains("snapshot epoch"), "{shown}");
        assert!(s.dispatch("views").unwrap().contains('v'));
        assert!(s.dispatch("ping").unwrap().contains("pong"));
        assert!(s.dispatch("epoch").unwrap().contains("publication epoch"));
        let stats = s.dispatch("stats").unwrap();
        assert!(stats.contains("serve.requests"), "{stats}");

        // Transactions queue locally and commit as one wire transaction.
        s.dispatch("begin").unwrap();
        s.dispatch("insert R (4, 20)").unwrap();
        s.dispatch("insert R (5, 10)").unwrap();
        let out = s.dispatch("commit").unwrap();
        assert!(out.contains("committed 2"), "{out}");

        // DDL over the wire.
        s.dispatch("create T (X, Y)").unwrap();
        s.dispatch("load T (1, 11) (2, 5)").unwrap();
        s.dispatch("view t_hi = from T where Y > 10").unwrap();
        assert!(s.dispatch("show t_hi").unwrap().contains("(1, 11)"));

        // Local-only commands refuse politely; a second serve refuses.
        assert!(s.dispatch("analyze").unwrap().contains("local-only"));
        assert!(s.dispatch("serve 127.0.0.1:0").is_err());

        // Server errors are surfaced, session stays usable.
        assert!(s.dispatch("show no_such_view").is_err());
        assert!(s.dispatch("ping").unwrap().contains("pong"));

        let out = s.dispatch("disconnect").unwrap();
        assert!(out.contains("session restored"), "{out}");
        // The served writes are in the restored local session.
        assert!(s.dispatch("show v").unwrap().contains("(3, 100)"));
        assert!(s.dispatch("show t_hi").unwrap().contains("(1, 11)"));
        assert!(s.dispatch("verify").unwrap().contains('✓'));
    }

    #[test]
    fn connect_attaches_to_external_server_and_leaves_it_running() {
        let mut backend = ViewManager::new();
        ivm_serve::scenario::install(&mut backend).unwrap();
        let server = ivm_serve::Server::start(backend, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();

        let mut s = Shell::new();
        assert_eq!(s.dispatch("disconnect").unwrap(), "not connected");
        let out = s.dispatch(&format!("connect {addr}")).unwrap();
        assert!(out.contains("connected"), "{out}");
        s.dispatch("insert orders (1, 7, 80)").unwrap();
        assert!(s
            .dispatch("show big_orders")
            .unwrap()
            .contains("(1, 7, 80)"));
        let out = s.dispatch("disconnect").unwrap();
        assert!(out.contains("keeps running"), "{out}");

        // The server survived the detach.
        let mut probe = ivm_serve::Client::connect(addr.as_str()).unwrap();
        probe.ping().unwrap();
        server.stop().unwrap();
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;

    #[test]
    fn dump_and_replay_roundtrip() {
        let mut original = Shell::new();
        for line in [
            "create R (A, B)",
            "create S (B, C)",
            "load R (1,10) (2,20)",
            "load S (10,100) (20,200)",
            "view v = from R, S where A < 10 and C > 50 project A, C",
            "view d deferred = from R project B",
            "insert R (3, 10)",
        ] {
            original.dispatch(line).unwrap();
        }
        let script = original.dump_script().unwrap();

        let mut replayed = Shell::new();
        for line in script.lines() {
            replayed.dispatch(line).unwrap();
        }
        // Base relations identical.
        for name in ["R", "S"] {
            assert_eq!(
                original.manager().database().relation(name).unwrap(),
                replayed.manager().database().relation(name).unwrap(),
                "{name}"
            );
        }
        // The immediate view's contents agree; the deferred view in the
        // replay is freshly materialized (i.e. fully refreshed).
        assert_eq!(
            original.manager().view_contents("v").unwrap(),
            replayed.manager().view_contents("v").unwrap()
        );
        assert!(replayed
            .manager()
            .view_contents("d")
            .unwrap()
            .contains(&Tuple::from([10])));
    }

    #[test]
    fn dump_quotes_string_payloads() {
        let mut s = Shell::new();
        s.dispatch("create P (ID, NAME)").unwrap();
        s.dispatch("load P (1, \"two words\")").unwrap();
        let script = s.dump_script().unwrap();
        assert!(script.contains("\"two words\""), "{script}");
        let mut replayed = Shell::new();
        for line in script.lines() {
            replayed.dispatch(line).unwrap();
        }
        assert_eq!(
            s.manager().database().relation("P").unwrap(),
            replayed.manager().database().relation("P").unwrap()
        );
    }

    #[test]
    fn save_and_source_via_files() {
        let dir = std::env::temp_dir().join(format!("ivm_shell_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.ivm");
        let path_str = path.to_str().unwrap();

        let mut s = Shell::new();
        s.dispatch("create R (A)").unwrap();
        s.dispatch("load R (1) (2) (3)").unwrap();
        let out = s.dispatch(&format!("save {path_str}")).unwrap();
        assert!(out.contains("saved"));

        let mut fresh = Shell::new();
        let out = fresh.dispatch(&format!("source {path_str}")).unwrap();
        assert!(out.contains("sourced"), "{out}");
        assert_eq!(
            fresh
                .manager()
                .database()
                .relation("R")
                .unwrap()
                .total_count(),
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
