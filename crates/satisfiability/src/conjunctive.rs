//! Conjunctive formulae and their satisfiability test (§4).
//!
//! A [`ConjunctiveFormula`] is `f₁ ∧ f₂ ∧ … ∧ f_n` over a declared number
//! of integer variables. The satisfiability test is the paper's three-step
//! algorithm: (1) normalize every atom to `≤`/`≥` difference form, (2)
//! build the directed weighted constraint graph, (3) the formula is
//! unsatisfiable iff the graph contains a negative-weight cycle.

use std::fmt;

use crate::atom::Atom;
use crate::bellman;
use crate::constraint::{normalize_atom, Normalized};
use crate::error::{Result, SatError};
use crate::floyd;
use crate::graph::ConstraintGraph;

/// Which negative-cycle algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Solver {
    /// Floyd's O(n³) all-pairs algorithm — the one the paper cites \[F62\].
    #[default]
    FloydWarshall,
    /// Bellman–Ford, O(n·e); faster on the sparse graphs real conditions
    /// produce.
    BellmanFord,
}

/// A conjunction of atoms over `num_vars` integer variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConjunctiveFormula {
    num_vars: usize,
    atoms: Vec<Atom>,
}

impl ConjunctiveFormula {
    /// The empty (always-true) conjunction over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        ConjunctiveFormula {
            num_vars,
            atoms: Vec::new(),
        }
    }

    /// Build from atoms, validating variable ranges.
    pub fn with_atoms(num_vars: usize, atoms: impl IntoIterator<Item = Atom>) -> Result<Self> {
        let mut f = ConjunctiveFormula::new(num_vars);
        for a in atoms {
            f.push(a)?;
        }
        Ok(f)
    }

    /// Append an atom, validating its variable indices.
    pub fn push(&mut self, atom: Atom) -> Result<()> {
        if let Some(v) = atom.max_var() {
            if v >= self.num_vars {
                return Err(SatError::VarOutOfRange {
                    var: v,
                    num_vars: self.num_vars,
                });
            }
        }
        self.atoms.push(atom);
        Ok(())
    }

    /// Declared number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Evaluate under a full assignment.
    pub fn eval(&self, assignment: &[i64]) -> bool {
        self.atoms.iter().all(|a| a.eval(assignment))
    }

    /// Substitute values for variables (Definition 4.1 / 4.3), returning
    /// the modified formula `C(t, Y₂)`.
    pub fn substitute(&self, bindings: &[(usize, i64)]) -> ConjunctiveFormula {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                bindings
                    .iter()
                    .fold(*a, |acc, &(var, value)| acc.substitute(var, value))
            })
            .collect();
        ConjunctiveFormula {
            num_vars: self.num_vars,
            atoms,
        }
    }

    /// Build the constraint graph; `None` when a variant evaluable atom is
    /// already false (trivially unsatisfiable — no graph needed).
    pub fn build_graph(&self) -> Option<ConstraintGraph> {
        let mut g = ConstraintGraph::new(self.num_vars);
        for atom in &self.atoms {
            match normalize_atom(atom) {
                Normalized::False => return None,
                Normalized::Constraints(cs) => g.add_constraints(cs.iter()),
            }
        }
        Some(g)
    }

    /// The §4 satisfiability test.
    pub fn is_satisfiable(&self, solver: Solver) -> bool {
        match self.build_graph() {
            None => false,
            Some(g) => match solver {
                Solver::FloydWarshall => !floyd::floyd_warshall(&g).has_negative_cycle,
                Solver::BellmanFord => !bellman::has_negative_cycle(&g),
            },
        }
    }

    /// Produce a satisfying integer assignment, or `None` when
    /// unsatisfiable. (Used to build the witness database instances of
    /// Theorem 4.1's "only if" direction.)
    pub fn solve(&self) -> Option<Vec<i64>> {
        let g = self.build_graph()?;
        let v = floyd::solve(&g)?;
        debug_assert!(
            self.eval(&v),
            "solver returned a non-model: {v:?} for {self}"
        );
        Some(v)
    }
}

impl fmt::Display for ConjunctiveFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "({a})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Op;

    /// Example 4.1's condition with variables A=x0, B=x1, C=x2:
    /// (A < 10) ∧ (C > 5) ∧ (B = C).
    fn example_41() -> ConjunctiveFormula {
        ConjunctiveFormula::with_atoms(
            3,
            [
                Atom::var_const(0, Op::Lt, 10),
                Atom::var_const(2, Op::Gt, 5),
                Atom::var_var(1, Op::Eq, 2, 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example_41_relevant_insert() {
        // Substituting (A,B) := (9,10): C(9,10,C) = (9<10) ∧ (C>5) ∧ (10=C)
        // — satisfiable (C = 10).
        let sub = example_41().substitute(&[(0, 9), (1, 10)]);
        assert!(sub.is_satisfiable(Solver::FloydWarshall));
        assert!(sub.is_satisfiable(Solver::BellmanFord));
        let model = sub.solve().unwrap();
        assert_eq!(model[2], 10);
    }

    #[test]
    fn example_41_irrelevant_insert() {
        // Substituting (A,B) := (11,10): (11<10) is false — unsatisfiable
        // regardless of the database state.
        let sub = example_41().substitute(&[(0, 11), (1, 10)]);
        assert!(!sub.is_satisfiable(Solver::FloydWarshall));
        assert!(!sub.is_satisfiable(Solver::BellmanFord));
        assert!(sub.solve().is_none());
    }

    #[test]
    fn var_range_validated() {
        let mut f = ConjunctiveFormula::new(2);
        assert!(f.push(Atom::var_const(2, Op::Eq, 0)).is_err());
        assert!(f.push(Atom::var_const(1, Op::Eq, 0)).is_ok());
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let f = ConjunctiveFormula::new(4);
        assert!(f.is_satisfiable(Solver::FloydWarshall));
        assert_eq!(f.solve().unwrap().len(), 4);
    }

    #[test]
    fn contradictory_bounds_unsat() {
        // x0 ≥ 10 ∧ x0 < 10
        let f = ConjunctiveFormula::with_atoms(
            1,
            [
                Atom::var_const(0, Op::Ge, 10),
                Atom::var_const(0, Op::Lt, 10),
            ],
        )
        .unwrap();
        assert!(!f.is_satisfiable(Solver::FloydWarshall));
        assert!(!f.is_satisfiable(Solver::BellmanFord));
    }

    #[test]
    fn integer_gap_unsat() {
        // 5 < x0 < 6 has no integer solution — the −1 normalization
        // catches it.
        let f = ConjunctiveFormula::with_atoms(
            1,
            [Atom::var_const(0, Op::Gt, 5), Atom::var_const(0, Op::Lt, 6)],
        )
        .unwrap();
        assert!(!f.is_satisfiable(Solver::FloydWarshall));
    }

    #[test]
    fn chain_of_equalities() {
        // x0 = x1 + 1, x1 = x2 + 1, x2 = 5 ⇒ model (7, 6, 5).
        let f = ConjunctiveFormula::with_atoms(
            3,
            [
                Atom::var_var(0, Op::Eq, 1, 1),
                Atom::var_var(1, Op::Eq, 2, 1),
                Atom::var_const(2, Op::Eq, 5),
            ],
        )
        .unwrap();
        assert_eq!(f.solve().unwrap(), vec![7, 6, 5]);
    }

    #[test]
    fn inconsistent_cycle_of_inequalities() {
        // x0 < x1, x1 < x2, x2 < x0: unsatisfiable.
        let f = ConjunctiveFormula::with_atoms(
            3,
            [
                Atom::var_var(0, Op::Lt, 1, 0),
                Atom::var_var(1, Op::Lt, 2, 0),
                Atom::var_var(2, Op::Lt, 0, 0),
            ],
        )
        .unwrap();
        assert!(!f.is_satisfiable(Solver::FloydWarshall));
        assert!(!f.is_satisfiable(Solver::BellmanFord));
    }

    #[test]
    fn consistent_cycle_of_le() {
        // x0 ≤ x1, x1 ≤ x2, x2 ≤ x0: satisfiable (all equal).
        let f = ConjunctiveFormula::with_atoms(
            3,
            [
                Atom::var_var(0, Op::Le, 1, 0),
                Atom::var_var(1, Op::Le, 2, 0),
                Atom::var_var(2, Op::Le, 0, 0),
            ],
        )
        .unwrap();
        let m = f.solve().unwrap();
        assert!(m[0] == m[1] && m[1] == m[2]);
    }

    #[test]
    fn substitute_all_vars_becomes_evaluable() {
        let sub = example_41().substitute(&[(0, 9), (1, 10), (2, 10)]);
        assert!(sub.atoms().iter().all(Atom::is_evaluable));
        assert!(sub.is_satisfiable(Solver::FloydWarshall));
        let sub = example_41().substitute(&[(0, 9), (1, 10), (2, 4)]);
        assert!(!sub.is_satisfiable(Solver::FloydWarshall));
    }

    #[test]
    fn display() {
        assert_eq!(ConjunctiveFormula::new(1).to_string(), "true");
        assert!(example_41().to_string().contains("x0 < 10"));
    }
}
