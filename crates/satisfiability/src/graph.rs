//! The directed weighted constraint graph `G = (n, e)` of Algorithm 4.1.
//!
//! Nodes are `α(C) ∪ {0}`: matrix index 0 is the distinguished `0` node,
//! and variable `i` maps to index `i + 1`. Each difference constraint
//! `x − y ≤ c` contributes the edge `(x, y, c)`; parallel edges keep the
//! tightest (minimum) weight. The expression is unsatisfiable iff the graph
//! contains a negative-weight cycle.

use crate::constraint::{DiffConstraint, Node};

/// "No edge" sentinel, large enough never to participate in a shortest
/// path but safe to add weights to.
pub const INF: i64 = i64::MAX / 4;

/// Dense-matrix constraint graph over `num_vars` variables plus the `0`
/// node.
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    num_vars: usize,
    /// Row-major `(num_vars+1)²` adjacency matrix; `w[i][j]` is the
    /// tightest edge weight from node `i` to node `j`, or [`INF`].
    weights: Vec<i64>,
}

impl ConstraintGraph {
    /// An edge-free graph over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let n = num_vars + 1;
        ConstraintGraph {
            num_vars,
            weights: vec![INF; n * n],
        }
    }

    /// Number of matrix nodes (variables + the `0` node).
    pub fn num_nodes(&self) -> usize {
        self.num_vars + 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Matrix index of a node.
    pub fn index(&self, node: Node) -> usize {
        match node {
            Node::Zero => 0,
            Node::Var(i) => {
                debug_assert!(i < self.num_vars, "variable out of range");
                i + 1
            }
        }
    }

    /// Edge weight between matrix indices (or [`INF`]).
    pub fn weight(&self, from: usize, to: usize) -> i64 {
        self.weights[from * self.num_nodes() + to]
    }

    /// Add the edge for `x − y ≤ c`, keeping the tighter of parallel
    /// bounds.
    pub fn add_constraint(&mut self, c: &DiffConstraint) {
        let from = self.index(c.x);
        let to = self.index(c.y);
        let n = self.num_nodes();
        let w = &mut self.weights[from * n + to];
        if c.c < *w {
            *w = c.c;
        }
    }

    /// Add many constraints.
    pub fn add_constraints<'a>(&mut self, cs: impl IntoIterator<Item = &'a DiffConstraint>) {
        for c in cs {
            self.add_constraint(c);
        }
    }

    /// A copy of the adjacency matrix (row-major), for the shortest-path
    /// algorithms.
    pub fn matrix(&self) -> Vec<i64> {
        self.weights.clone()
    }

    /// Iterate over present edges as `(from, to, weight)` matrix triples.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        let n = self.num_nodes();
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w < INF)
            .map(move |(i, &w)| (i / n, i % n, w))
    }

    /// Number of present edges.
    pub fn num_edges(&self) -> usize {
        self.weights.iter().filter(|&&w| w < INF).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing() {
        let g = ConstraintGraph::new(3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.index(Node::Zero), 0);
        assert_eq!(g.index(Node::Var(0)), 1);
        assert_eq!(g.index(Node::Var(2)), 3);
    }

    #[test]
    fn parallel_edges_keep_tightest() {
        let mut g = ConstraintGraph::new(2);
        g.add_constraint(&DiffConstraint {
            x: Node::Var(0),
            y: Node::Var(1),
            c: 5,
        });
        g.add_constraint(&DiffConstraint {
            x: Node::Var(0),
            y: Node::Var(1),
            c: 3,
        });
        g.add_constraint(&DiffConstraint {
            x: Node::Var(0),
            y: Node::Var(1),
            c: 7,
        });
        assert_eq!(g.weight(1, 2), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_iterator() {
        let mut g = ConstraintGraph::new(1);
        g.add_constraint(&DiffConstraint {
            x: Node::Var(0),
            y: Node::Zero,
            c: -2,
        });
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(1, 0, -2)]);
    }
}
