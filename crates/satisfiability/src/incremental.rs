//! Incremental satisfiability for Algorithm 4.1.
//!
//! Step 2 of Algorithm 4.1 splits the normalized condition into
//! `C_INV ∧ C_VEVAL ∧ C_VNEVAL`; step 3 "builds the invariant portion of
//! the directed weighted graph" once; steps 4–5 then handle each tuple of
//! the update set by substituting its values and checking only the
//! *variant* portion against the prebuilt graph.
//!
//! This module implements that idea with a stronger precomputation: after
//! building the invariant graph we run Floyd–Warshall once (O(n³)) and keep
//! the all-pairs distance matrix `D`. Every variant *non-evaluable* formula
//! produced by substitution has the shape `z op c` — a constraint between a
//! variable and the `0` node — so all per-tuple edges are incident to node
//! `0`. A simple negative cycle passes through `0` at most once, hence uses
//! at most one new outgoing and one new incoming edge; checking
//!
//! * `a + D[v][0] < 0` for each new edge `(0 → v, a)`,
//! * `D[0][u] + b < 0` for each new edge `(u → 0, b)`,
//! * `a + D[v][u] + b < 0` for each pair,
//!
//! decides unsatisfiability in **O(k²)** per tuple (k = number of variant
//! edges, typically the handful of atoms mentioning the updated relation's
//! attributes) instead of re-running an O(n³) pass. The `relevance_filter`
//! bench (experiment E5) measures the speedup against the naive per-tuple
//! rebuild.

use crate::atom::Atom;
use crate::conjunctive::{ConjunctiveFormula, Solver};
use crate::constraint::{normalize_atom, Node, Normalized};
use crate::error::Result;
use crate::floyd::{floyd_warshall, ApspResult};
use crate::graph::{ConstraintGraph, INF};

/// A prepared invariant constraint graph with its all-pairs distances.
#[derive(Debug, Clone)]
pub struct InvariantGraph {
    invariant: ConjunctiveFormula,
    apsp: ApspResult,
    invariant_unsat: bool,
}

impl InvariantGraph {
    /// Precompute the invariant portion (Algorithm 4.1 steps 1–3).
    ///
    /// `invariant` must contain only the formulae untouched by
    /// substitution; the per-tuple variant formulae are passed to
    /// [`InvariantGraph::check_variant`].
    pub fn new(invariant: ConjunctiveFormula) -> Result<Self> {
        let (apsp, invariant_unsat) = match invariant.build_graph() {
            Some(g) => {
                let apsp = floyd_warshall(&g);
                let unsat = apsp.has_negative_cycle;
                (apsp, unsat)
            }
            None => {
                // A false evaluable atom in the invariant part: everything
                // is unsatisfiable. Keep a dummy matrix.
                (
                    floyd_warshall(&ConstraintGraph::new(invariant.num_vars())),
                    true,
                )
            }
        };
        Ok(InvariantGraph {
            invariant,
            apsp,
            invariant_unsat,
        })
    }

    /// True when the invariant portion alone is already unsatisfiable
    /// (then every substitution is irrelevant — the view is empty in every
    /// database state).
    pub fn invariant_unsat(&self) -> bool {
        self.invariant_unsat
    }

    /// Number of variables of the underlying formula.
    pub fn num_vars(&self) -> usize {
        self.invariant.num_vars()
    }

    /// The invariant subformula this graph was prepared from.
    pub fn invariant_formula(&self) -> &ConjunctiveFormula {
        &self.invariant
    }

    /// Decide satisfiability of `invariant ∧ variant` (steps 4–5 of
    /// Algorithm 4.1 for one tuple).
    ///
    /// Runs the O(k²) zero-incident fast path when every variant atom is of
    /// the substituted shapes `z op c` / `c op d`; falls back to a full
    /// solve when a `VarVar` atom sneaks in (legal, just slower).
    pub fn check_variant(&self, variant: &[Atom]) -> bool {
        if self.invariant_unsat {
            return false;
        }
        // Fall back on general atoms.
        if variant.iter().any(|a| matches!(a, Atom::VarVar { .. })) {
            return self.check_full(variant);
        }
        // Tightest new zero-incident edges, kept in k-sized lists (k =
        // number of variant atoms; the per-tuple cost must not depend on
        // the total variable count n). `outs`: edges (0 → v, w);
        // `ins`: edges (v → 0, w). Matrix index of var v is v + 1.
        let mut outs: Vec<(usize, i64)> = Vec::with_capacity(variant.len());
        let mut ins: Vec<(usize, i64)> = Vec::with_capacity(variant.len());
        let tighten = |list: &mut Vec<(usize, i64)>, v: usize, w: i64| {
            for e in list.iter_mut() {
                if e.0 == v {
                    if w < e.1 {
                        e.1 = w;
                    }
                    return;
                }
            }
            list.push((v, w));
        };
        for atom in variant {
            match normalize_atom(atom) {
                Normalized::False => return false,
                Normalized::Constraints(cs) => {
                    for c in cs {
                        match (c.x, c.y) {
                            (Node::Var(v), Node::Zero) => tighten(&mut ins, v + 1, c.c),
                            (Node::Zero, Node::Var(v)) => tighten(&mut outs, v + 1, c.c),
                            _ => unreachable!("VarConst normalizes to zero-incident edges"),
                        }
                    }
                }
            }
        }
        // Single new edge closing a cycle with old paths.
        for &(v, w) in &outs {
            let back = self.apsp.distance(v, 0);
            if back < INF && w.saturating_add(back) < 0 {
                return false;
            }
        }
        for &(v, w) in &ins {
            let fwd = self.apsp.distance(0, v);
            if fwd < INF && fwd.saturating_add(w) < 0 {
                return false;
            }
        }
        // One new outgoing + one new incoming edge: 0 → v ⇝ u → 0. O(k²).
        for &(v, wo) in &outs {
            for &(u, wi) in &ins {
                let mid = self.apsp.distance(v, u);
                if mid < INF && wo.saturating_add(mid).saturating_add(wi) < 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Reference implementation: rebuild the whole graph (invariant +
    /// variant) and solve from scratch. Used as the naive baseline in
    /// benchmarks and to cross-check the fast path in tests.
    pub fn check_full(&self, variant: &[Atom]) -> bool {
        let mut f = self.invariant.clone();
        for a in variant {
            if f.push(*a).is_err() {
                return false;
            }
        }
        f.is_satisfiable(Solver::BellmanFord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Op;

    /// Invariant part of Example 4.1 after inserting into R(A,B):
    /// with A=x0, B=x1, C=x2 the invariant formulae (not mentioning A, B)
    /// are (C > 5); variant: substituted (A<10) → const, (B=C) → (C = b).
    fn invariant_example() -> InvariantGraph {
        let inv = ConjunctiveFormula::with_atoms(3, [Atom::var_const(2, Op::Gt, 5)]).unwrap();
        InvariantGraph::new(inv).unwrap()
    }

    #[test]
    fn example_41_fast_path() {
        let g = invariant_example();
        // Tuple (9, 10): variant = {9 < 10 (true), C = 10}.
        assert!(g.check_variant(&[
            Atom::const_const(9, Op::Lt, 10),
            Atom::var_const(2, Op::Eq, 10),
        ]));
        // Tuple (11, 10): variant contains the false 11 < 10.
        assert!(!g.check_variant(&[
            Atom::const_const(11, Op::Lt, 10),
            Atom::var_const(2, Op::Eq, 10),
        ]));
        // Tuple (9, 3): C = 3 contradicts invariant C > 5.
        assert!(!g.check_variant(&[
            Atom::const_const(9, Op::Lt, 10),
            Atom::var_const(2, Op::Eq, 3),
        ]));
    }

    #[test]
    fn fast_path_agrees_with_full_rebuild() {
        // Random-ish invariant graph over 4 vars, random variant bounds:
        // the O(k²) check must agree with the full solve.
        let inv = ConjunctiveFormula::with_atoms(
            4,
            [
                Atom::var_var(0, Op::Le, 1, 2),
                Atom::var_var(1, Op::Lt, 2, 0),
                Atom::var_var(2, Op::Le, 3, -1),
                Atom::var_const(3, Op::Le, 50),
            ],
        )
        .unwrap();
        let g = InvariantGraph::new(inv).unwrap();
        for lo in -5..5 {
            for hi in -5..5 {
                for (a, b) in [(0, 3), (1, 2), (0, 1), (2, 3)] {
                    let variant = [
                        Atom::var_const(a, Op::Ge, lo),
                        Atom::var_const(b, Op::Le, hi),
                    ];
                    assert_eq!(
                        g.check_variant(&variant),
                        g.check_full(&variant),
                        "lo={lo} hi={hi} vars=({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn unsat_invariant_short_circuits() {
        let inv = ConjunctiveFormula::with_atoms(
            1,
            [Atom::var_const(0, Op::Lt, 0), Atom::var_const(0, Op::Gt, 0)],
        )
        .unwrap();
        let g = InvariantGraph::new(inv).unwrap();
        assert!(g.invariant_unsat());
        assert!(!g.check_variant(&[]));
    }

    #[test]
    fn false_evaluable_invariant() {
        let inv = ConjunctiveFormula::with_atoms(1, [Atom::const_const(2, Op::Lt, 1)]).unwrap();
        let g = InvariantGraph::new(inv).unwrap();
        assert!(g.invariant_unsat());
    }

    #[test]
    fn varvar_variant_falls_back_correctly() {
        let inv = ConjunctiveFormula::with_atoms(2, [Atom::var_const(0, Op::Le, 10)]).unwrap();
        let g = InvariantGraph::new(inv).unwrap();
        // x1 < x0 ∧ x0 ≤ 10 ⇒ x1 ≤ 9, contradicting x1 > 9. Unsat.
        assert!(!g.check_variant(&[
            Atom::var_var(1, Op::Lt, 0, 0),
            Atom::var_const(1, Op::Gt, 9),
        ]));
        // Without the lower bound it is satisfiable.
        assert!(g.check_variant(&[Atom::var_var(1, Op::Lt, 0, 0)]));
    }

    #[test]
    fn empty_variant_checks_invariant_only() {
        let g = invariant_example();
        assert!(g.check_variant(&[]));
    }

    #[test]
    fn two_new_edges_closing_negative_cycle() {
        // Invariant: x0 ≤ x1 − 5 (d(x0→x1) = −5).
        // Variant: x0 ≥ 0 (edge 0→x0, weight 0), x1 ≤ 4 (edge x1→0, 4).
        // Cycle 0 → x0 → x1 → 0 = 0 + (−5) + 4 = −1 < 0 ⇒ unsat
        // (indeed x0 ≥ 0 ∧ x1 ≥ x0 + 5 ⇒ x1 ≥ 5 > 4).
        let inv = ConjunctiveFormula::with_atoms(2, [Atom::var_var(0, Op::Le, 1, -5)]).unwrap();
        let g = InvariantGraph::new(inv).unwrap();
        assert!(!g.check_variant(&[Atom::var_const(0, Op::Ge, 0), Atom::var_const(1, Op::Le, 4),]));
        // Loosen the bound: x1 ≤ 5 is fine.
        assert!(g.check_variant(&[Atom::var_const(0, Op::Ge, 0), Atom::var_const(1, Op::Le, 5),]));
    }
}
