//! Disjunctive formulae `C = C₁ ∨ C₂ ∨ … ∨ C_m` (§4).
//!
//! "The expression C is satisfiable if and only if at least one of the
//! conjunctive expressions C_i is satisfiable. … We can apply Rosenkrantz
//! and Hunt's algorithm to each of the conjunctive expressions; this takes
//! time O(m·n³) in the worst case."

use std::fmt;

use crate::conjunctive::{ConjunctiveFormula, Solver};
use crate::error::Result;

/// A disjunction of conjunctive formulae over a shared variable space.
///
/// The empty disjunction is `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfFormula {
    num_vars: usize,
    disjuncts: Vec<ConjunctiveFormula>,
}

impl DnfFormula {
    /// The always-false formula over `num_vars` variables.
    pub fn always_false(num_vars: usize) -> Self {
        DnfFormula {
            num_vars,
            disjuncts: Vec::new(),
        }
    }

    /// Build from disjuncts (each must be declared over the same variable
    /// count).
    pub fn new(
        num_vars: usize,
        disjuncts: impl IntoIterator<Item = ConjunctiveFormula>,
    ) -> Result<Self> {
        let mut f = DnfFormula::always_false(num_vars);
        for d in disjuncts {
            f.push(d)?;
        }
        Ok(f)
    }

    /// Append a disjunct.
    pub fn push(&mut self, disjunct: ConjunctiveFormula) -> Result<()> {
        // Re-validate atoms against our variable count (the disjunct may
        // have been declared with a smaller one; that is fine, larger not).
        for atom in disjunct.atoms() {
            if let Some(v) = atom.max_var() {
                if v >= self.num_vars {
                    return Err(crate::error::SatError::VarOutOfRange {
                        var: v,
                        num_vars: self.num_vars,
                    });
                }
            }
        }
        self.disjuncts.push(disjunct);
        Ok(())
    }

    /// Declared number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveFormula] {
        &self.disjuncts
    }

    /// Evaluate under a full assignment (OR of disjuncts).
    pub fn eval(&self, assignment: &[i64]) -> bool {
        self.disjuncts.iter().any(|d| d.eval(assignment))
    }

    /// Substitute values for variables in every disjunct.
    pub fn substitute(&self, bindings: &[(usize, i64)]) -> DnfFormula {
        DnfFormula {
            num_vars: self.num_vars,
            disjuncts: self
                .disjuncts
                .iter()
                .map(|d| d.substitute(bindings))
                .collect(),
        }
    }

    /// Satisfiable iff some disjunct is satisfiable — O(m·n³) with
    /// Floyd–Warshall.
    pub fn is_satisfiable(&self, solver: Solver) -> bool {
        self.disjuncts.iter().any(|d| d.is_satisfiable(solver))
    }

    /// A model of the first satisfiable disjunct, if any.
    pub fn solve(&self) -> Option<Vec<i64>> {
        self.disjuncts.iter().find_map(ConjunctiveFormula::solve)
    }
}

impl fmt::Display for DnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return f.write_str("false");
        }
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" OR ")?;
            }
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Op};

    fn conj(num_vars: usize, atoms: Vec<Atom>) -> ConjunctiveFormula {
        ConjunctiveFormula::with_atoms(num_vars, atoms).unwrap()
    }

    #[test]
    fn empty_dnf_is_unsat() {
        assert!(!DnfFormula::always_false(2).is_satisfiable(Solver::FloydWarshall));
        assert!(DnfFormula::always_false(2).solve().is_none());
    }

    #[test]
    fn sat_iff_some_disjunct_sat() {
        let unsat = conj(
            1,
            vec![Atom::var_const(0, Op::Lt, 0), Atom::var_const(0, Op::Gt, 0)],
        );
        let sat = conj(1, vec![Atom::var_const(0, Op::Eq, 7)]);
        let f = DnfFormula::new(1, [unsat.clone(), sat]).unwrap();
        assert!(f.is_satisfiable(Solver::FloydWarshall));
        assert_eq!(f.solve().unwrap(), vec![7]);
        let g = DnfFormula::new(1, [unsat.clone(), unsat]).unwrap();
        assert!(!g.is_satisfiable(Solver::BellmanFord));
    }

    #[test]
    fn substitution_distributes_over_disjuncts() {
        // (x0 < 10) ∨ (x0 > 20), substitute x0 := 15 → both false.
        let f = DnfFormula::new(
            1,
            [
                conj(1, vec![Atom::var_const(0, Op::Lt, 10)]),
                conj(1, vec![Atom::var_const(0, Op::Gt, 20)]),
            ],
        )
        .unwrap();
        assert!(!f
            .substitute(&[(0, 15)])
            .is_satisfiable(Solver::FloydWarshall));
        assert!(f
            .substitute(&[(0, 25)])
            .is_satisfiable(Solver::FloydWarshall));
        assert!(f
            .substitute(&[(0, 5)])
            .is_satisfiable(Solver::FloydWarshall));
    }

    #[test]
    fn var_range_enforced_on_push() {
        let d = conj(5, vec![Atom::var_const(4, Op::Eq, 0)]);
        assert!(DnfFormula::new(3, [d]).is_err());
    }

    #[test]
    fn eval_is_or() {
        let f = DnfFormula::new(
            1,
            [
                conj(1, vec![Atom::var_const(0, Op::Lt, 0)]),
                conj(1, vec![Atom::var_const(0, Op::Gt, 10)]),
            ],
        )
        .unwrap();
        assert!(f.eval(&[-5]));
        assert!(f.eval(&[11]));
        assert!(!f.eval(&[5]));
    }

    #[test]
    fn display() {
        let f = DnfFormula::new(1, [conj(1, vec![Atom::var_const(0, Op::Lt, 0)])]).unwrap();
        assert!(f.to_string().contains("x0 < 0"));
        assert_eq!(DnfFormula::always_false(1).to_string(), "false");
    }
}
