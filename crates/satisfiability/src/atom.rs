//! Atomic formulae of the Rosenkrantz–Hunt class (§4).
//!
//! The class consists of conjunctions of atoms of the forms `x op y`,
//! `x op c` and `x op y + c`, with `op ∈ {=, <, >, ≤, ≥}`, over variables
//! on *discrete infinite* ordered domains (we use ℤ). The operator `≠` is
//! excluded — "the improved efficiency arises from not allowing the
//! operator ≠ in op".
//!
//! A third shape, `c op d` over two constants, arises when tuple values are
//! substituted for variables (Definition 4.2 calls these *variant evaluable*
//! formulae); it is represented here so a substituted conjunction remains a
//! first-class formula.

use std::fmt;

/// Comparison operator (`≠` deliberately absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `≤`
    Le,
    /// `≥`
    Ge,
}

impl Op {
    /// Evaluate the comparison on integers.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            Op::Eq => l == r,
            Op::Lt => l < r,
            Op::Gt => l > r,
            Op::Le => l <= r,
            Op::Ge => l >= r,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Gt => ">",
            Op::Le => "<=",
            Op::Ge => ">=",
        })
    }
}

/// An atomic formula over variable indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `x op y + c`
    VarVar {
        /// Left variable index.
        x: usize,
        /// Operator.
        op: Op,
        /// Right variable index.
        y: usize,
        /// Constant offset `c` (0 for the plain `x op y`).
        c: i64,
    },
    /// `x op c`
    VarConst {
        /// Variable index.
        x: usize,
        /// Operator.
        op: Op,
        /// Constant.
        c: i64,
    },
    /// `a op b` — a *variant evaluable* formula (Definition 4.2), produced
    /// by substituting values for both variables of an atom.
    ConstConst {
        /// Left constant.
        a: i64,
        /// Operator.
        op: Op,
        /// Right constant.
        b: i64,
    },
}

impl Atom {
    /// `x op y + c`
    pub fn var_var(x: usize, op: Op, y: usize, c: i64) -> Atom {
        Atom::VarVar { x, op, y, c }
    }

    /// `x op c`
    pub fn var_const(x: usize, op: Op, c: i64) -> Atom {
        Atom::VarConst { x, op, c }
    }

    /// `a op b`
    pub fn const_const(a: i64, op: Op, b: i64) -> Atom {
        Atom::ConstConst { a, op, b }
    }

    /// Largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Atom::VarVar { x, y, .. } => Some((*x).max(*y)),
            Atom::VarConst { x, .. } => Some(*x),
            Atom::ConstConst { .. } => None,
        }
    }

    /// Evaluate under an assignment (`assignment[i]` is the value of
    /// variable `i`).
    pub fn eval(&self, assignment: &[i64]) -> bool {
        match *self {
            Atom::VarVar { x, op, y, c } => op.eval(assignment[x], assignment[y].saturating_add(c)),
            Atom::VarConst { x, op, c } => op.eval(assignment[x], c),
            Atom::ConstConst { a, op, b } => op.eval(a, b),
        }
    }

    /// Substitute a value for a variable, if this atom mentions it.
    ///
    /// This is the engine behind Definition 4.1's `C(t, Y₂)`: substituting
    /// `value` for variable `var` turns `VarVar` atoms into `VarConst` (a
    /// *variant non-evaluable* formula) or `ConstConst` (when both sides
    /// collapse), and `VarConst` atoms into `ConstConst`.
    pub fn substitute(&self, var: usize, value: i64) -> Atom {
        match *self {
            Atom::VarVar { x, op, y, c } => {
                let xv = (x == var).then_some(value);
                let yv = (y == var).then_some(value);
                match (xv, yv) {
                    (Some(a), Some(b)) => Atom::ConstConst {
                        a,
                        op,
                        b: b.saturating_add(c),
                    },
                    // value op y + c  ⟺  y + c flipped-op value ⟺ y flipped-op value − c
                    (Some(a), None) => Atom::VarConst {
                        x: y,
                        op: flip(op),
                        c: a.saturating_sub(c),
                    },
                    (None, Some(b)) => Atom::VarConst {
                        x,
                        op,
                        c: b.saturating_add(c),
                    },
                    (None, None) => *self,
                }
            }
            Atom::VarConst { x, op, c } if x == var => Atom::ConstConst { a: value, op, b: c },
            other => other,
        }
    }

    /// True when the atom mentions no variables (is variant evaluable).
    pub fn is_evaluable(&self) -> bool {
        matches!(self, Atom::ConstConst { .. })
    }
}

/// `x op y` ⟺ `y flip(op) x`.
fn flip(op: Op) -> Op {
    match op {
        Op::Eq => Op::Eq,
        Op::Lt => Op::Gt,
        Op::Gt => Op::Lt,
        Op::Le => Op::Ge,
        Op::Ge => Op::Le,
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Atom::VarVar { x, op, y, c: 0 } => write!(f, "x{x} {op} x{y}"),
            Atom::VarVar { x, op, y, c } if c > 0 => write!(f, "x{x} {op} x{y}+{c}"),
            Atom::VarVar { x, op, y, c } => write!(f, "x{x} {op} x{y}{c}"),
            Atom::VarConst { x, op, c } => write!(f, "x{x} {op} {c}"),
            Atom::ConstConst { a, op, b } => write!(f, "{a} {op} {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_shapes() {
        let a = Atom::var_var(0, Op::Le, 1, 2); // x0 <= x1 + 2
        assert!(a.eval(&[3, 1]));
        assert!(!a.eval(&[4, 1]));
        let b = Atom::var_const(0, Op::Gt, 5);
        assert!(b.eval(&[6, 0]));
        assert!(!Atom::const_const(3, Op::Eq, 4).eval(&[]));
    }

    #[test]
    fn substitute_var_const() {
        // (x0 < 10)[x0 := 9]  →  9 < 10 (true)
        let a = Atom::var_const(0, Op::Lt, 10).substitute(0, 9);
        assert_eq!(a, Atom::const_const(9, Op::Lt, 10));
        assert!(a.eval(&[]));
    }

    #[test]
    fn substitute_left_of_var_var_flips() {
        // (x0 <= x1 + 2)[x0 := 7]  →  7 <= x1 + 2  ⟺  x1 >= 5
        let a = Atom::var_var(0, Op::Le, 1, 2).substitute(0, 7);
        assert_eq!(a, Atom::var_const(1, Op::Ge, 5));
        // Semantics preserved for a few x1 values.
        for x1 in 0..10 {
            assert_eq!(
                Atom::var_var(0, Op::Le, 1, 2).eval(&[7, x1]),
                a.eval(&[0, x1])
            );
        }
    }

    #[test]
    fn substitute_right_of_var_var() {
        // (x0 = x1)[x1 := 10]  →  x0 = 10
        let a = Atom::var_var(0, Op::Eq, 1, 0).substitute(1, 10);
        assert_eq!(a, Atom::var_const(0, Op::Eq, 10));
    }

    #[test]
    fn substitute_both_sides() {
        // (x0 < x0 + 1)[x0 := 4]  →  4 < 5
        let a = Atom::var_var(0, Op::Lt, 0, 1).substitute(0, 4);
        assert_eq!(a, Atom::const_const(4, Op::Lt, 5));
        assert!(a.eval(&[]));
    }

    #[test]
    fn substitute_unrelated_var_is_identity() {
        let a = Atom::var_var(0, Op::Le, 1, 0);
        assert_eq!(a.substitute(7, 99), a);
    }

    #[test]
    fn substitution_preserves_semantics_exhaustively() {
        // For every op and small values: substituting x0 := v into
        // (x0 op x1 + c) must agree with direct evaluation.
        for op in [Op::Eq, Op::Lt, Op::Gt, Op::Le, Op::Ge] {
            for c in -2..=2 {
                for v in -3..=3 {
                    for x1 in -3..=3 {
                        let orig = Atom::var_var(0, op, 1, c);
                        let sub = orig.substitute(0, v);
                        assert_eq!(
                            orig.eval(&[v, x1]),
                            sub.eval(&[i64::MIN, x1]),
                            "op={op:?} c={c} v={v} x1={x1}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn max_var() {
        assert_eq!(Atom::var_var(2, Op::Eq, 5, 0).max_var(), Some(5));
        assert_eq!(Atom::var_const(3, Op::Eq, 0).max_var(), Some(3));
        assert_eq!(Atom::const_const(1, Op::Eq, 1).max_var(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Atom::var_var(0, Op::Le, 1, 0).to_string(), "x0 <= x1");
        assert_eq!(Atom::var_var(0, Op::Lt, 1, -2).to_string(), "x0 < x1-2");
        assert_eq!(Atom::var_const(0, Op::Ge, 9).to_string(), "x0 >= 9");
        assert_eq!(Atom::const_const(1, Op::Gt, 2).to_string(), "1 > 2");
    }
}
