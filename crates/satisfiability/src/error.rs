//! Error type for the satisfiability crate.

use std::fmt;

/// Errors raised when building or checking formulae.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatError {
    /// An atom referenced variable index `var` but the formula was declared
    /// with only `num_vars` variables.
    VarOutOfRange {
        /// Offending variable index.
        var: usize,
        /// Declared variable count.
        num_vars: usize,
    },
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatError::VarOutOfRange { var, num_vars } => {
                write!(
                    f,
                    "variable x{var} out of range (formula has {num_vars} variables)"
                )
            }
        }
    }
}

impl std::error::Error for SatError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, SatError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SatError::VarOutOfRange {
            var: 5,
            num_vars: 3,
        };
        assert!(e.to_string().contains("x5"));
        assert!(e.to_string().contains('3'));
    }
}
