//! Floyd's all-pairs shortest-path algorithm \[F62\] and negative-cycle
//! detection.
//!
//! §4: "to find whether a directed weighted graph contains a negative cycle
//! one can use Floyd's algorithm, which finds all the shortest paths
//! between any two nodes". A negative cycle through node `i` manifests as
//! `dist[i][i] < 0` after the run. Complexity O(n³) in the number of
//! variables — the bound the paper quotes for the satisfiability test.

use crate::graph::{ConstraintGraph, INF};

/// All-pairs shortest-path matrix plus the negative-cycle verdict.
#[derive(Debug, Clone)]
pub struct ApspResult {
    /// Number of nodes.
    pub n: usize,
    /// Row-major `n²` distance matrix ([`INF`] = unreachable). Distances
    /// are meaningless in detail when a negative cycle exists.
    pub dist: Vec<i64>,
    /// True when some node lies on a negative-weight cycle.
    pub has_negative_cycle: bool,
}

impl ApspResult {
    /// Shortest distance from `i` to `j`.
    pub fn distance(&self, i: usize, j: usize) -> i64 {
        self.dist[i * self.n + j]
    }
}

/// Run Floyd–Warshall over the graph's adjacency matrix.
pub fn floyd_warshall(graph: &ConstraintGraph) -> ApspResult {
    let n = graph.num_nodes();
    let mut dist = graph.matrix();
    // Self-distance starts at 0 unless an explicit tighter self-loop exists.
    for i in 0..n {
        let d = &mut dist[i * n + i];
        if *d > 0 {
            *d = 0;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if dik >= INF {
                continue;
            }
            for j in 0..n {
                let dkj = dist[k * n + j];
                if dkj >= INF {
                    continue;
                }
                let through = dik.saturating_add(dkj);
                let d = &mut dist[i * n + j];
                if through < *d {
                    *d = through;
                }
            }
        }
    }
    let has_negative_cycle = (0..n).any(|i| dist[i * n + i] < 0);
    ApspResult {
        n,
        dist,
        has_negative_cycle,
    }
}

/// Extract a satisfying assignment from a negative-cycle-free graph.
///
/// For every edge `x → y` with weight `c` (i.e. constraint `x − y ≤ c`),
/// shortest distances satisfy `d(x, t) ≤ c + d(y, t)` for any target `t`,
/// so `v(x) = d(x, 0) − d(0, 0) = d(x, 0)` is a model — provided every node
/// reaches node 0. We guarantee reachability by conceptually adding a
/// high-weight edge `(x, 0, W)` from every node (the constraint `x ≤ W`,
/// harmless for `W` beyond the magnitude any tight solution needs).
///
/// Returns `None` when the graph has a negative cycle.
pub fn solve(graph: &ConstraintGraph) -> Option<Vec<i64>> {
    let apsp = floyd_warshall(graph);
    if apsp.has_negative_cycle {
        return None;
    }
    let n = graph.num_nodes();
    // W: larger than any |path sum|. Sum of |weights| + 1 is safe.
    let w_cap: i64 = graph
        .edges()
        .map(|(_, _, w)| w.abs())
        .fold(1i64, |acc, w| acc.saturating_add(w));
    // In the augmented graph the distance from x to 0 is
    // min(d(x,0), min_y d(x,y) + W): either a pure original path, or an
    // original prefix followed by one cap edge (the cap edge is never worth
    // using twice on a shortest path).
    let mut v = vec![0i64; n];
    #[allow(clippy::needless_range_loop)] // x is a node id, not just an index
    for x in 0..n {
        // Exact distance from x to 0 in the augmented graph:
        // min(d(x,0), min_y d(x,y) + W).
        let direct = apsp.distance(x, 0);
        let via_cap = (0..n)
            .filter(|&y| apsp.distance(x, y) < INF)
            .map(|y| apsp.distance(x, y).saturating_add(w_cap))
            .min()
            .unwrap_or(w_cap);
        v[x] = direct.min(via_cap);
    }
    // Shift so the 0-node sits at value 0.
    let zero_val = v[0];
    Some((1..n).map(|i| v[i] - zero_val).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{DiffConstraint, Node};

    fn c(x: Node, y: Node, w: i64) -> DiffConstraint {
        DiffConstraint { x, y, c: w }
    }

    #[test]
    fn detects_negative_cycle() {
        // x0 − x1 ≤ −1 and x1 − x0 ≤ 0 ⇒ cycle weight −1.
        let mut g = ConstraintGraph::new(2);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), -1));
        g.add_constraint(&c(Node::Var(1), Node::Var(0), 0));
        assert!(floyd_warshall(&g).has_negative_cycle);
        assert!(solve(&g).is_none());
    }

    #[test]
    fn zero_cycle_is_fine() {
        // x0 = x1 gives a 0-weight 2-cycle: satisfiable.
        let mut g = ConstraintGraph::new(2);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), 0));
        g.add_constraint(&c(Node::Var(1), Node::Var(0), 0));
        let r = floyd_warshall(&g);
        assert!(!r.has_negative_cycle);
        let v = solve(&g).unwrap();
        assert_eq!(v[0], v[1]);
    }

    #[test]
    fn distances_computed() {
        let mut g = ConstraintGraph::new(2);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), 3));
        g.add_constraint(&c(Node::Var(1), Node::Zero, 4));
        let r = floyd_warshall(&g);
        assert_eq!(r.distance(1, 2), 3); // x0 → x1
        assert_eq!(r.distance(1, 0), 7); // x0 → x1 → 0
        assert_eq!(r.distance(0, 1), INF); // unreachable
    }

    #[test]
    fn solve_satisfies_all_constraints() {
        // x0 ≤ x1 − 1, x1 ≤ 5, x0 ≥ −3  (constraints in diff form)
        let cs = [
            c(Node::Var(0), Node::Var(1), -1),
            c(Node::Var(1), Node::Zero, 5),
            c(Node::Zero, Node::Var(0), 3),
        ];
        let mut g = ConstraintGraph::new(2);
        g.add_constraints(cs.iter());
        let v = solve(&g).unwrap();
        let val = |n: Node| match n {
            Node::Zero => 0,
            Node::Var(i) => v[i],
        };
        for cc in &cs {
            assert!(
                val(cc.x) - val(cc.y) <= cc.c,
                "constraint {cc:?} violated by {v:?}"
            );
        }
    }

    #[test]
    fn solve_unconstrained_graph() {
        let g = ConstraintGraph::new(3);
        let v = solve(&g).unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn tight_equality_chain() {
        // x0 = x1 + 2, x1 = 7 ⇒ x0 = 9.
        let mut g = ConstraintGraph::new(2);
        g.add_constraints(
            [
                c(Node::Var(0), Node::Var(1), 2),
                c(Node::Var(1), Node::Var(0), -2),
                c(Node::Var(1), Node::Zero, 7),
                c(Node::Zero, Node::Var(1), -7),
            ]
            .iter(),
        );
        let v = solve(&g).unwrap();
        assert_eq!(v, vec![9, 7]);
    }
}
