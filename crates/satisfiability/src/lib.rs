//! Rosenkrantz–Hunt conjunctive-predicate satisfiability, as used by §4 of
//! *Efficiently Updating Materialized Views* (Blakeley, Larson & Tompa,
//! SIGMOD 1986) to detect irrelevant updates.
//!
//! The decidable class: conjunctions of atomic formulae `x op y`, `x op c`
//! and `x op y + c` over discrete infinite (integer) domains, with
//! `op ∈ {=, <, >, ≤, ≥}` — no `≠`. The decision procedure (O(n³)):
//!
//! 1. **normalize** every atom to `≤`/`≥` difference form
//!    ([`constraint::normalize_atom`]),
//! 2. build a **directed weighted graph** with a node per variable plus the
//!    distinguished `0` node ([`graph::ConstraintGraph`]),
//! 3. the conjunction is unsatisfiable iff the graph has a
//!    **negative-weight cycle** — decided with Floyd's algorithm
//!    ([`floyd`]) or Bellman–Ford ([`bellman`]).
//!
//! Disjunctions `C₁ ∨ … ∨ C_m` are decided disjunct-by-disjunct in
//! O(m·n³) ([`dnf::DnfFormula`]). For Algorithm 4.1's per-tuple filtering,
//! [`incremental::InvariantGraph`] precomputes all-pairs distances over the
//! invariant subformula once and decides each substituted tuple in O(k²).
//!
//! # Example
//!
//! ```
//! use ivm_satisfiability::prelude::*;
//!
//! // Example 4.1: (A < 10) ∧ (C > 5) ∧ (B = C), A=x0 B=x1 C=x2.
//! let cond = ConjunctiveFormula::with_atoms(3, [
//!     Atom::var_const(0, Op::Lt, 10),
//!     Atom::var_const(2, Op::Gt, 5),
//!     Atom::var_var(1, Op::Eq, 2, 0),
//! ]).unwrap();
//!
//! // Inserting (9, 10) into R(A, B): satisfiable ⇒ relevant.
//! assert!(cond.substitute(&[(0, 9), (1, 10)]).is_satisfiable(Solver::FloydWarshall));
//! // Inserting (11, 10): unsatisfiable ⇒ provably irrelevant.
//! assert!(!cond.substitute(&[(0, 11), (1, 10)]).is_satisfiable(Solver::FloydWarshall));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod bellman;
pub mod bruteforce;
pub mod conjunctive;
pub mod constraint;
pub mod dnf;
pub mod error;
pub mod floyd;
pub mod graph;
pub mod incremental;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::atom::{Atom, Op};
    pub use crate::conjunctive::{ConjunctiveFormula, Solver};
    pub use crate::dnf::DnfFormula;
    pub use crate::error::{Result, SatError};
    pub use crate::incremental::InvariantGraph;
}
