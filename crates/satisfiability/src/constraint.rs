//! Normalization of atoms into difference constraints (§4).
//!
//! The paper's normalization procedure "takes a conjunctive expression and
//! transforms it into an equivalent one where each atomic formula has as
//! comparison operator either ≤ or ≥": over integer domains,
//!
//! * `x < y + c`  ⟶  `x ≤ y + c − 1`
//! * `x > y + c`  ⟶  `x ≥ y + c + 1`
//! * `x = y + c`  ⟶  `x ≤ y + c` ∧ `x ≥ y + c`
//!
//! and a `≥` atom is the flipped `≤` atom. Every normalized atom is thus a
//! *difference constraint* `x − y ≤ c`, where either side may be the
//! distinguished node `0` (value 0) standing in for constants:
//! `x ≤ c ⟺ x − 0 ≤ c` and `x ≥ c ⟺ 0 − x ≤ −c`.
//!
//! Edge convention: we orient the edge for `x − y ≤ c` from `x` to `y` with
//! weight `c`, matching the paper's rule "(x ≤ y + c) translates to the
//! edge (x, y, c)". Summing the constraints around any directed cycle
//! telescopes to `0 ≤ Σ weights`, so a negative-weight cycle is a
//! contradiction; Rosenkrantz & Hunt show the converse also holds on
//! discrete infinite domains. (For the var-const rules the paper's edge
//! table reads `('0', x, c)` for `x ≤ c`; we keep the orientation
//! consistent with the var-var rule instead — only consistency matters for
//! cycle detection.)

use crate::atom::{Atom, Op};

/// A node of the constraint graph: a variable or the distinguished `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The distinguished node with fixed value 0.
    Zero,
    /// Variable `i`.
    Var(usize),
}

/// The difference constraint `x − y ≤ c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffConstraint {
    /// Left node.
    pub x: Node,
    /// Right node.
    pub y: Node,
    /// Bound.
    pub c: i64,
}

impl DiffConstraint {
    fn new(x: Node, y: Node, c: i64) -> Self {
        DiffConstraint { x, y, c }
    }
}

/// Result of normalizing one atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Normalized {
    /// The atom is equivalent to these difference constraints (possibly
    /// empty, for a trivially true evaluable atom).
    Constraints(Vec<DiffConstraint>),
    /// The atom is a false evaluable formula — the whole conjunction is
    /// unsatisfiable.
    False,
}

/// Normalize one atom into difference constraints.
pub fn normalize_atom(atom: &Atom) -> Normalized {
    match *atom {
        Atom::ConstConst { a, op, b } => {
            if op.eval(a, b) {
                Normalized::Constraints(vec![])
            } else {
                Normalized::False
            }
        }
        Atom::VarVar { x, op, y, c } => {
            let x = Node::Var(x);
            let y = Node::Var(y);
            Normalized::Constraints(le_ge(x, y, c, op))
        }
        Atom::VarConst { x, op, c } => {
            let x = Node::Var(x);
            Normalized::Constraints(le_ge(x, Node::Zero, c, op))
        }
    }
}

/// Difference constraints for `x op y + c` (where `y` may be `Zero`).
fn le_ge(x: Node, y: Node, c: i64, op: Op) -> Vec<DiffConstraint> {
    match op {
        // x ≤ y + c ⟺ x − y ≤ c
        Op::Le => vec![DiffConstraint::new(x, y, c)],
        // x < y + c ⟺ x ≤ y + c − 1 (integer domains)
        Op::Lt => vec![DiffConstraint::new(x, y, c.saturating_sub(1))],
        // x ≥ y + c ⟺ y − x ≤ −c
        Op::Ge => vec![DiffConstraint::new(y, x, c.saturating_neg())],
        // x > y + c ⟺ x ≥ y + c + 1 ⟺ y − x ≤ −c − 1
        Op::Gt => vec![DiffConstraint::new(
            y,
            x,
            c.saturating_add(1).saturating_neg(),
        )],
        // x = y + c ⟺ both inequalities
        Op::Eq => vec![
            DiffConstraint::new(x, y, c),
            DiffConstraint::new(y, x, c.saturating_neg()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(atom: Atom) {
        // The conjunction of the produced difference constraints must be
        // semantically equivalent to the atom, over a small grid.
        let cs = match normalize_atom(&atom) {
            Normalized::Constraints(cs) => cs,
            Normalized::False => return,
        };
        let eval_node = |n: Node, a: &[i64]| match n {
            Node::Zero => 0,
            Node::Var(i) => a[i],
        };
        for v0 in -4..=4 {
            for v1 in -4..=4 {
                let a = [v0, v1];
                let atom_holds = atom.eval(&a);
                let cs_hold = cs
                    .iter()
                    .all(|c| eval_node(c.x, &a) - eval_node(c.y, &a) <= c.c);
                assert_eq!(atom_holds, cs_hold, "{atom} at {a:?} → {cs:?}");
            }
        }
    }

    #[test]
    fn var_var_all_ops_equivalent() {
        for op in [Op::Eq, Op::Lt, Op::Gt, Op::Le, Op::Ge] {
            for c in -2..=2 {
                check_equiv(Atom::var_var(0, op, 1, c));
            }
        }
    }

    #[test]
    fn var_const_all_ops_equivalent() {
        for op in [Op::Eq, Op::Lt, Op::Gt, Op::Le, Op::Ge] {
            for c in -2..=2 {
                check_equiv(Atom::var_const(0, op, c));
            }
        }
    }

    #[test]
    fn const_const_evaluates() {
        assert_eq!(
            normalize_atom(&Atom::const_const(1, Op::Lt, 2)),
            Normalized::Constraints(vec![])
        );
        assert_eq!(
            normalize_atom(&Atom::const_const(2, Op::Lt, 1)),
            Normalized::False
        );
        assert_eq!(
            normalize_atom(&Atom::const_const(9, Op::Eq, 9)),
            Normalized::Constraints(vec![])
        );
    }

    #[test]
    fn eq_produces_two_constraints() {
        match normalize_atom(&Atom::var_var(0, Op::Eq, 1, 3)) {
            Normalized::Constraints(cs) => assert_eq!(cs.len(), 2),
            Normalized::False => panic!(),
        }
    }

    #[test]
    fn strict_tightens_by_one() {
        // x < y ⟶ x − y ≤ −1
        match normalize_atom(&Atom::var_var(0, Op::Lt, 1, 0)) {
            Normalized::Constraints(cs) => {
                assert_eq!(
                    cs,
                    vec![DiffConstraint::new(Node::Var(0), Node::Var(1), -1)]
                );
            }
            Normalized::False => panic!(),
        }
    }
}
