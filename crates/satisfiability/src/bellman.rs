//! Bellman–Ford negative-cycle detection.
//!
//! An O(n·e) alternative to Floyd's O(n³) algorithm for the satisfiability
//! test. Constraint graphs produced from view conditions are typically
//! sparse (a handful of atoms over many variables), where Bellman–Ford
//! wins; the two are cross-checked against each other in the test suite and
//! raced in the `satisfiability` bench (experiment E4).

use crate::graph::ConstraintGraph;

/// True iff the graph contains a negative-weight cycle.
///
/// Uses the virtual-source formulation: start every node at distance 0
/// (equivalent to a fresh source with 0-weight edges to all nodes) and
/// relax all edges `n` times; a relaxation succeeding on the n-th pass
/// proves a negative cycle.
pub fn has_negative_cycle(graph: &ConstraintGraph) -> bool {
    let n = graph.num_nodes();
    let edges: Vec<(usize, usize, i64)> = graph.edges().collect();
    let mut dist = vec![0i64; n];
    for pass in 0..n {
        let mut relaxed = false;
        for &(u, v, w) in &edges {
            let cand = dist[u].saturating_add(w);
            if cand < dist[v] {
                dist[v] = cand;
                relaxed = true;
            }
        }
        if !relaxed {
            return false;
        }
        if pass == n - 1 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{DiffConstraint, Node};
    use crate::floyd::floyd_warshall;

    fn c(x: Node, y: Node, w: i64) -> DiffConstraint {
        DiffConstraint { x, y, c: w }
    }

    #[test]
    fn agrees_with_floyd_on_simple_cases() {
        // Negative 2-cycle.
        let mut g = ConstraintGraph::new(2);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), -1));
        g.add_constraint(&c(Node::Var(1), Node::Var(0), 0));
        assert!(has_negative_cycle(&g));
        assert!(floyd_warshall(&g).has_negative_cycle);

        // Zero 2-cycle.
        let mut g = ConstraintGraph::new(2);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), 0));
        g.add_constraint(&c(Node::Var(1), Node::Var(0), 0));
        assert!(!has_negative_cycle(&g));
        assert!(!floyd_warshall(&g).has_negative_cycle);
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(!has_negative_cycle(&ConstraintGraph::new(5)));
    }

    #[test]
    fn long_negative_cycle() {
        // 0 → 1 → 2 → 3 → 0 with total weight −1.
        let mut g = ConstraintGraph::new(4);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), 5));
        g.add_constraint(&c(Node::Var(1), Node::Var(2), -3));
        g.add_constraint(&c(Node::Var(2), Node::Var(3), -3));
        g.add_constraint(&c(Node::Var(3), Node::Var(0), 0));
        assert!(has_negative_cycle(&g));
    }

    #[test]
    fn negative_edge_without_cycle() {
        let mut g = ConstraintGraph::new(3);
        g.add_constraint(&c(Node::Var(0), Node::Var(1), -100));
        g.add_constraint(&c(Node::Var(1), Node::Var(2), -100));
        assert!(!has_negative_cycle(&g));
    }

    #[test]
    fn randomized_agreement_with_floyd() {
        // Deterministic pseudo-random graphs; both algorithms must agree.
        let mut seed: u64 = 0x1986_5150;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as i64
        };
        for _ in 0..200 {
            let n_vars = 2 + (next() % 5).unsigned_abs() as usize;
            let mut g = ConstraintGraph::new(n_vars);
            let n_edges = (next() % 10).unsigned_abs() as usize;
            for _ in 0..n_edges {
                let a = (next().unsigned_abs() as usize) % (n_vars + 1);
                let b = (next().unsigned_abs() as usize) % (n_vars + 1);
                let w = next() % 7 - 3;
                let node = |i: usize| if i == 0 { Node::Zero } else { Node::Var(i - 1) };
                g.add_constraint(&c(node(a), node(b), w));
            }
            assert_eq!(
                has_negative_cycle(&g),
                floyd_warshall(&g).has_negative_cycle,
                "disagreement on a random graph"
            );
        }
    }
}
