//! Brute-force model search over bounded integer ranges.
//!
//! A slow oracle used only by tests and property checks: enumerate every
//! assignment in `[-bound, bound]^n` and evaluate the formula directly.
//! For the *unsat* direction this is a sound refutation check within the
//! bound; for the *sat* direction the graph algorithm's own witness
//! ([`crate::conjunctive::ConjunctiveFormula::solve`]) is verified by
//! evaluation, so together the two directions cross-check the decision
//! procedure end to end.

use crate::conjunctive::ConjunctiveFormula;
use crate::dnf::DnfFormula;

/// Search `[-bound, bound]^n` for a model of a conjunctive formula.
pub fn find_model_conj(f: &ConjunctiveFormula, bound: i64) -> Option<Vec<i64>> {
    let n = f.num_vars();
    let mut assignment = vec![-bound; n];
    if n == 0 {
        return f.eval(&assignment).then_some(assignment);
    }
    loop {
        if f.eval(&assignment) {
            return Some(assignment);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return None;
            }
            if assignment[i] < bound {
                assignment[i] += 1;
                break;
            }
            assignment[i] = -bound;
            i += 1;
        }
    }
}

/// Search `[-bound, bound]^n` for a model of a DNF formula.
pub fn find_model_dnf(f: &DnfFormula, bound: i64) -> Option<Vec<i64>> {
    let n = f.num_vars();
    let mut assignment = vec![-bound; n];
    if n == 0 {
        return f.eval(&assignment).then_some(assignment);
    }
    loop {
        if f.eval(&assignment) {
            return Some(assignment);
        }
        let mut i = 0;
        loop {
            if i == n {
                return None;
            }
            if assignment[i] < bound {
                assignment[i] += 1;
                break;
            }
            assignment[i] = -bound;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Op};
    use crate::conjunctive::Solver;

    #[test]
    fn finds_obvious_model() {
        let f = ConjunctiveFormula::with_atoms(2, [Atom::var_var(0, Op::Eq, 1, 1)]).unwrap();
        let m = find_model_conj(&f, 2).unwrap();
        assert_eq!(m[0], m[1] + 1);
    }

    #[test]
    fn reports_unsat_within_bound() {
        let f = ConjunctiveFormula::with_atoms(
            1,
            [Atom::var_const(0, Op::Gt, 1), Atom::var_const(0, Op::Lt, 1)],
        )
        .unwrap();
        assert!(find_model_conj(&f, 5).is_none());
    }

    #[test]
    fn zero_var_formula() {
        let t = ConjunctiveFormula::with_atoms(0, [Atom::const_const(1, Op::Lt, 2)]).unwrap();
        assert!(find_model_conj(&t, 1).is_some());
        let f = ConjunctiveFormula::with_atoms(0, [Atom::const_const(2, Op::Lt, 1)]).unwrap();
        assert!(find_model_conj(&f, 1).is_none());
    }

    #[test]
    fn agreement_with_graph_decision_on_grid() {
        // Exhaustive small formulas: x0 op1 x1 + c1 ∧ x1 op2 c2 ∧ x0 op3 c3.
        // Constants small enough that every satisfiable instance has a
        // model within the brute-force bound.
        let ops = [Op::Eq, Op::Lt, Op::Gt, Op::Le, Op::Ge];
        for &op1 in &ops {
            for &op2 in &ops {
                for &op3 in &ops {
                    for c1 in [-1i64, 0, 1] {
                        for c2 in [-1i64, 0, 2] {
                            let f = ConjunctiveFormula::with_atoms(
                                2,
                                [
                                    Atom::var_var(0, op1, 1, c1),
                                    Atom::var_const(1, op2, c2),
                                    Atom::var_const(0, op3, 0),
                                ],
                            )
                            .unwrap();
                            let graph_sat = f.is_satisfiable(Solver::FloydWarshall);
                            // Bound: |c| sums to ≤ 4; 8 is comfortably
                            // beyond any tight witness.
                            let brute = find_model_conj(&f, 8);
                            assert_eq!(
                                graph_sat,
                                brute.is_some(),
                                "{f} graph={graph_sat} brute={brute:?}"
                            );
                            if graph_sat {
                                let w = f.solve().unwrap();
                                assert!(f.eval(&w), "witness fails: {w:?} for {f}");
                            }
                        }
                    }
                }
            }
        }
    }
}
