//! Durability-layer benchmarks: the cost of logging (`wal_append`) and of
//! coming back from a crash (`recovery_replay`).
//!
//! `wal_append` separates the codec + buffered-write cost of an append
//! from the `fdatasync` that makes it durable — the sync dominates, which
//! is why the manager batches one sync per transaction rather than one
//! per record. `recovery_replay` measures `ViewManager::open` against a
//! WAL tail of growing length, plus the checkpoint fast path where the
//! tail is empty.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::Path;

use ivm::prelude::*;
use ivm_storage::{Wal, WalRecord};

/// The i-th benchmark transaction. Tuples are unique in `i` so arbitrarily
/// long runs never trip duplicate-insert validation.
fn txn(i: i64) -> Transaction {
    let mut t = Transaction::new();
    t.insert("R", [i, i % 7]).expect("static schema");
    t
}

fn setup(m: &mut ViewManager) {
    m.create_relation("R", Schema::new(["A", "B"]).unwrap())
        .unwrap();
    // Always-relevant condition: every transaction does maintenance work.
    let expr = SpjExpr::new(["R"], Atom::ge_const("A", 0).into(), None);
    m.register_view("v", expr, RefreshPolicy::Immediate)
        .unwrap();
}

/// Populate `dir` with a manager whose WAL holds `tail` replayable
/// transactions after the last checkpoint (checkpoint first when asked).
fn prepare_dir(dir: &Path, tail: usize, checkpoint_first: bool) {
    let mut m = ViewManager::open(dir).unwrap();
    setup(&mut m);
    if checkpoint_first {
        m.checkpoint().unwrap();
    }
    for i in 0..tail {
        m.execute(&txn(i as i64)).unwrap();
    }
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(20);
    let dir = ivm_storage::temp::scratch_dir("bench-wal-append");
    std::fs::create_dir_all(&dir).unwrap();

    let record = WalRecord::Txn(txn(1));
    let mut wal = Wal::create(dir.join("nosync.log"), 1).unwrap();
    group.bench_function("append_nosync", |b| {
        b.iter(|| black_box(wal.append(&record).unwrap()))
    });

    let mut wal = Wal::create(dir.join("sync.log"), 1).unwrap();
    group.bench_function("append_fdatasync", |b| {
        b.iter(|| {
            wal.append(&record).unwrap();
            wal.sync().unwrap();
        })
    });

    // End-to-end per-transaction overhead: a durable manager vs the same
    // maintenance work with no logging at all.
    let mut durable = ViewManager::open(dir.join("mgr")).unwrap();
    setup(&mut durable);
    let mut memory = ViewManager::new();
    setup(&mut memory);
    let mut i = 0i64;
    group.bench_function("execute_durable", |b| {
        b.iter(|| {
            durable.execute(&txn(i)).unwrap();
            i += 1;
        })
    });
    let mut i = 0i64;
    group.bench_function("execute_in_memory", |b| {
        b.iter(|| {
            memory.execute(&txn(i)).unwrap();
            i += 1;
        })
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_recovery_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_replay");
    group.sample_size(10);

    for tail in [10usize, 100, 1_000] {
        let dir = ivm_storage::temp::scratch_dir("bench-replay");
        prepare_dir(&dir, tail, false);
        group.bench_with_input(BenchmarkId::new("wal_tail", tail), &tail, |b, _| {
            b.iter(|| black_box(ViewManager::open(&dir).unwrap()))
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    // Checkpoint fast path: same data volume, but captured in a snapshot
    // so recovery decodes one frame instead of replaying the log.
    let dir = ivm_storage::temp::scratch_dir("bench-replay-ckpt");
    {
        let mut m = ViewManager::open(&dir).unwrap();
        setup(&mut m);
        for i in 0..1_000 {
            m.execute(&txn(i)).unwrap();
        }
        m.checkpoint().unwrap();
    }
    group.bench_function("checkpoint_no_tail", |b| {
        b.iter(|| black_box(ViewManager::open(&dir).unwrap()))
    });

    // Strawman recovery: take the same recovered base data but rebuild the
    // view by full re-evaluation instead of trusting the checkpointed
    // materialization + differential replay.
    let recovered = ViewManager::open(&dir).unwrap();
    let rows: Vec<Tuple> = recovered
        .database()
        .relation("R")
        .unwrap()
        .sorted()
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    group.bench_function("full_reeval_rebuild", |b| {
        b.iter(|| {
            let mut m = ViewManager::new();
            m.create_relation("R", Schema::new(["A", "B"]).unwrap())
                .unwrap();
            m.load("R", rows.clone()).unwrap();
            // Registration evaluates the view from scratch over loaded R.
            let expr = SpjExpr::new(["R"], Atom::ge_const("A", 0).into(), None);
            m.register_view("v", expr, RefreshPolicy::Immediate)
                .unwrap();
            black_box(m)
        })
    });
    std::fs::remove_dir_all(&dir).ok();

    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_recovery_replay);
criterion_main!(benches);
