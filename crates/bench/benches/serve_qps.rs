//! serve_qps — serving-layer round-trip cost over loopback TCP.
//!
//! Measures a live `ivm-serve` server (demo schema, see
//! `ivm_serve::scenario`): per-operation wall time of a closed-loop
//! client, i.e. the reciprocal of single-session QPS. Three mixes:
//!
//! * `mixed_90_10` — the canonical 90% snapshot reads / 10% write
//!   transactions stream (seeded, deterministic);
//! * `query_hot`   — pure snapshot reads of a selection view;
//! * `execute_insert` — pure single-row write transactions.
//!
//! The CI smoke job (`ci/serve_smoke.sh`) complements this with a
//! multi-client run and a warn-only QPS floor; this bench is the
//! regression-tracked per-op number in `BENCH_pr.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::prelude::*;
use ivm_serve::{scenario, Client, Server};
use ivm_sim::{ClientOp, ClientOpStream};

fn demo_server() -> Server {
    let mut mgr = ViewManager::new();
    scenario::install(&mut mgr).unwrap();
    Server::start(mgr, "127.0.0.1:0").unwrap()
}

fn apply(conn: &mut Client, op: ClientOp) -> u64 {
    match op {
        ClientOp::Query { view } => {
            let (epoch, rows) = conn.query(&view).unwrap();
            epoch.wrapping_add(rows.len() as u64)
        }
        ClientOp::Insert { relation, row } => {
            let mut txn = Transaction::new();
            txn.insert(relation, int_row(&row)).unwrap();
            let (t, m) = conn.execute(txn).unwrap();
            u64::from(t + m)
        }
        ClientOp::Delete { relation, row } => {
            let mut txn = Transaction::new();
            txn.delete(relation, int_row(&row)).unwrap();
            let (t, m) = conn.execute(txn).unwrap();
            u64::from(t + m)
        }
    }
}

fn int_row(row: &[i64]) -> Tuple {
    Tuple::from(row.iter().copied().map(Value::Int).collect::<Vec<Value>>())
}

fn bench_serve_roundtrips(c: &mut Criterion) {
    let server = demo_server();
    let addr = server.addr().to_string();
    let mut group = c.benchmark_group("serve_qps");
    group.sample_size(20);

    {
        let mut conn = Client::connect(addr.as_str()).unwrap();
        let mut ops = ClientOpStream::new(&scenario::load_spec(42, 90), 0);
        group.bench_with_input(BenchmarkId::new("mixed_90_10", 1), &1, |b, _| {
            b.iter(|| {
                let op = ops.next().unwrap();
                black_box(apply(&mut conn, op))
            })
        });
    }

    {
        let mut conn = Client::connect(addr.as_str()).unwrap();
        group.bench_with_input(BenchmarkId::new("query_hot", 1), &1, |b, _| {
            b.iter(|| black_box(conn.query("big_orders").unwrap().0))
        });
    }

    {
        let mut conn = Client::connect(addr.as_str()).unwrap();
        // A write-only stream: unique keys, occasional deletes.
        let mut ops = ClientOpStream::new(&scenario::load_spec(43, 0), 1);
        group.bench_with_input(BenchmarkId::new("execute_insert", 1), &1, |b, _| {
            b.iter(|| {
                let op = ops.next().unwrap();
                black_box(apply(&mut conn, op))
            })
        });
    }

    group.finish();
    server.stop().unwrap();
}

criterion_group!(benches, bench_serve_roundtrips);
criterion_main!(benches);
