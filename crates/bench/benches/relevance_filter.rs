//! E5 — Algorithm 4.1's per-tuple filtering cost: the prepared
//! invariant-graph fast path (one O(n³) pass at build time, O(k²) per
//! tuple) versus the naive per-tuple full rebuild, across batch sizes and
//! condition widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ivm::prelude::*;

/// Condition over a widening set of attributes of R and S: half the atoms
/// mention R (variant under R-updates), half only S (invariant).
fn build_filter_setting(width: usize) -> (Database, SpjExpr) {
    let r_attrs: Vec<String> = (0..width).map(|i| format!("R{i}")).collect();
    let s_attrs: Vec<String> = (0..width).map(|i| format!("S{i}")).collect();
    let mut db = Database::new();
    db.create("R", Schema::new(r_attrs.clone()).unwrap())
        .unwrap();
    db.create("S", Schema::new(s_attrs.clone()).unwrap())
        .unwrap();
    let mut atoms = Vec::new();
    for i in 0..width {
        // Variant non-evaluable: Ri ≤ Si + 3; invariant: Si chain.
        atoms.push(Atom::cmp_attr(
            r_attrs[i].as_str(),
            CompOp::Le,
            s_attrs[i].as_str(),
            3,
        ));
        if i + 1 < width {
            atoms.push(Atom::cmp_attr(
                s_attrs[i].as_str(),
                CompOp::Lt,
                s_attrs[i + 1].as_str(),
                0,
            ));
        }
        // Variant evaluable: Ri < 50.
        atoms.push(Atom::lt_const(r_attrs[i].as_str(), 50));
    }
    let view = SpjExpr::new(["R", "S"], Condition::conjunction(atoms), None);
    (db, view)
}

fn tuples(n: usize, width: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| Tuple::new((0..width as i64).map(|j| (i * 7 + j * 13) % 100)))
        .collect()
}

fn bench_filter_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_filter_batch");
    let width = 4;
    let (db, view) = build_filter_setting(width);
    let filter = RelevanceFilter::new(&view, &db, "R").unwrap();
    for batch in [100usize, 1_000, 10_000] {
        let ts = tuples(batch, width);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("prepared", batch), &batch, |b, _| {
            b.iter(|| {
                let mut kept = 0;
                for t in &ts {
                    if filter.is_relevant(t).unwrap() {
                        kept += 1;
                    }
                }
                black_box(kept)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_rebuild", batch), &batch, |b, _| {
            b.iter(|| {
                let mut kept = 0;
                for t in &ts {
                    if filter.is_relevant_naive(t).unwrap() {
                        kept += 1;
                    }
                }
                black_box(kept)
            })
        });
    }
    group.finish();
}

fn bench_filter_condition_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_filter_condition_width");
    for width in [2usize, 4, 8, 12] {
        let (db, view) = build_filter_setting(width);
        let filter = RelevanceFilter::new(&view, &db, "R").unwrap();
        let ts = tuples(1_000, width);
        group.throughput(Throughput::Elements(1_000));
        group.bench_with_input(BenchmarkId::new("prepared", width), &width, |b, _| {
            b.iter(|| {
                for t in &ts {
                    black_box(filter.is_relevant(t).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_rebuild", width), &width, |b, _| {
            b.iter(|| {
                for t in &ts {
                    black_box(filter.is_relevant_naive(t).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_batch, bench_filter_condition_width);
criterion_main!(benches);
