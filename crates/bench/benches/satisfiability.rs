//! E4 — the §4 satisfiability test: Floyd–Warshall O(n³) scaling in the
//! number of variables, Bellman–Ford on the same (sparse) graphs, and DNF
//! O(m·n³) scaling in the number of disjuncts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm_bench::random_formula;
use ivm_satisfiability::conjunctive::Solver;
use ivm_satisfiability::dnf::DnfFormula;

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_conjunctive_vars");
    for n in [4usize, 8, 16, 32, 64, 128] {
        // 2n atoms: sparse graphs, the realistic shape of view conditions.
        let formulas: Vec<_> = (0..16).map(|i| random_formula(i, n, 2 * n)).collect();
        group.bench_with_input(BenchmarkId::new("floyd_warshall", n), &n, |b, _| {
            b.iter(|| {
                for f in &formulas {
                    black_box(f.is_satisfiable(Solver::FloydWarshall));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &n, |b, _| {
            b.iter(|| {
                for f in &formulas {
                    black_box(f.is_satisfiable(Solver::BellmanFord));
                }
            })
        });
    }
    group.finish();
}

fn bench_dnf_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_dnf_disjuncts");
    let n = 16;
    for m in [1usize, 4, 16, 64] {
        let f =
            DnfFormula::new(n, (0..m as u64).map(|i| random_formula(1000 + i, n, 2 * n))).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(f.is_satisfiable(Solver::FloydWarshall)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver_scaling, bench_dnf_scaling);
criterion_main!(benches);
