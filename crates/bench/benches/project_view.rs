//! E7 — project views (§5.2): counter-based maintenance on
//! duplicate-heavy projections versus complete re-evaluation. The narrow
//! projection collapses many base tuples per view tuple — exactly the
//! shape where set semantics breaks and counters shine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::differential::project_view_delta;
use ivm::full_reval;
use ivm::prelude::*;

/// R(A, B) with B drawn from a small domain so π_B collapses heavily.
fn build(size: usize, b_domain: i64) -> (Database, SpjExpr, Vec<AttrName>) {
    let mut db = Database::new();
    db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
    let rows: Vec<[i64; 2]> = (0..size as i64)
        .map(|i| [i, (i * 7919) % b_domain])
        .collect();
    db.load("R", rows).unwrap();
    let attrs: Vec<AttrName> = vec!["B".into()];
    let view = SpjExpr::new(["R"], Condition::always_true(), Some(attrs.clone()));
    (db, view, attrs)
}

fn bench_project_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_project_view");
    group.sample_size(20);
    let size = 50_000;
    for b_domain in [10i64, 1_000, 100_000] {
        let (db, view, attrs) = build(size, b_domain);
        // Update: delete 100 existing rows, insert 100 fresh ones.
        let mut txn = Transaction::new();
        for i in 0..100i64 {
            txn.delete(
                "R",
                [
                    i * 13 % size as i64,
                    (i * 13 % size as i64 * 7919) % b_domain,
                ],
            )
            .unwrap();
            txn.insert("R", [size as i64 + i, (i * 31) % b_domain])
                .unwrap();
        }
        let schema = db.schema("R").unwrap().clone();
        let inserts = txn.insert_set("R", &schema).unwrap();
        let deletes = txn.delete_set("R", &schema).unwrap();
        let mut db_after = db.clone();
        db_after.apply(&txn).unwrap();

        group.bench_with_input(
            BenchmarkId::new("differential_counters", b_domain),
            &b_domain,
            |b, _| {
                b.iter(|| {
                    black_box(
                        project_view_delta(&attrs, &Condition::always_true(), &inserts, &deletes)
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_reeval", b_domain),
            &b_domain,
            |b, _| b.iter(|| black_box(full_reval::recompute(&view, &db_after).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_project_maintenance);
criterion_main!(benches);
