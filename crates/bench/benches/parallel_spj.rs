//! E17 — the parallel differential engine on the §5.3 truth-table
//! workload: wall-clock of one differential pass at growing maintenance
//! thread counts, against the 1-thread sequential oracle. Two shapes:
//! many rows (k = 4 → 15 rows, parallelized across rows) and one row
//! (k = 1, where the spare width flows into hash-partitioned joins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::differential::{differential_delta, DiffOptions};
use ivm_bench::chain_scenario;
use ivm_relational::transaction::Transaction;

fn txn_updating_k(sc: &mut ivm_bench::ChainScenario, k: usize, per_rel: usize) -> Transaction {
    let names: Vec<String> = (0..k).map(|i| format!("R{i}")).collect();
    let specs: Vec<(&str, usize, usize)> = names
        .iter()
        .map(|n| (n.as_str(), per_rel, per_rel))
        .collect();
    sc.workload.multi_transaction(&sc.db, &specs).unwrap()
}

fn bench_rows_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_parallel_rows");
    group.sample_size(12);
    let p = 6;
    let k = 4; // 2^4 − 1 = 15 truth-table rows to spread over the pool
    let mut sc = chain_scenario(10, p, 1_000, 500);
    let txn = txn_updating_k(&mut sc, k, 20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let opts = DiffOptions {
                    threads,
                    ..DiffOptions::default()
                };
                b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_partitioned_join(c: &mut Criterion) {
    // k = 1 leaves a single truth-table row; parallelism flows into the
    // hash-partitioned build+probe of each join instead.
    let mut group = c.benchmark_group("e17_parallel_join");
    group.sample_size(12);
    let p = 3;
    let mut sc = chain_scenario(11, p, 30_000, 2_000);
    let txn = txn_updating_k(&mut sc, 1, 200);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let opts = DiffOptions {
                    threads,
                    ..DiffOptions::default()
                };
                b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rows_parallel, bench_partitioned_join);
criterion_main!(benches);
