//! E8 — join views (§5.3, Examples 5.2–5.3): differential maintenance
//! `v ∪ (i_r ⋈ s) − (d_r ⋈ s)` versus full re-join, sweeping the update
//! ratio `|i_r|/|r|` to expose the crossover the paper's §6 asks about
//! ("determine under what circumstances differential re-evaluation is
//! more efficient than complete re-evaluation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::differential::{differential_delta, DiffOptions, Engine};
use ivm::full_reval;
use ivm::prelude::AttrName;
use ivm_bench::join_scenario;

fn bench_update_ratio_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_join_update_ratio");
    group.sample_size(15);
    let r_size = 20_000;
    let s_size = 20_000;
    let domain = 4_000; // ~5 join partners per key
    for pct in [1usize, 10, 100, 1_000, 2_000] {
        // pct is |i_r| as permille of |r|.
        let n = (r_size * pct / 1_000).max(1);
        let mut sc = join_scenario(8, r_size, s_size, domain);
        let txn = sc.workload.transaction(&sc.db, "R", n, 0).unwrap();
        let mut db_after = sc.db.clone();
        db_after.apply(&txn).unwrap();
        // The indexed axis probes S's maintained join-key index (what
        // `register_view` derives) instead of hash-building S per term.
        let mut db_indexed = sc.db.clone();
        db_indexed.ensure_index("R", &[AttrName::new("B")]).unwrap();
        db_indexed.ensure_index("S", &[AttrName::new("B")]).unwrap();

        group.bench_with_input(BenchmarkId::new("differential", pct), &pct, |b, _| {
            b.iter(|| {
                black_box(
                    differential_delta(&sc.view, &sc.db, &txn, &DiffOptions::default()).unwrap(),
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("differential_indexed", pct),
            &pct,
            |b, _| {
                b.iter(|| {
                    black_box(
                        differential_delta(&sc.view, &db_indexed, &txn, &DiffOptions::default())
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("full_rejoin", pct), &pct, |b, _| {
            b.iter(|| black_box(full_reval::recompute(&sc.view, &db_after).unwrap()))
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    // Tagged (paper-literal) vs signed (z-set) engine on identical mixed
    // workloads.
    let mut group = c.benchmark_group("e8_join_engines");
    group.sample_size(15);
    let mut sc = join_scenario(9, 20_000, 20_000, 4_000);
    let txn = sc
        .workload
        .multi_transaction(&sc.db, &[("R", 100, 100), ("S", 100, 100)])
        .unwrap();
    for (name, engine) in [("tagged", Engine::Tagged), ("signed", Engine::Signed)] {
        let opts = DiffOptions {
            engine,
            ..DiffOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_ratio_sweep, bench_engines);
criterion_main!(benches);
