//! E10 — the full Algorithm 5.1 pipeline end to end, through the
//! `ViewManager`: differential with the §4 relevance filter, differential
//! without it, and periodic full re-evaluation, on a transaction stream
//! where most updates are provably irrelevant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::full_reval;
use ivm::prelude::*;

const BASE: i64 = 20_000;
const STREAM: usize = 50;

/// orders(OID, CUST, AMOUNT) ⋈ customers(CUST, REGION),
/// view: σ_{AMOUNT > 900_000 ∧ REGION = 1} — highly selective, so most of
/// the stream is provably irrelevant.
fn build_manager(filtering: bool) -> (ViewManager, Vec<Transaction>) {
    let mut m = ViewManager::new().with_filtering(filtering);
    m.create_relation("orders", Schema::new(["OID", "CUST", "AMOUNT"]).unwrap())
        .unwrap();
    m.create_relation("customers", Schema::new(["CUST", "REGION"]).unwrap())
        .unwrap();
    m.load(
        "customers",
        (0..500i64).map(|c| [c, c % 5]).collect::<Vec<_>>(),
    )
    .unwrap();
    m.load(
        "orders",
        (0..BASE)
            .map(|o| [o, o % 500, (o * 7919) % 1_000_000])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let expr = SpjExpr::new(
        ["orders", "customers"],
        Condition::conjunction([
            Atom::gt_const("AMOUNT", 900_000),
            Atom::eq_const("REGION", 1),
        ]),
        Some(vec!["OID".into(), "AMOUNT".into()]),
    );
    m.register_view("hot", expr, RefreshPolicy::Immediate)
        .unwrap();

    // A stream of small transactions; ~10% relevant amounts.
    let mut txns = Vec::with_capacity(STREAM);
    let mut next_oid = BASE;
    for t in 0..STREAM {
        let mut txn = Transaction::new();
        for k in 0..10i64 {
            let oid = next_oid;
            next_oid += 1;
            let amount = if (t as i64 + k) % 10 == 0 {
                900_001 + k
            } else {
                (oid * 31) % 800_000
            };
            txn.insert("orders", [oid, oid % 500, amount]).unwrap();
        }
        txns.push(txn);
    }
    (m, txns)
}

fn bench_stream_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_spj_stream");
    group.sample_size(10);
    for (name, filtering) in [("filtered", true), ("unfiltered", false)] {
        group.bench_function(BenchmarkId::new("differential", name), |b| {
            b.iter_batched(
                || build_manager(filtering),
                |(mut m, txns)| {
                    for txn in &txns {
                        m.execute(txn).unwrap();
                    }
                    black_box(m.view_contents("hot").unwrap().total_count())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // Baseline: apply the stream without views, then recompute once per
    // transaction.
    group.bench_function("full_reeval_per_txn", |b| {
        b.iter_batched(
            || {
                let (m, txns) = build_manager(false);
                let expr = SpjExpr::new(
                    ["orders", "customers"],
                    Condition::conjunction([
                        Atom::gt_const("AMOUNT", 900_000),
                        Atom::eq_const("REGION", 1),
                    ]),
                    Some(vec!["OID".into(), "AMOUNT".into()]),
                );
                (m.database().clone(), expr, txns)
            },
            |(mut db, expr, txns)| {
                let mut total = 0u64;
                for txn in &txns {
                    db.apply(txn).unwrap();
                    total += full_reval::recompute(&expr, &db).unwrap().total_count();
                }
                black_box(total)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_stream_maintenance);
criterion_main!(benches);
