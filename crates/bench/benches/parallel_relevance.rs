//! E18 — Algorithm 4.1 at scale: the per-tuple relevance test chunked
//! over a worker pool (`RelevanceFilter::filter_with`) versus the
//! sequential loop, across batch sizes. The APSP invariant-graph matrix
//! is built once and shared read-only by every worker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ivm::prelude::*;

fn build_filter_setting(width: usize) -> (Database, SpjExpr) {
    let r_attrs: Vec<String> = (0..width).map(|i| format!("R{i}")).collect();
    let s_attrs: Vec<String> = (0..width).map(|i| format!("S{i}")).collect();
    let mut db = Database::new();
    db.create("R", Schema::new(r_attrs.clone()).unwrap())
        .unwrap();
    db.create("S", Schema::new(s_attrs.clone()).unwrap())
        .unwrap();
    let mut atoms = Vec::new();
    for i in 0..width {
        atoms.push(Atom::cmp_attr(
            r_attrs[i].as_str(),
            CompOp::Le,
            s_attrs[i].as_str(),
            3,
        ));
        if i + 1 < width {
            atoms.push(Atom::cmp_attr(
                s_attrs[i].as_str(),
                CompOp::Lt,
                s_attrs[i + 1].as_str(),
                0,
            ));
        }
        atoms.push(Atom::lt_const(r_attrs[i].as_str(), 50));
    }
    let view = SpjExpr::new(["R", "S"], Condition::conjunction(atoms), None);
    (db, view)
}

fn tuples(n: usize, width: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| Tuple::new((0..width as i64).map(|j| (i * 7 + j * 13) % 100)))
        .collect()
}

fn bench_parallel_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_parallel_relevance");
    let width = 8;
    let (db, view) = build_filter_setting(width);
    let filter = RelevanceFilter::new(&view, &db, "R").unwrap();
    for batch in [1_000usize, 10_000, 50_000] {
        let ts = tuples(batch, width);
        group.throughput(Throughput::Elements(batch as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), batch),
                &batch,
                |b, _| b.iter(|| black_box(filter.filter_with(&ts, threads).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_filter);
criterion_main!(benches);
