//! Ablation of the engine optimizations DESIGN.md calls out: prefix
//! sharing (§5.3 subexpression reuse), selection pushdown, change-first
//! operand reordering, and the engine choice — each toggled independently
//! against the all-on default and the all-off "plain Algorithm 5.1".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::differential::{differential_delta, DiffOptions, Engine};
use ivm::prelude::*;
use ivm_bench::chain_scenario;

fn variants() -> Vec<(&'static str, DiffOptions)> {
    let on = DiffOptions::default();
    vec![
        ("all_on", on),
        (
            "no_prefix_sharing",
            DiffOptions {
                share_prefixes: false,
                ..on
            },
        ),
        (
            "no_pushdown",
            DiffOptions {
                push_selections: false,
                ..on
            },
        ),
        (
            "no_reorder",
            DiffOptions {
                reorder_operands: false,
                ..on
            },
        ),
        (
            "signed_engine",
            DiffOptions {
                engine: Engine::Signed,
                ..on
            },
        ),
        ("plain_paper", DiffOptions::plain()),
    ]
}

/// A selective chain view with updates to the middle relations — the shape
/// where all three optimizations bite.
fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_chain");
    group.sample_size(12);
    let p = 5;
    let mut sc = chain_scenario(42, p, 3_000, 600);
    // Add a selective condition on the first attribute so pushdown has
    // something to push.
    sc.view = SpjExpr::new(
        ivm::workload::Workload::chain_names(p),
        Atom::lt_const("A0", 120).into(),
        None,
    );
    let txn = sc
        .workload
        .multi_transaction(&sc.db, &[("R2", 25, 25), ("R3", 25, 25)])
        .unwrap();

    // All variants must agree before being timed.
    let reference = differential_delta(&sc.view, &sc.db, &txn, &DiffOptions::default())
        .unwrap()
        .delta;
    for (name, opts) in variants() {
        let delta = differential_delta(&sc.view, &sc.db, &txn, &opts)
            .unwrap()
            .delta;
        assert_eq!(delta, reference, "variant {name} diverged");
    }

    for (name, opts) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, opts).unwrap()))
        });
    }
    group.finish();
}

/// The general-tree reference engine vs the optimized SPJ engine on the
/// same SPJ view: the price of generality.
fn bench_tree_vs_spj(c: &mut Criterion) {
    use ivm::differential::tree_delta;
    use ivm_relational::expr::Expr;

    let mut group = c.benchmark_group("ablation_tree_vs_spj");
    group.sample_size(12);
    let mut sc = ivm_bench::join_scenario(77, 10_000, 10_000, 2_000);
    sc.view = SpjExpr::new(["R", "S"], Atom::lt_const("A", 500).into(), None);
    let tree = Expr::base("R")
        .join(Expr::base("S"))
        .select(Atom::lt_const("A", 500));
    let txn = sc.workload.transaction(&sc.db, "R", 50, 50).unwrap();

    // Agreement check before timing.
    let spj = differential_delta(&sc.view, &sc.db, &txn, &DiffOptions::default())
        .unwrap()
        .delta;
    assert_eq!(tree_delta(&tree, &sc.db, &txn).unwrap(), spj);

    group.bench_function("spj_engine", |b| {
        b.iter(|| {
            black_box(differential_delta(&sc.view, &sc.db, &txn, &DiffOptions::default()).unwrap())
        })
    });
    group.bench_function("tree_engine", |b| {
        b.iter(|| black_box(tree_delta(&tree, &sc.db, &txn).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_tree_vs_spj);
criterion_main!(benches);
