//! E9 — the truth-table expansion (§5.3): cost versus the number of
//! updated relations k (2^k − 1 rows), and the paper's proposed
//! optimization of re-using partial subexpressions across rows
//! (prefix-sharing DFS) as an ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::differential::{differential_delta, DiffOptions};
use ivm_bench::chain_scenario;
use ivm_relational::transaction::Transaction;

/// Build a transaction updating the first `k` relations of the chain.
fn txn_updating_k(sc: &mut ivm_bench::ChainScenario, k: usize, per_rel: usize) -> Transaction {
    let names: Vec<String> = (0..k).map(|i| format!("R{i}")).collect();
    let specs: Vec<(&str, usize, usize)> = names
        .iter()
        .map(|n| (n.as_str(), per_rel, per_rel))
        .collect();
    sc.workload.multi_transaction(&sc.db, &specs).unwrap()
}

fn bench_rows_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_rows_vs_k");
    group.sample_size(12);
    let p = 6;
    for k in [1usize, 2, 3, 4, 6] {
        let mut sc = chain_scenario(10, p, 1_000, 500);
        let txn = txn_updating_k(&mut sc, k, 20);
        group.bench_with_input(BenchmarkId::new("shared_prefixes", k), &k, |b, _| {
            let opts = DiffOptions {
                share_prefixes: true,
                ..DiffOptions::default()
            };
            b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("independent_rows", k), &k, |b, _| {
            let opts = DiffOptions {
                share_prefixes: false,
                ..DiffOptions::default()
            };
            b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
        });
    }
    group.finish();
}

fn bench_width_scaling(c: &mut Criterion) {
    // Fixed k = 2, growing p: the non-updated operands join into every
    // row; prefix sharing amortizes them.
    let mut group = c.benchmark_group("e9_width_scaling");
    group.sample_size(12);
    for p in [2usize, 4, 6] {
        let mut sc = chain_scenario(11, p, 800, 400);
        let txn = txn_updating_k(&mut sc, 2.min(p), 20);
        group.bench_with_input(BenchmarkId::new("shared_prefixes", p), &p, |b, _| {
            let opts = DiffOptions {
                share_prefixes: true,
                ..DiffOptions::default()
            };
            b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("independent_rows", p), &p, |b, _| {
            let opts = DiffOptions {
                share_prefixes: false,
                ..DiffOptions::default()
            };
            b.iter(|| black_box(differential_delta(&sc.view, &sc.db, &txn, &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows_vs_k, bench_width_scaling);
criterion_main!(benches);
