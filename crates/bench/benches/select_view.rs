//! E6 — select views (§5.1): differential maintenance
//! `v ∪ σ(i_r) − σ(d_r)` versus complete re-evaluation, across base sizes
//! and update-set sizes. The paper's claim: differential wins whenever the
//! change set is small relative to the relation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ivm::differential::select_view_delta;
use ivm::full_reval;
use ivm_bench::select_scenario;

fn bench_select_differential_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_select_view");
    group.sample_size(20);
    let size = 100_000;
    let domain = 1_000_000;
    for update in [10usize, 100, 1_000, 10_000] {
        let mut s = select_scenario(6, size, domain, domain / 2);
        let txn = s
            .workload
            .transaction(&s.db, "R", update / 2, update / 2)
            .unwrap();
        let schema = s.db.schema("R").unwrap().clone();
        let inserts = txn.insert_set("R", &schema).unwrap();
        let deletes = txn.delete_set("R", &schema).unwrap();
        let mut db_after = s.db.clone();
        db_after.apply(&txn).unwrap();

        group.bench_with_input(BenchmarkId::new("differential", update), &update, |b, _| {
            b.iter(|| black_box(select_view_delta(&s.condition, &inserts, &deletes).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_reeval", update), &update, |b, _| {
            b.iter(|| black_box(full_reval::recompute(&s.view, &db_after).unwrap()))
        });
    }
    group.finish();
}

fn bench_select_base_size_scaling(c: &mut Criterion) {
    // Fixed 100-tuple update against growing bases: differential cost must
    // stay flat while full re-evaluation grows linearly.
    let mut group = c.benchmark_group("e6_select_base_scaling");
    group.sample_size(20);
    for size in [1_000usize, 10_000, 100_000] {
        let domain = (size as i64) * 10;
        let mut s = select_scenario(7, size, domain, domain / 2);
        let txn = s.workload.transaction(&s.db, "R", 50, 50).unwrap();
        let schema = s.db.schema("R").unwrap().clone();
        let inserts = txn.insert_set("R", &schema).unwrap();
        let deletes = txn.delete_set("R", &schema).unwrap();
        let mut db_after = s.db.clone();
        db_after.apply(&txn).unwrap();

        group.bench_with_input(BenchmarkId::new("differential", size), &size, |b, _| {
            b.iter(|| black_box(select_view_delta(&s.condition, &inserts, &deletes).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_reeval", size), &size, |b, _| {
            b.iter(|| black_box(full_reval::recompute(&s.view, &db_after).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_select_differential_vs_full,
    bench_select_base_size_scaling
);
criterion_main!(benches);
