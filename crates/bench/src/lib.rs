//! Shared scenario builders and reporting helpers for the experiment
//! harness (benches and `exp_*` binaries). Every scenario is
//! deterministically seeded; the experiment ids (E4–E11) refer to
//! DESIGN.md's per-experiment index.

#![warn(missing_docs)]

use ivm::prelude::*;
use ivm_satisfiability::atom::{Atom as SatAtom, Op};
use ivm_satisfiability::conjunctive::ConjunctiveFormula;

/// A two-relation select/join scenario: R(A,B) of `r_size` rows joined
/// with S(B,C) of `s_size` rows, values in `[0, domain)`.
pub struct JoinScenario {
    /// The database (relations `R`, `S`).
    pub db: Database,
    /// The view `σ_cond(R ⋈ S)` (no projection).
    pub view: SpjExpr,
    /// Workload generator (for building transactions).
    pub workload: Workload,
}

/// Build a [`JoinScenario`].
pub fn join_scenario(seed: u64, r_size: usize, s_size: usize, domain: i64) -> JoinScenario {
    let mut workload = Workload::new(seed, domain);
    let mut db = Database::new();
    db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
    db.create("S", Schema::new(["B", "C"]).unwrap()).unwrap();
    workload.populate(&mut db, "R", r_size).unwrap();
    workload.populate(&mut db, "S", s_size).unwrap();
    let view = SpjExpr::new(["R", "S"], Condition::always_true(), None);
    JoinScenario { db, view, workload }
}

/// A single-relation select-view scenario: `σ_{A < threshold}(R)` over
/// R(A,B) with `size` rows drawn from `[0, domain)`. `threshold` controls
/// view selectivity.
pub struct SelectScenario {
    /// The database (relation `R`).
    pub db: Database,
    /// The select view.
    pub view: SpjExpr,
    /// The selection condition alone.
    pub condition: Condition,
    /// Workload generator.
    pub workload: Workload,
}

/// Build a [`SelectScenario`].
pub fn select_scenario(seed: u64, size: usize, domain: i64, threshold: i64) -> SelectScenario {
    let mut workload = Workload::new(seed, domain);
    let mut db = Database::new();
    db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
    workload.populate(&mut db, "R", size).unwrap();
    let condition: Condition = Atom::lt_const("A", threshold).into();
    let view = SpjExpr::new(["R"], condition.clone(), None);
    SelectScenario {
        db,
        view,
        condition,
        workload,
    }
}

/// A chain-join scenario over `p` relations of `size` rows each, with the
/// view `σ_{A0 < domain}(R0 ⋈ … ⋈ R_{p−1})` (the condition is trivially
/// true; selectivity comes from the joins).
pub struct ChainScenario {
    /// The database (relations `R0`…).
    pub db: Database,
    /// The chain view.
    pub view: SpjExpr,
    /// Workload generator.
    pub workload: Workload,
}

/// Build a [`ChainScenario`].
pub fn chain_scenario(seed: u64, p: usize, size: usize, domain: i64) -> ChainScenario {
    let mut workload = Workload::new(seed, domain);
    let db = workload.chain_database(p, size).unwrap();
    let view = SpjExpr::new(
        Workload::chain_names(p),
        Atom::lt_const("A0", domain).into(),
        None,
    );
    ChainScenario { db, view, workload }
}

/// A random conjunctive formula over `n` variables with `n_atoms` atoms —
/// the E4 satisfiability-scaling workload. Mixes satisfiable and
/// unsatisfiable instances.
pub fn random_formula(seed: u64, n: usize, n_atoms: usize) -> ConjunctiveFormula {
    // Self-contained xorshift so this helper needs no RNG dependency.
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    const OPS: [Op; 5] = [Op::Eq, Op::Lt, Op::Gt, Op::Le, Op::Ge];
    let mut atoms = Vec::with_capacity(n_atoms);
    for _ in 0..n_atoms {
        let op = OPS[(next() % 5) as usize];
        let x = (next() as usize) % n;
        if next() % 2 == 0 {
            atoms.push(SatAtom::var_const(x, op, (next() % 21) as i64 - 10));
        } else {
            let y = (next() as usize) % n;
            atoms.push(SatAtom::var_var(x, op, y, (next() % 9) as i64 - 4));
        }
    }
    ConjunctiveFormula::with_atoms(n, atoms).unwrap()
}

/// Print a fixed-width table row (helper for the `exp_*` binaries).
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$} "));
    }
    println!("{}", line.trim_end());
}

/// Print a table header with a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + widths.len();
    println!("{}", "-".repeat(total));
}

/// Time a closure, returning `(result, microseconds)`.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm::differential::{differential_delta, DiffOptions};

    #[test]
    fn join_scenario_is_consistent() {
        let mut s = join_scenario(1, 100, 100, 64);
        let txn = s.workload.transaction(&s.db, "R", 5, 5).unwrap();
        let r = differential_delta(&s.view, &s.db, &txn, &DiffOptions::default()).unwrap();
        let mut v = s.view.eval(&s.db).unwrap();
        v.apply_delta(&r.delta).unwrap();
        s.db.apply(&txn).unwrap();
        assert_eq!(v, s.view.eval(&s.db).unwrap());
    }

    #[test]
    fn select_scenario_threshold_controls_selectivity() {
        let tight = select_scenario(2, 500, 1000, 10);
        let loose = select_scenario(2, 500, 1000, 900);
        let v_tight = tight.view.eval(&tight.db).unwrap().total_count();
        let v_loose = loose.view.eval(&loose.db).unwrap().total_count();
        assert!(v_tight < v_loose);
    }

    #[test]
    fn chain_scenario_builds_any_width() {
        for p in 1..=4 {
            let s = chain_scenario(3, p, 30, 16);
            assert_eq!(s.view.arity(), p);
            s.view.eval(&s.db).unwrap();
        }
    }

    #[test]
    fn random_formula_mixes_sat_and_unsat() {
        use ivm_satisfiability::conjunctive::Solver;
        let mut sat = 0;
        let mut unsat = 0;
        for seed in 0..200 {
            if random_formula(seed, 6, 8).is_satisfiable(Solver::BellmanFord) {
                sat += 1;
            } else {
                unsat += 1;
            }
        }
        assert!(sat > 20, "expected a healthy satisfiable share, got {sat}");
        assert!(
            unsat > 20,
            "expected a healthy unsatisfiable share, got {unsat}"
        );
    }
}
