//! E6 + E8: the crossover question §6 leaves open — "determine under what
//! circumstances differential re-evaluation is more efficient than
//! complete re-evaluation". Sweeps the update ratio for a select view and
//! a join view, printing both costs and the winner per point.
//!
//! Run with: `cargo run --release -p ivm-bench --bin exp_crossover`

use ivm::differential::{differential_delta, select_view_delta, DiffOptions};
use ivm::full_reval;
use ivm_bench::{join_scenario, print_header, print_row, select_scenario, time_us};

const REPS: usize = 5;

fn median_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let (_, us) = time_us(&mut f);
            us
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[REPS / 2]
}

fn select_crossover() {
    println!("== E6: select view σ_{{A < θ}}(R), |R| = 100 000 ==\n");
    let widths = [12, 14, 14, 14];
    print_header(&["updates", "diff µs", "full µs", "winner"], &widths);
    let size = 100_000;
    let domain = 1_000_000i64;
    for update in [10usize, 100, 1_000, 10_000, 50_000, 100_000] {
        let mut s = select_scenario(21, size, domain, domain / 2);
        let n = update.min(size);
        let txn = s.workload.transaction(&s.db, "R", n / 2, n / 2).unwrap();
        let schema = s.db.schema("R").unwrap().clone();
        let inserts = txn.insert_set("R", &schema).unwrap();
        let deletes = txn.delete_set("R", &schema).unwrap();
        let mut db_after = s.db.clone();
        db_after.apply(&txn).unwrap();

        let diff = median_us(|| {
            std::hint::black_box(select_view_delta(&s.condition, &inserts, &deletes).unwrap());
        });
        let full = median_us(|| {
            std::hint::black_box(full_reval::recompute(&s.view, &db_after).unwrap());
        });
        print_row(
            &[
                update.to_string(),
                format!("{diff:.1}"),
                format!("{full:.1}"),
                (if diff < full { "differential" } else { "full" }).to_string(),
            ],
            &widths,
        );
    }
    println!();
}

fn join_crossover() {
    println!("== E8: join view R ⋈ S, |R| = |S| = 20 000 ==\n");
    let widths = [12, 14, 14, 14];
    print_header(&["insert ‰", "diff µs", "full µs", "winner"], &widths);
    let r_size = 20_000;
    for permille in [1usize, 10, 50, 100, 500, 1_000] {
        let n = (r_size * permille / 1_000).max(1);
        let mut sc = join_scenario(22, r_size, r_size, 4_000);
        let txn = sc.workload.transaction(&sc.db, "R", n, 0).unwrap();
        let mut db_after = sc.db.clone();
        db_after.apply(&txn).unwrap();

        let diff = median_us(|| {
            std::hint::black_box(
                differential_delta(&sc.view, &sc.db, &txn, &DiffOptions::default()).unwrap(),
            );
        });
        let full = median_us(|| {
            std::hint::black_box(full_reval::recompute(&sc.view, &db_after).unwrap());
        });
        print_row(
            &[
                permille.to_string(),
                format!("{diff:.1}"),
                format!("{full:.1}"),
                (if diff < full { "differential" } else { "full" }).to_string(),
            ],
            &widths,
        );
    }
    println!("\n(paper §5.1/§5.3: differential wins while the change set is small;");
    println!(" the crossover appears as the update ratio approaches the base size)");
}

fn main() {
    select_crossover();
    join_crossover();
}
