//! E1–E3: regenerate the paper's literal tables and worked examples from
//! code — Example 4.1's relevance decisions, the §5.3 truth table for
//! p = 3, and the tag-combination table.
//!
//! Run with: `cargo run --release -p ivm-bench --bin exp_tables`

use ivm::differential::truth_table;
use ivm::prelude::*;
use ivm_bench::{print_header, print_row};

fn example_41() {
    println!("== Example 4.1: relevance of inserts into r(A,B) ==");
    println!("view u = π_{{A,D}}(σ_{{(A<10) ∧ (C>5) ∧ (B=C)}}(r × s))\n");
    let mut db = Database::new();
    db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
    db.create("S", Schema::new(["C", "D"]).unwrap()).unwrap();
    db.load("R", [[1, 2], [5, 10], [10, 20]]).unwrap();
    db.load("S", [[10, 5], [20, 12]]).unwrap();
    let view = SpjExpr::new(
        ["R", "S"],
        Condition::conjunction([
            Atom::lt_const("A", 10),
            Atom::gt_const("C", 5),
            Atom::eq_attr("B", "C"),
        ]),
        Some(vec!["A".into(), "D".into()]),
    );
    println!("u = {}", view.eval(&db).unwrap());
    let f = RelevanceFilter::new(&view, &db, "R").unwrap();
    let widths = [10, 44];
    print_header(&["insert", "verdict"], &widths);
    for (t, paper) in [
        (Tuple::from([9, 10]), "relevant (paper: satisfiable, C=10)"),
        (
            Tuple::from([11, 10]),
            "IRRELEVANT (paper: 11<10 unsatisfiable)",
        ),
    ] {
        let verdict = if f.is_relevant(&t).unwrap() {
            "relevant"
        } else {
            "IRRELEVANT"
        };
        print_row(&[t.to_string(), format!("{verdict} — {paper}")], &widths);
    }
    println!();
}

fn truth_table_p3() {
    println!("== §5.3 truth table, p = 3 (all relations updated) ==\n");
    let widths = [4, 4, 4, 30];
    print_header(&["B1", "B2", "B3", "subexpression"], &widths);
    // Row 1 (all zero) is the current materialization, shown for
    // completeness then marked discarded.
    print_row(
        &[
            "0".into(),
            "0".into(),
            "0".into(),
            "r1 ⋈ r2 ⋈ r3   (discarded)".into(),
        ],
        &widths,
    );
    for row in truth_table::rows(3, &[0, 1, 2]) {
        let term: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if b {
                    format!("u{}", i + 1)
                } else {
                    format!("r{}", i + 1)
                }
            })
            .collect();
        print_row(
            &[
                (row[0] as u8).to_string(),
                (row[1] as u8).to_string(),
                (row[2] as u8).to_string(),
                term.join(" ⋈ "),
            ],
            &widths,
        );
    }
    println!("\n(u_i = changed tuples of r_i; with updates to r1, r2 only, the");
    println!(" rows with B3 = 1 are discarded, leaving rows 010, 100, 110)\n");
    let kept = truth_table::rows(3, &[0, 1]);
    assert_eq!(kept.len(), 3);
}

fn tag_table() {
    println!("== §5.3 tag-combination table ==\n");
    let widths = [8, 8, 10];
    print_header(&["r1", "r2", "r1 ⋈ r2"], &widths);
    for a in [Tag::Insert, Tag::Delete, Tag::Old] {
        for b in [Tag::Insert, Tag::Delete, Tag::Old] {
            let combined = match a.combine(b) {
                Some(t) => t.to_string(),
                None => "ignore".to_string(),
            };
            print_row(&[a.to_string(), b.to_string(), combined], &widths);
        }
    }
    println!("\nselect/project: tag passes through unchanged\n");
}

fn example_54_cases() {
    println!("== Example 5.4: the six join cases under a mixed transaction ==\n");
    let mut db = Database::new();
    db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
    db.create("S", Schema::new(["B", "C"]).unwrap()).unwrap();
    db.load("R", [[1, 10], [2, 10]]).unwrap();
    db.load("S", [[10, 100], [10, 200]]).unwrap();
    let view = ivm::differential::join_view(["R", "S"]);
    let mut txn = Transaction::new();
    txn.insert("R", [3, 10]).unwrap();
    txn.delete("R", [2, 10]).unwrap();
    txn.insert("S", [10, 300]).unwrap();
    txn.delete("S", [10, 200]).unwrap();
    let r = differential_delta(&view, &db, &txn, &DiffOptions::default()).unwrap();
    let widths = [34, 16];
    print_header(&["case", "delta effect"], &widths);
    let probe = |t: Tuple, label: &str| {
        let c = r.delta.count(&t);
        let effect = match c.signum() {
            1 => format!("insert x{c}"),
            -1 => format!("delete x{}", -c),
            _ => "ignored".to_string(),
        };
        print_row(&[format!("{label} {t}"), effect], &widths);
    };
    probe(Tuple::from([3, 10, 300]), "1: i_r ⋈ i_s ");
    probe(Tuple::from([3, 10, 200]), "2: i_r ⋈ d_s ");
    probe(Tuple::from([3, 10, 100]), "3: i_r ⋈ s   ");
    probe(Tuple::from([2, 10, 200]), "4: d_r ⋈ d_s ");
    probe(Tuple::from([2, 10, 100]), "5: d_r ⋈ s   ");
    probe(Tuple::from([1, 10, 100]), "6: r ⋈ s     ");
    println!();
}

fn main() {
    example_41();
    truth_table_p3();
    tag_table();
    example_54_cases();
    println!("all tables regenerated from code ✓");
}
