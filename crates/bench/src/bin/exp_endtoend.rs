//! E10: the complete pipeline on a transaction stream — differential with
//! the §4 relevance filter, differential without it, and per-transaction
//! full re-evaluation, with work counters alongside wall-clock time.
//!
//! Run with: `cargo run --release -p ivm-bench --bin exp_endtoend`

use ivm::full_reval;
use ivm::prelude::*;
use ivm_bench::{print_header, print_row, time_us};

const BASE: i64 = 50_000;
const STREAM: usize = 500;

fn view_expr() -> SpjExpr {
    SpjExpr::new(
        ["orders", "customers"],
        Condition::conjunction([
            Atom::gt_const("AMOUNT", 900_000),
            Atom::eq_const("REGION", 1),
        ]),
        Some(vec!["OID".into(), "AMOUNT".into()]),
    )
}

fn build_manager(filtering: bool) -> ViewManager {
    let mut m = ViewManager::new().with_filtering(filtering);
    m.create_relation("orders", Schema::new(["OID", "CUST", "AMOUNT"]).unwrap())
        .unwrap();
    m.create_relation("customers", Schema::new(["CUST", "REGION"]).unwrap())
        .unwrap();
    m.load(
        "customers",
        (0..500i64).map(|c| [c, c % 5]).collect::<Vec<_>>(),
    )
    .unwrap();
    m.load(
        "orders",
        (0..BASE)
            .map(|o| [o, o % 500, (o * 7919) % 1_000_000])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    m.register_view("hot", view_expr(), RefreshPolicy::Immediate)
        .unwrap();
    m
}

fn stream() -> Vec<Transaction> {
    let mut txns = Vec::with_capacity(STREAM);
    let mut next_oid = BASE;
    for t in 0..STREAM {
        let mut txn = Transaction::new();
        // 90% of transactions carry only small amounts — provably
        // irrelevant to the view, so the filter can skip them outright.
        let hot_txn = t % 10 == 0;
        for k in 0..10i64 {
            let oid = next_oid;
            next_oid += 1;
            let amount = if hot_txn && k == 0 {
                900_001 + (oid % 90_000)
            } else {
                (oid * 31) % 800_000
            };
            txn.insert("orders", [oid, oid % 500, amount]).unwrap();
        }
        txns.push(txn);
    }
    txns
}

fn main() {
    println!("== E10: {STREAM} transactions x 10 inserts against |orders| = {BASE} ==\n");
    let widths = [26, 12, 12, 12, 14];
    print_header(
        &["strategy", "total ms", "µs/txn", "joins", "skipped txns"],
        &widths,
    );

    // (a) differential + relevance filter
    let mut m = build_manager(true);
    let txns = stream();
    let (_, us) = time_us(|| {
        for txn in &txns {
            m.execute(txn).unwrap();
        }
    });
    let s = m.stats("hot").unwrap();
    print_row(
        &[
            "differential + filter".into(),
            format!("{:.1}", us / 1000.0),
            format!("{:.1}", us / STREAM as f64),
            s.diff.joins_performed.to_string(),
            s.skipped_by_filter.to_string(),
        ],
        &widths,
    );
    m.verify_consistency().unwrap();
    let final_view = m.view_contents("hot").unwrap().clone();

    // (b) differential without the filter
    let mut m = build_manager(false);
    let txns = stream();
    let (_, us) = time_us(|| {
        for txn in &txns {
            m.execute(txn).unwrap();
        }
    });
    let s = m.stats("hot").unwrap();
    print_row(
        &[
            "differential, no filter".into(),
            format!("{:.1}", us / 1000.0),
            format!("{:.1}", us / STREAM as f64),
            s.diff.joins_performed.to_string(),
            s.skipped_by_filter.to_string(),
        ],
        &widths,
    );
    m.verify_consistency().unwrap();
    assert_eq!(&final_view, m.view_contents("hot").unwrap());

    // (b2) cost-based strategy: should behave like differential on this
    // small-change stream (the §6 decision).
    let mut m = build_manager(true);
    let m_strategy = std::mem::replace(&mut m, ViewManager::new());
    let mut m = m_strategy.with_strategy(MaintenanceStrategy::CostBased);
    let txns = stream();
    let (_, us) = time_us(|| {
        for txn in &txns {
            m.execute(txn).unwrap();
        }
    });
    let s = m.stats("hot").unwrap();
    print_row(
        &[
            "cost-based strategy".into(),
            format!("{:.1}", us / 1000.0),
            format!("{:.1}", us / STREAM as f64),
            s.diff.joins_performed.to_string(),
            s.skipped_by_filter.to_string(),
        ],
        &widths,
    );
    m.verify_consistency().unwrap();
    assert_eq!(&final_view, m.view_contents("hot").unwrap());
    assert_eq!(s.full_recomputes, 0, "small changes must stay differential");

    // (c) full re-evaluation per transaction
    let m0 = build_manager(false);
    let mut db = m0.database().clone();
    let expr = view_expr();
    let txns = stream();
    let (_, us) = time_us(|| {
        for txn in &txns {
            db.apply(txn).unwrap();
            std::hint::black_box(full_reval::recompute(&expr, &db).unwrap());
        }
    });
    print_row(
        &[
            "full re-eval per txn".into(),
            format!("{:.1}", us / 1000.0),
            format!("{:.1}", us / STREAM as f64),
            (STREAM).to_string(),
            "0".into(),
        ],
        &widths,
    );
    assert_eq!(full_reval::recompute(&expr, &db).unwrap(), final_view);

    println!("\nall three strategies converge to the same view contents ✓");
}
