//! E11: snapshot refresh (§6) — deferred maintenance cost versus refresh
//! period, against full recomputation at the same cadence.
//!
//! Run with: `cargo run --release -p ivm-bench --bin exp_snapshot`

use ivm::full_reval;
use ivm::prelude::*;
use ivm_bench::{print_header, print_row, time_us};

const ITEMS: i64 = 500;
const SALES: i64 = 50_000;
const TXNS: usize = 1_000;

fn build() -> ViewManager {
    let mut m = ViewManager::new();
    m.create_relation("sales", Schema::new(["SID", "ITEM", "QTY"]).unwrap())
        .unwrap();
    m.create_relation("items", Schema::new(["ITEM", "PRICE"]).unwrap())
        .unwrap();
    m.load(
        "items",
        (0..ITEMS)
            .map(|i| [i, 5 + (i * 37) % 500])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    m.load(
        "sales",
        (0..SALES)
            .map(|s| [s, s % ITEMS, 1 + (s * 13) % 9])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    m
}

fn expr() -> SpjExpr {
    SpjExpr::new(
        ["sales", "items"],
        Atom::gt_const("PRICE", 400).into(),
        Some(vec![
            "SID".into(),
            "ITEM".into(),
            "QTY".into(),
            "PRICE".into(),
        ]),
    )
}

fn txn_stream() -> Vec<Transaction> {
    let mut txns = Vec::with_capacity(TXNS);
    let mut next_sid = SALES;
    for t in 0..TXNS {
        let mut txn = Transaction::new();
        for k in 0..5 {
            let sid = next_sid;
            next_sid += 1;
            txn.insert("sales", [sid, (sid * 7 + k) % ITEMS, 1 + (t as i64 % 9)])
                .unwrap();
        }
        if t % 3 == 0 {
            let old = t as i64 * 2;
            txn.delete("sales", [old, old % ITEMS, 1 + (old * 13) % 9])
                .unwrap();
        }
        txns.push(txn);
    }
    txns
}

fn main() {
    println!("== E11: deferred snapshot refresh, {TXNS} txns over |sales| = {SALES} ==\n");
    let widths = [8, 10, 14, 12, 12];
    print_header(
        &["period", "refreshes", "µs/refresh", "µs/txn", "runs"],
        &widths,
    );
    for period in [1usize, 10, 50, 200, 1_000] {
        let mut m = build();
        m.register_view("snap", expr(), RefreshPolicy::Deferred)
            .unwrap();
        let txns = txn_stream();
        let mut refresh_us = 0.0;
        let mut refreshes = 0usize;
        for (t, txn) in txns.iter().enumerate() {
            m.execute(txn).unwrap();
            if (t + 1) % period == 0 {
                let (_, us) = time_us(|| m.refresh("snap").unwrap());
                refresh_us += us;
                refreshes += 1;
            }
        }
        let (_, us) = time_us(|| m.refresh("snap").unwrap());
        refresh_us += us;
        refreshes += 1;
        m.verify_consistency().unwrap();
        let runs = m.stats("snap").unwrap().maintenance_runs;
        print_row(
            &[
                period.to_string(),
                refreshes.to_string(),
                format!("{:.1}", refresh_us / refreshes as f64),
                format!("{:.1}", refresh_us / TXNS as f64),
                runs.to_string(),
            ],
            &widths,
        );
    }

    // Full recomputation at period 50.
    let mut m = build();
    let e = expr();
    let txns = txn_stream();
    let mut full_us = 0.0;
    let mut recomputes = 0usize;
    for (t, txn) in txns.iter().enumerate() {
        m.execute(txn).unwrap();
        if (t + 1) % 50 == 0 {
            let (_, us) = time_us(|| {
                std::hint::black_box(full_reval::recompute(&e, m.database()).unwrap());
            });
            full_us += us;
            recomputes += 1;
        }
    }
    println!(
        "\nfull recomputation at period 50: {:.1} µs/refresh ({} refreshes)",
        full_us / recomputes as f64,
        recomputes
    );
    println!("\n(differential refresh cost tracks the accumulated change set;");
    println!(" full recomputation always pays the whole join)");
}
