//! E5: the relevance filter in numbers — per-tuple decision cost for the
//! prepared invariant-graph path versus the naive per-tuple rebuild, and
//! the fraction of a workload the filter removes as the view's condition
//! tightens.
//!
//! Run with: `cargo run --release -p ivm-bench --bin exp_filter`

use ivm::prelude::*;
use ivm_bench::{print_header, print_row, time_us};

fn per_tuple_cost() {
    println!("== E5a: per-tuple decision cost (batch of 20 000 tuples) ==\n");
    // Condition of growing width over R(R0..R{w-1}) ⋈ S(S0..S{w-1}).
    let widths_tbl = [6, 14, 14, 14, 10];
    print_header(
        &[
            "width",
            "prepared µs/t",
            "bellman µs/t",
            "floyd µs/t",
            "speedup",
        ],
        &widths_tbl,
    );
    for width in [2usize, 4, 8, 12, 16] {
        let r_attrs: Vec<String> = (0..width).map(|i| format!("R{i}")).collect();
        let s_attrs: Vec<String> = (0..width).map(|i| format!("S{i}")).collect();
        let mut db = Database::new();
        db.create("R", Schema::new(r_attrs.clone()).unwrap())
            .unwrap();
        db.create("S", Schema::new(s_attrs.clone()).unwrap())
            .unwrap();
        let mut atoms = Vec::new();
        for i in 0..width {
            atoms.push(Atom::cmp_attr(
                r_attrs[i].as_str(),
                CompOp::Le,
                s_attrs[i].as_str(),
                3,
            ));
            if i + 1 < width {
                atoms.push(Atom::cmp_attr(
                    s_attrs[i].as_str(),
                    CompOp::Lt,
                    s_attrs[i + 1].as_str(),
                    0,
                ));
            }
            atoms.push(Atom::lt_const(r_attrs[i].as_str(), 50));
        }
        let view = SpjExpr::new(["R", "S"], Condition::conjunction(atoms), None);
        let filter = RelevanceFilter::new(&view, &db, "R").unwrap();
        let tuples: Vec<Tuple> = (0..20_000i64)
            .map(|i| Tuple::new((0..width as i64).map(move |j| (i * 7 + j * 13) % 100)))
            .collect();

        let (_, fast) = time_us(|| {
            let mut kept = 0u32;
            for t in &tuples {
                kept += filter.is_relevant(t).unwrap() as u32;
            }
            kept
        });
        let (_, slow) = time_us(|| {
            let mut kept = 0u32;
            for t in &tuples {
                kept += filter.is_relevant_naive(t).unwrap() as u32;
            }
            kept
        });
        let (_, floyd) = time_us(|| {
            let mut kept = 0u32;
            for t in &tuples {
                kept += filter.is_relevant_floyd_from_scratch(t).unwrap() as u32;
            }
            kept
        });
        let n = tuples.len() as f64;
        print_row(
            &[
                width.to_string(),
                format!("{:.3}", fast / n),
                format!("{:.3}", slow / n),
                format!("{:.3}", floyd / n),
                format!("{:.1}x", floyd / fast),
            ],
            &widths_tbl,
        );
    }
    println!();
}

fn drop_rate_by_selectivity() {
    println!("== E5b: workload fraction removed vs condition tightness ==\n");
    // View σ_{AMOUNT > threshold}(orders ⋈ customers); stream of uniform
    // amounts in [0, 1_000_000).
    let widths_tbl = [12, 10, 12, 12];
    print_header(
        &["threshold", "checked", "dropped", "drop rate"],
        &widths_tbl,
    );
    for threshold in [0i64, 500_000, 900_000, 990_000, 999_999] {
        let mut db = Database::new();
        db.create("orders", Schema::new(["OID", "CUST", "AMOUNT"]).unwrap())
            .unwrap();
        db.create("customers", Schema::new(["CUST", "REGION"]).unwrap())
            .unwrap();
        let view = SpjExpr::new(
            ["orders", "customers"],
            Atom::gt_const("AMOUNT", threshold).into(),
            None,
        );
        let filter = RelevanceFilter::new(&view, &db, "orders").unwrap();
        let tuples: Vec<Tuple> = (0..10_000i64)
            .map(|i| Tuple::from([i, i % 500, (i * 7919) % 1_000_000]))
            .collect();
        let (out, _) = filter.filter(tuples.iter()).unwrap();
        let _ = out;
        let (kept, stats) = filter.filter(tuples.iter()).unwrap();
        let _ = kept;
        print_row(
            &[
                threshold.to_string(),
                stats.checked.to_string(),
                stats.irrelevant.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * stats.irrelevant as f64 / stats.checked as f64
                ),
            ],
            &widths_tbl,
        );
    }
    println!("\n(the filter decides from tuple values alone — no base data touched)");
}

fn main() {
    per_tuple_cost();
    drop_rate_by_selectivity();
}
