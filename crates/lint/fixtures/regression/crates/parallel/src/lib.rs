//! Seeded regression fixture: every construct in this tree must be
//! caught by `ivm-lint` — `ci/analyze.sh` fails its self-test if the
//! scan of this fake workspace comes back clean. Never compiled.

use std::time::Instant;

pub fn hot_path(items: &[u64]) -> u64 {
    // no-ambient-time: a wall clock in a sim-deterministic crate.
    let started = Instant::now();
    // no-panic: unwrap in an engine hot path.
    let first = items.first().unwrap();
    // no-unchecked-index: literal index without a guard.
    let second = items[1];
    let _ = started.elapsed();
    first + second
}
