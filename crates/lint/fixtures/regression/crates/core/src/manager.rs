//! Seeded Frontend C regressions. The fixture root has no
//! `concurrency-catalog.toml`, so the atomic site below must be reported
//! as uncataloged, and `forward`/`backward` acquire the two mutexes in
//! opposite orders, so the lock-order digraph must contain a cycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Pair {
    m1: Mutex<u64>,
    m2: Mutex<u64>,
    epoch: AtomicU64,
}

impl Pair {
    pub fn bump(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst)
    }

    pub fn forward(&self) -> u64 {
        let a = self.m1.lock().unwrap();
        let b = self.m2.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.m2.lock().unwrap();
        let a = self.m1.lock().unwrap();
        *a - *b
    }
}
