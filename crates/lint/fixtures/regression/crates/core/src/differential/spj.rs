//! Seeded regression fixture (see ../../../parallel/src/lib.rs). Never
//! compiled.

pub fn differentiate(obs: &Obs) {
    // metric-literal: a catalog name inlined outside the catalog file.
    obs.add("pool.chunks", 1);
    // no-panic: unreachable! in an engine hot path.
    unreachable!("fixture");
}
