//! Seeded regression fixture (see ../../parallel/src/lib.rs). Never
//! compiled.

pub fn append(buf: &mut Vec<u8>, record: Option<&[u8]>) {
    // no-panic: expect in the WAL hot path.
    let bytes = record.expect("record must be framed");
    buf.extend_from_slice(bytes);
    let first = unsafe { *bytes.as_ptr() }; // safety-comment: undocumented unsafe
    // no-panic: panic! in a hot path.
    if first == 0 {
        panic!("zero frame");
    }
}
