//! Seeded regression fixture: the fake workspace's metric catalog.
//! String literals here are legal — the `metric-literal` rule confines
//! metric names to this file. Never compiled.

/// Chunks fanned out by the fixture pool.
pub const POOL_CHUNKS: &str = "pool.chunks";
