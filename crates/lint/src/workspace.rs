//! Walking a workspace tree and linting every Rust source file.
//!
//! The walk starts at the workspace root, visits `.rs` files under any
//! directory except `target/`, `.git/` and `fixtures/` (the seeded
//! regression trees under `crates/lint/fixtures` must not lint the real
//! workspace run), and applies [`crate::source::lint_file`] to each.
//! Integration-test and bench trees (`tests/`, `benches/`) keep only the
//! `safety-comment` rule — everything else is a production-code rule.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::diag::{Report, RuleId};
use crate::source::lint_file;

/// Load the metric/span catalog out of `cfg.catalog_file` under `root`
/// into the config, so the `metric-literal` rule knows the names.
pub fn load_catalog(root: &Path, cfg: &mut LintConfig) -> io::Result<()> {
    let path = root.join(&cfg.catalog_file);
    let text = fs::read_to_string(path)?;
    let catalog = crate::catalog::Catalog::parse(&text);
    cfg.metric_names = catalog.metric_names();
    cfg.span_names = catalog.span_names();
    Ok(())
}

/// Recursively collect `.rs` files under `root`, repo-relative with `/`
/// separators, in sorted order (deterministic reports).
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // unreadable dirs are skipped, not fatal
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Is this a test/bench tree where only `safety-comment` applies?
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Lint every Rust file under `root` with the given config (call
/// [`load_catalog`] first for `metric-literal` coverage).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in rust_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        let mut file_report = lint_file(&rel, &text, cfg);
        if is_test_path(&rel) {
            file_report
                .findings
                .retain(|f| f.rule == RuleId::SafetyComment);
        }
        report.merge(file_report);
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, text: &str) {
        let p = dir.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, text).unwrap();
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ivm-lint-ws-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn walks_and_scopes() {
        let d = tmpdir("walk");
        write(&d, "crates/parallel/src/lib.rs", "fn f() { x.unwrap(); }");
        write(&d, "crates/other/src/lib.rs", "fn f() { x.unwrap(); }");
        write(&d, "target/debug/gen.rs", "fn f() { x.unwrap(); }");
        write(
            &d,
            "crates/lint/fixtures/bad/crates/parallel/src/lib.rs",
            "fn f() { x.unwrap(); }",
        );
        let cfg = LintConfig::default();
        let report = lint_workspace(&d, &cfg).unwrap();
        // Only the real hot-path file fires; target/ and fixtures/ are
        // skipped entirely, the non-hot crate is out of scope.
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].file, "crates/parallel/src/lib.rs");
        assert_eq!(report.scanned, 2);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn test_trees_keep_only_safety_rule() {
        let d = tmpdir("tests");
        write(
            &d,
            "tests/integration.rs",
            "fn f() { x.unwrap(); unsafe { y(); } }",
        );
        // tests/ is not a hot path, but make one that would fire anyway:
        write(
            &d,
            "crates/storage/tests/t.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let cfg = LintConfig::default();
        let report = lint_workspace(&d, &cfg).unwrap();
        assert_eq!(report.findings.len(), 1, "{report}");
        assert_eq!(report.findings[0].rule, RuleId::SafetyComment);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn catalog_loading_feeds_metric_rule() {
        let d = tmpdir("catalog");
        write(
            &d,
            "crates/obs/src/names.rs",
            "/// X.\npub const A: &str = \"pool.chunks\";\npub const S: &str = \"execute\";",
        );
        write(
            &d,
            "crates/core/src/x.rs",
            "fn f(o: &Obs) { o.add(\"pool.chunks\", 1); }",
        );
        let mut cfg = LintConfig::default();
        load_catalog(&d, &mut cfg).unwrap();
        assert_eq!(cfg.metric_names, ["pool.chunks"]);
        assert_eq!(cfg.span_names, ["execute"]);
        let report = lint_workspace(&d, &cfg).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, RuleId::MetricLiteral);
        let _ = fs::remove_dir_all(&d);
    }
}
