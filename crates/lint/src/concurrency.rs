//! Frontend C: concurrency static analysis — the atomic-ordering audit
//! and the lock-order digraph.
//!
//! The model checker (`crates/race`) verifies the *protocols*; this pass
//! verifies the *bookkeeping around them*:
//!
//! * **atomic-audit** — every `Ordering::*` site in the workspace must
//!   appear in the checked-in `concurrency-catalog.toml` with a one-line
//!   rationale. The catalog is a reviewed inventory: adding an atomic
//!   means writing down why its ordering is sufficient, and removing one
//!   means ratcheting the catalog (stale ceilings are diagnostics, like
//!   the lint baseline). Counting is per `(file, ordering)` so line
//!   churn never invalidates entries.
//! * **lock-order-cycle** — `Mutex`/`RwLock` acquisitions are extracted
//!   per function (token-level), an approximate inter-procedural
//!   digraph is built (locks held at a call site propagate over the
//!   callee's transitively-acquired locks), and every cycle is reported
//!   with the acquisition path witnessing each edge — the classic
//!   deadlock shape, caught before a scheduler has to.
//!
//! Approximations (deliberate, documented): lock identity is the
//! declared field/static name scoped to its file (`file::name`), so
//! acquisitions are only recognized in the file that declares the lock;
//! a guard is assumed held until the end of the enclosing function
//! (drops are invisible at token level — conservative for ordering);
//! `.read()`/`.write()`/`.lock()` count only with an empty argument
//! list, which excludes `io::Read::read(&mut buf)`-style calls; calls
//! are resolved by bare name against every scanned function (may
//! over-approximate across modules). All of these only ever *add*
//! edges, so a reported cycle deserves a look even when the runtime
//! nesting makes it unreachable — restructure or document it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

use crate::diag::{Finding, Report, RuleId};
use crate::tokenizer::{tokenize, Token, TokenKind};
use crate::workspace::rust_files;

/// The five store/load orderings of `std::sync::atomic::Ordering`.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

// ---------------------------------------------------------------------
// The concurrency catalog (TOML subset, like the lint baseline).
// ---------------------------------------------------------------------

/// One catalog entry: up to `count` `Ordering::<ordering>` sites in
/// `file`, with the rationale for why that ordering is correct there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicEntry {
    /// Repo-relative file.
    pub file: String,
    /// Ordering name (`Relaxed`, `Acquire`, `Release`, `AcqRel`, `SeqCst`).
    pub ordering: String,
    /// Number of sites of this ordering in the file.
    pub count: usize,
    /// One-line justification (required; empty is a diagnostic).
    pub rationale: String,
}

/// The parsed `concurrency-catalog.toml`.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyCatalog {
    /// All entries, in file/ordering order.
    pub atomics: Vec<AtomicEntry>,
}

/// An `[[atomic]]` entry mid-parse: (file, ordering, count, rationale).
type PartialEntry = (Option<String>, Option<String>, Option<usize>, String);

impl ConcurrencyCatalog {
    /// Parse the TOML subset (same grammar family as the lint baseline:
    /// table arrays of scalar `key = value` pairs, hand-parsed because
    /// the container is offline).
    pub fn parse(text: &str) -> Result<ConcurrencyCatalog, String> {
        let mut atomics: Vec<AtomicEntry> = Vec::new();
        let mut current: Option<PartialEntry> = None;
        let mut finish = |cur: &mut Option<PartialEntry>| -> Result<(), String> {
            if let Some((file, ordering, count, rationale)) = cur.take() {
                let file = file.ok_or("entry missing `file`")?;
                let ordering = ordering.ok_or("entry missing `ordering`")?;
                if !ORDERINGS.contains(&ordering.as_str()) {
                    return Err(format!("unknown ordering `{ordering}`"));
                }
                atomics.push(AtomicEntry {
                    file,
                    ordering,
                    count: count.unwrap_or(1),
                    rationale,
                });
            }
            Ok(())
        };
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[atomic]]" {
                finish(&mut current)?;
                current = Some((None, None, None, String::new()));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let Some(cur) = current.as_mut() else {
                return Err(format!("line {}: key outside an [[atomic]] entry", n + 1));
            };
            let key = key.trim();
            let value = value.trim();
            let unquote = |v: &str| -> Result<String, String> {
                v.strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .map(str::to_owned)
                    .ok_or(format!("line {}: expected a quoted string", n + 1))
            };
            match key {
                "file" => cur.0 = Some(unquote(value)?),
                "ordering" => cur.1 = Some(unquote(value)?),
                "count" => {
                    cur.2 = Some(
                        value
                            .parse()
                            .map_err(|_| format!("line {}: bad count `{value}`", n + 1))?,
                    )
                }
                "rationale" => cur.3 = unquote(value)?,
                _ => {}
            }
        }
        finish(&mut current)?;
        Ok(ConcurrencyCatalog { atomics })
    }

    /// Render back to the TOML subset (for `--write-concurrency-catalog`).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ivm-lint concurrency catalog — every `Ordering::*` site in the workspace,\n\
             # counted per (file, ordering), each with a one-line rationale for why that\n\
             # ordering is sufficient. The atomic-audit lint fails on any site not\n\
             # covered here and reports stale ceilings when sites are removed.\n\
             # Regenerate counts (rationales are preserved) with:\n\
             #   cargo run -p ivm-lint -- --write-concurrency-catalog\n",
        );
        for e in &self.atomics {
            out.push_str("\n[[atomic]]\n");
            out.push_str(&format!("file = \"{}\"\n", e.file));
            out.push_str(&format!("ordering = \"{}\"\n", e.ordering));
            out.push_str(&format!("count = {}\n", e.count));
            out.push_str(&format!("rationale = \"{}\"\n", e.rationale));
        }
        out
    }

    /// Build a catalog exactly covering `sites`, carrying over rationales
    /// from `previous` where the `(file, ordering)` key survives.
    pub fn from_sites(sites: &[AtomicSite], previous: &ConcurrencyCatalog) -> ConcurrencyCatalog {
        let old: BTreeMap<(&str, &str), &str> = previous
            .atomics
            .iter()
            .map(|e| ((e.file.as_str(), e.ordering.as_str()), e.rationale.as_str()))
            .collect();
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for s in sites {
            *counts
                .entry((s.file.clone(), s.ordering.clone()))
                .or_default() += 1;
        }
        ConcurrencyCatalog {
            atomics: counts
                .into_iter()
                .map(|((file, ordering), count)| {
                    let rationale = old
                        .get(&(file.as_str(), ordering.as_str()))
                        .map(|r| (*r).to_owned())
                        .unwrap_or_default();
                    AtomicEntry {
                        file,
                        ordering,
                        count,
                        rationale,
                    }
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Atomic-ordering site scanner.
// ---------------------------------------------------------------------

/// One `Ordering::*` occurrence in source code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the ordering name.
    pub line: usize,
    /// 1-based column of the ordering name.
    pub col: usize,
    /// Ordering name (`Relaxed`, …, `SeqCst`).
    pub ordering: String,
}

/// Scan one file's tokens for `Ordering::<name>` sites. Comments and
/// strings never match (they are distinct token kinds); `use` statements
/// are skipped (imports are not call sites) — but a
/// `use …::Ordering::SeqCst;` import makes later *bare* `SeqCst` idents
/// count as sites; test code *is* included — a test's atomics race like
/// any other code's.
pub fn atomic_sites(path: &str, tokens: &[Token]) -> Vec<AtomicSite> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    // Pass 1: ordering names imported directly (`Ordering::SeqCst` or
    // `Ordering::{SeqCst, Relaxed}` inside a `use`).
    let mut imported: BTreeSet<&str> = BTreeSet::new();
    let mut in_use = false;
    for tok in &code {
        match &tok.kind {
            TokenKind::Ident(s) if s == "use" => in_use = true,
            TokenKind::Punct(';') => in_use = false,
            TokenKind::Ident(s) if in_use => {
                if let Some(o) = ORDERINGS.iter().find(|o| *o == s) {
                    imported.insert(o);
                }
            }
            _ => {}
        }
    }
    // Pass 2: the sites themselves.
    let mut sites = Vec::new();
    let mut in_use = false;
    for i in 0..code.len() {
        let tok = code[i];
        let push = |sites: &mut Vec<AtomicSite>, t: &Token, name: &str| {
            sites.push(AtomicSite {
                file: path.to_owned(),
                line: t.line,
                col: t.col,
                ordering: name.to_owned(),
            });
        };
        match &tok.kind {
            TokenKind::Ident(s) if s == "use" => in_use = true,
            TokenKind::Punct(';') => in_use = false,
            TokenKind::Ident(s)
                if s == "Ordering"
                    && !in_use
                    && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && code.get(i + 2).is_some_and(|t| t.is_punct(':')) =>
            {
                if let Some(name) = code.get(i + 3).and_then(|t| t.ident()) {
                    if ORDERINGS.contains(&name) {
                        push(&mut sites, code[i + 3], name);
                    }
                }
            }
            TokenKind::Ident(s)
                if !in_use
                    && imported.contains(s.as_str())
                    // A path-qualified use (`Ordering::SeqCst`,
                    // `DeclaredOrdering::Relaxed`) is counted — or
                    // excluded — by the qualified match above, so a
                    // bare site must not follow `::`.
                    && !(i >= 2
                        && code[i - 1].is_punct(':')
                        && code[i - 2].is_punct(':')) =>
            {
                push(&mut sites, tok, s);
            }
            _ => {}
        }
    }
    sites
}

// ---------------------------------------------------------------------
// Lock-order extraction.
// ---------------------------------------------------------------------

/// One ordered event inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockEvent {
    /// Acquisition of a declared lock (qualified id) at a line.
    Acquire { lock: String, line: usize },
    /// Call to a (possibly scanned) function by bare name.
    Call { name: String, line: usize },
}

/// One scanned function and its event sequence.
#[derive(Debug, Clone)]
struct FnInfo {
    file: String,
    name: String,
    events: Vec<LockEvent>,
}

/// Idents that look like calls but are not (`if x.read().is_ok()` style
/// noise is fine — these are control keywords that precede `(`).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "let", "loop", "in", "as", "move", "else",
    "impl", "where", "pub", "unsafe", "dyn",
];

/// Collect the names declared as `Mutex<…>` / `RwLock<…>` in this file:
/// `name: Mutex<…>` field/static declarations, with a bounded lookahead
/// through path prefixes (`std::sync::Mutex`) and wrappers (`Arc<Mutex<…>>`).
fn declared_locks(code: &[&Token]) -> BTreeSet<String> {
    let mut locks = BTreeSet::new();
    for i in 0..code.len() {
        let Some(name) = code[i].ident() else {
            continue;
        };
        // `name :` but not `name ::` and not `:: name`.
        if !code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            || i.checked_sub(1)
                .and_then(|p| code.get(p))
                .is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        // Lookahead through the type annotation for `Mutex<` / `RwLock<`.
        let mut j = i + 2;
        let mut steps = 0;
        while let Some(t) = code.get(j) {
            if steps > 16
                || t.is_punct(',')
                || t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct(')')
                || t.is_punct('=')
            {
                break;
            }
            if matches!(t.ident(), Some("Mutex" | "RwLock"))
                && code.get(j + 1).is_some_and(|t| t.is_punct('<'))
            {
                locks.insert(name.to_owned());
                break;
            }
            j += 1;
            steps += 1;
        }
    }
    locks
}

/// Extract every `fn` body's ordered lock/call events from one file.
/// Events inside a nested `fn` belong to the nested function only.
fn scan_functions(path: &str, code: &[&Token], locks: &BTreeSet<String>) -> Vec<FnInfo> {
    // Pass 1: find fn body spans `[open_brace, close_brace]` by index.
    struct Span {
        name: String,
        start: usize,
        end: usize,
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].ident() == Some("fn") {
            if let Some(name) = code.get(i + 1).and_then(|t| t.ident()) {
                // Find the body `{`, unless this is a trait decl ending `;`.
                let mut j = i + 2;
                let mut depth = 0usize; // (), <> not tracked — `{` in a
                                        // signature only occurs in const
                                        // generics, which the repo avoids
                while let Some(t) = code.get(j) {
                    if t.is_punct('{') && depth == 0 {
                        break;
                    }
                    if t.is_punct(';') && depth == 0 {
                        break;
                    }
                    if t.is_punct('(') {
                        depth += 1;
                    }
                    if t.is_punct(')') {
                        depth = depth.saturating_sub(1);
                    }
                    j += 1;
                }
                if code.get(j).is_some_and(|t| t.is_punct('{')) {
                    let mut braces = 0usize;
                    let mut end = j;
                    while let Some(t) = code.get(end) {
                        if t.is_punct('{') {
                            braces += 1;
                        } else if t.is_punct('}') {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    spans.push(Span {
                        name: name.to_owned(),
                        start: j,
                        end: end.min(code.len()),
                    });
                }
            }
        }
        i += 1;
    }

    // Pass 2: walk each span, attributing events to the innermost fn.
    let innermost = |idx: usize| -> Option<usize> {
        spans
            .iter()
            .enumerate()
            .filter(|(_, s)| idx > s.start && idx < s.end)
            .min_by_key(|(_, s)| s.end - s.start)
            .map(|(k, _)| k)
    };
    let mut infos: Vec<FnInfo> = spans
        .iter()
        .map(|s| FnInfo {
            file: path.to_owned(),
            name: s.name.clone(),
            events: Vec::new(),
        })
        .collect();
    for idx in 0..code.len() {
        let Some(owner) = innermost(idx) else {
            continue;
        };
        let tok = code[idx];
        // Acquisition: `name . {lock|read|write} ( )` with `name` declared
        // as a lock in this file. Empty arg list excludes io::Read-style
        // calls that share the method name.
        if let Some(name) = tok.ident() {
            if locks.contains(name)
                && code.get(idx + 1).is_some_and(|t| t.is_punct('.'))
                && matches!(
                    code.get(idx + 2).and_then(|t| t.ident()),
                    Some("lock" | "read" | "write")
                )
                && code.get(idx + 3).is_some_and(|t| t.is_punct('('))
                && code.get(idx + 4).is_some_and(|t| t.is_punct(')'))
            {
                infos[owner].events.push(LockEvent::Acquire {
                    lock: format!("{path}::{name}"),
                    line: tok.line,
                });
                continue;
            }
            // Call: `name(` (free/associated) or `self.name(`. Method
            // calls on arbitrary receivers are deliberately ignored —
            // resolving `conn.write(…)` by bare name to every `write`
            // in the workspace floods the graph with phantom edges.
            if !NON_CALL_KEYWORDS.contains(&name)
                && code.get(idx + 1).is_some_and(|t| t.is_punct('('))
            {
                let prev_dot = idx
                    .checked_sub(1)
                    .and_then(|p| code.get(p))
                    .is_some_and(|t| t.is_punct('.'));
                let self_recv = idx
                    .checked_sub(2)
                    .and_then(|p| code.get(p))
                    .is_some_and(|t| t.ident() == Some("self"));
                if !prev_dot || self_recv {
                    infos[owner].events.push(LockEvent::Call {
                        name: name.to_owned(),
                        line: tok.line,
                    });
                }
            }
        }
    }
    infos
}

// ---------------------------------------------------------------------
// The inter-procedural lock-order digraph.
// ---------------------------------------------------------------------

/// Why an edge exists: where the earlier lock was held and the later one
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWitness {
    /// Repo-relative file of the acquiring function.
    pub file: String,
    /// Function in which the ordering was observed.
    pub function: String,
    /// Line of the second acquisition (or the call that performs it).
    pub line: usize,
    /// Human-readable description of the acquisition path.
    pub detail: String,
}

/// The extracted lock-order digraph: nodes are qualified lock ids, each
/// edge `a → b` ("a held while acquiring b") keeps its first witness.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Edge map: `(from, to)` → first witness observed.
    pub edges: BTreeMap<(String, String), EdgeWitness>,
}

impl LockGraph {
    /// Build the digraph from every scanned function, propagating
    /// transitively-acquired locks over calls (one fixpoint pass).
    fn build(functions: &[FnInfo]) -> LockGraph {
        // Bare name → indices of functions with that name (approximate
        // cross-module resolution).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in functions.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        // Fixpoint: locks each function may acquire, transitively.
        let mut acq: Vec<BTreeSet<String>> = functions
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .filter_map(|e| match e {
                        LockEvent::Acquire { lock, .. } => Some(lock.clone()),
                        LockEvent::Call { .. } => None,
                    })
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for (i, f) in functions.iter().enumerate() {
                for e in &f.events {
                    let LockEvent::Call { name, .. } = e else {
                        continue;
                    };
                    let Some(callees) = by_name.get(name.as_str()) else {
                        continue;
                    };
                    for &c in callees {
                        if c == i {
                            continue;
                        }
                        let add: Vec<String> = acq[c].difference(&acq[i]).cloned().collect();
                        if !add.is_empty() {
                            acq[i].extend(add);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Edges: walk each function with the held-set approximation
        // (a guard lives to the end of the function).
        let mut graph = LockGraph::default();
        for (i, f) in functions.iter().enumerate() {
            let mut held: BTreeSet<String> = BTreeSet::new();
            for e in &f.events {
                match e {
                    LockEvent::Acquire { lock, line } => {
                        for h in &held {
                            if h != lock {
                                graph.add_edge(
                                    h.clone(),
                                    lock.clone(),
                                    EdgeWitness {
                                        file: f.file.clone(),
                                        function: f.name.clone(),
                                        line: *line,
                                        detail: format!(
                                            "{} acquires {lock} while holding {h}",
                                            f.name
                                        ),
                                    },
                                );
                            }
                        }
                        held.insert(lock.clone());
                    }
                    LockEvent::Call { name, line } => {
                        if held.is_empty() {
                            continue;
                        }
                        let Some(callees) = by_name.get(name.as_str()) else {
                            continue;
                        };
                        let mut reachable: BTreeSet<&String> = BTreeSet::new();
                        for &c in callees {
                            if c != i {
                                reachable.extend(&acq[c]);
                            }
                        }
                        for h in &held {
                            for l in &reachable {
                                if *l != h {
                                    graph.add_edge(
                                        h.clone(),
                                        (*l).clone(),
                                        EdgeWitness {
                                            file: f.file.clone(),
                                            function: f.name.clone(),
                                            line: *line,
                                            detail: format!(
                                                "{} calls {name}() (which acquires {l}) while holding {h}",
                                                f.name
                                            ),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        graph
    }

    fn add_edge(&mut self, from: String, to: String, witness: EdgeWitness) {
        self.edges.entry((from, to)).or_insert(witness);
    }

    /// Find every elementary cycle's canonical node set, each with the
    /// witness path around it. Deterministic: nodes and successors are
    /// visited in sorted order.
    pub fn cycles(&self) -> Vec<Vec<(String, EdgeWitness)>> {
        let mut succ: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (from, to) in self.edges.keys() {
            succ.entry(from).or_default().push(to);
        }
        let nodes: BTreeSet<&String> = self.edges.keys().map(|(f, _)| f).collect();
        let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut out = Vec::new();
        for &start in &nodes {
            // DFS for a path start → … → start.
            let mut path: Vec<&String> = vec![start];
            let mut found: Option<Vec<&String>> = None;
            fn dfs<'a>(
                node: &'a String,
                start: &'a String,
                succ: &BTreeMap<&'a String, Vec<&'a String>>,
                path: &mut Vec<&'a String>,
                found: &mut Option<Vec<&'a String>>,
            ) {
                if found.is_some() {
                    return;
                }
                for &next in succ.get(node).map(Vec::as_slice).unwrap_or_default() {
                    if next == start {
                        *found = Some(path.clone());
                        return;
                    }
                    if path.contains(&next) {
                        continue;
                    }
                    path.push(next);
                    dfs(next, start, succ, path, found);
                    path.pop();
                }
            }
            dfs(start, start, &succ, &mut path, &mut found);
            let Some(cycle) = found else { continue };
            let mut canonical: Vec<String> = cycle.iter().map(|s| (*s).clone()).collect();
            canonical.sort();
            if !seen_sets.insert(canonical) {
                continue;
            }
            let mut detailed = Vec::new();
            for (k, &node) in cycle.iter().enumerate() {
                let next = cycle[(k + 1) % cycle.len()];
                let w = self.edges[&(node.clone(), next.clone())].clone();
                detailed.push((node.clone(), w));
            }
            out.push(detailed);
        }
        out
    }
}

// ---------------------------------------------------------------------
// The workspace pass.
// ---------------------------------------------------------------------

/// Everything Frontend C extracted from one workspace scan.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyAnalysis {
    /// Every `Ordering::*` site, in file/line order.
    pub sites: Vec<AtomicSite>,
    /// The lock-order digraph.
    pub graph: LockGraph,
}

/// Scan the workspace for atomic sites and the lock graph (no
/// diagnostics yet — [`audit`] turns this plus a catalog into findings).
pub fn scan_concurrency(root: &Path) -> io::Result<ConcurrencyAnalysis> {
    let mut sites = Vec::new();
    let mut functions = Vec::new();
    for rel in rust_files(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let tokens = tokenize(&text);
        sites.extend(atomic_sites(&rel, &tokens));
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let locks = declared_locks(&code);
        functions.extend(scan_functions(&rel, &code, &locks));
    }
    Ok(ConcurrencyAnalysis {
        sites,
        graph: LockGraph::build(&functions),
    })
}

/// Turn a scan plus the checked-in catalog into diagnostics:
///
/// * `atomic-audit` — a site group not in the catalog (per site), a
///   group exceeding its ceiling, a stale ceiling, a missing rationale;
/// * `lock-order-cycle` — one finding per distinct cycle, naming every
///   edge's acquisition path.
pub fn audit(analysis: &ConcurrencyAnalysis, catalog: &ConcurrencyCatalog) -> Report {
    let mut report = Report::default();
    let mut by_key: BTreeMap<(String, String), Vec<&AtomicSite>> = BTreeMap::new();
    for s in &analysis.sites {
        by_key
            .entry((s.file.clone(), s.ordering.clone()))
            .or_default()
            .push(s);
    }
    let entries: BTreeMap<(&str, &str), &AtomicEntry> = catalog
        .atomics
        .iter()
        .map(|e| ((e.file.as_str(), e.ordering.as_str()), e))
        .collect();

    for ((file, ordering), sites) in &by_key {
        match entries.get(&(file.as_str(), ordering.as_str())) {
            None => {
                for s in sites {
                    report.findings.push(Finding {
                        rule: RuleId::AtomicAudit,
                        file: file.clone(),
                        line: s.line,
                        col: s.col,
                        message: format!(
                            "`Ordering::{ordering}` site not in concurrency-catalog.toml; \
                             add an [[atomic]] entry with a rationale"
                        ),
                    });
                }
            }
            Some(e) => {
                if sites.len() > e.count {
                    let first_excess = sites[e.count];
                    report.findings.push(Finding {
                        rule: RuleId::AtomicAudit,
                        file: file.clone(),
                        line: first_excess.line,
                        col: first_excess.col,
                        message: format!(
                            "{} `Ordering::{ordering}` site(s) but the catalog allows {}; \
                             justify the new site(s) and bump the count",
                            sites.len(),
                            e.count
                        ),
                    });
                } else if sites.len() < e.count {
                    report.findings.push(Finding {
                        rule: RuleId::AtomicAudit,
                        file: file.clone(),
                        line: 0,
                        col: 0,
                        message: format!(
                            "stale catalog ceiling: {} `Ordering::{ordering}` site(s), catalog says {} — ratchet it down",
                            sites.len(),
                            e.count
                        ),
                    });
                }
                if e.rationale.trim().is_empty() {
                    report.findings.push(Finding {
                        rule: RuleId::AtomicAudit,
                        file: file.clone(),
                        line: 0,
                        col: 0,
                        message: format!(
                            "catalog entry for `Ordering::{ordering}` has no rationale — say why the ordering is sufficient"
                        ),
                    });
                }
            }
        }
    }
    // Entries whose (file, ordering) no longer fires at all.
    for e in &catalog.atomics {
        if !by_key.contains_key(&(e.file.clone(), e.ordering.clone())) {
            report.findings.push(Finding {
                rule: RuleId::AtomicAudit,
                file: e.file.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "stale catalog entry: no `Ordering::{}` sites remain — remove it",
                    e.ordering
                ),
            });
        }
    }

    for cycle in analysis.graph.cycles() {
        let (first_lock, first_witness) = &cycle[0];
        let path = cycle
            .iter()
            .map(|(lock, w)| format!("{lock} [{} at {}:{}]", w.detail, w.file, w.line))
            .collect::<Vec<_>>()
            .join(" -> ");
        report.findings.push(Finding {
            rule: RuleId::LockOrderCycle,
            file: first_witness.file.clone(),
            line: first_witness.line,
            col: 1,
            message: format!("lock-order cycle through {first_lock}: {path}"),
        });
    }

    report.sort();
    report
}

/// The full Frontend C pass: scan `root`, audit against `catalog`.
pub fn analyze_concurrency(root: &Path, catalog: &ConcurrencyCatalog) -> io::Result<Report> {
    let analysis = scan_concurrency(root)?;
    Ok(audit(&analysis, catalog))
}

impl fmt::Display for AtomicSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: Ordering::{}",
            self.file, self.line, self.col, self.ordering
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(src: &str) -> Vec<String> {
        atomic_sites("f.rs", &tokenize(src))
            .into_iter()
            .map(|s| s.ordering)
            .collect()
    }

    #[test]
    fn ordering_sites_found_in_code_only() {
        let src = r#"
use std::sync::atomic::Ordering;
// Ordering::SeqCst in a comment
fn f(a: &AtomicU64) {
    let s = "Ordering::Relaxed";
    a.store(1, Ordering::Release);
    a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).ok();
}
"#;
        assert_eq!(sites_of(src), ["Release", "SeqCst", "Relaxed"]);
    }

    #[test]
    fn use_lines_are_skipped() {
        assert_eq!(
            sites_of("use std::sync::atomic::Ordering::SeqCst;\nfn f() {}"),
            Vec::<String>::new()
        );
        // …but a site after the use on the next statement still counts.
        assert_eq!(
            sites_of("use x::Ordering;\nfn f(a: &A) { a.load(Ordering::Acquire); }"),
            ["Acquire"]
        );
    }

    #[test]
    fn imported_orderings_count_bare_uses() {
        let src = r#"
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
fn f(a: &AtomicBool) {
    a.store(true, SeqCst);
    while a.load(SeqCst) {}
}
"#;
        assert_eq!(sites_of(src), ["SeqCst", "SeqCst"]);
        // A different enum's variant of the same name stays excluded.
        assert_eq!(
            sites_of("use x::Ordering::SeqCst;\nfn f() { g(DeclaredOrdering::SeqCst); }"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn catalog_round_trips() {
        let text = r#"
[[atomic]]
file = "crates/obs/src/recorder.rs"
ordering = "Relaxed"
count = 4
rationale = "independent counters; snapshot consistency via the write lock"
"#;
        let c = ConcurrencyCatalog::parse(text).unwrap();
        assert_eq!(c.atomics.len(), 1);
        assert_eq!(c.atomics[0].count, 4);
        let again = ConcurrencyCatalog::parse(&c.render()).unwrap();
        assert_eq!(again.atomics, c.atomics);
    }

    #[test]
    fn catalog_rejects_unknown_ordering() {
        let text = "[[atomic]]\nfile = \"a.rs\"\nordering = \"Sequential\"\n";
        assert!(ConcurrencyCatalog::parse(text)
            .unwrap_err()
            .contains("unknown ordering"));
    }

    #[test]
    fn from_sites_preserves_rationales() {
        let sites = vec![
            AtomicSite {
                file: "a.rs".into(),
                line: 1,
                col: 1,
                ordering: "SeqCst".into(),
            },
            AtomicSite {
                file: "a.rs".into(),
                line: 2,
                col: 1,
                ordering: "SeqCst".into(),
            },
        ];
        let old = ConcurrencyCatalog {
            atomics: vec![AtomicEntry {
                file: "a.rs".into(),
                ordering: "SeqCst".into(),
                count: 1,
                rationale: "kept".into(),
            }],
        };
        let new = ConcurrencyCatalog::from_sites(&sites, &old);
        assert_eq!(new.atomics.len(), 1);
        assert_eq!(new.atomics[0].count, 2);
        assert_eq!(new.atomics[0].rationale, "kept");
    }

    fn audit_src(src: &str, catalog: &ConcurrencyCatalog) -> Report {
        let tokens = tokenize(src);
        let analysis = ConcurrencyAnalysis {
            sites: atomic_sites("a.rs", &tokens),
            graph: LockGraph::default(),
        };
        audit(&analysis, catalog)
    }

    #[test]
    fn uncataloged_site_is_a_finding() {
        let r = audit_src(
            "fn f(a: &A) { a.load(Ordering::Acquire); }",
            &ConcurrencyCatalog::default(),
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RuleId::AtomicAudit);
        assert!(r.findings[0].message.contains("not in concurrency-catalog"));
    }

    #[test]
    fn cataloged_site_with_rationale_is_clean() {
        let catalog = ConcurrencyCatalog {
            atomics: vec![AtomicEntry {
                file: "a.rs".into(),
                ordering: "Acquire".into(),
                count: 1,
                rationale: "pairs with the Release store in f".into(),
            }],
        };
        let r = audit_src("fn f(a: &A) { a.load(Ordering::Acquire); }", &catalog);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn over_ceiling_stale_and_missing_rationale_diagnosed() {
        let catalog = ConcurrencyCatalog {
            atomics: vec![
                AtomicEntry {
                    file: "a.rs".into(),
                    ordering: "Acquire".into(),
                    count: 1,
                    rationale: String::new(), // missing rationale
                },
                AtomicEntry {
                    file: "gone.rs".into(),
                    ordering: "SeqCst".into(),
                    count: 2,
                    rationale: "file was deleted".into(),
                },
            ],
        };
        let r = audit_src(
            "fn f(a: &A) { a.load(Ordering::Acquire); a.load(Ordering::Acquire); }",
            &catalog,
        );
        let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("catalog allows 1")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("no rationale")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("stale catalog entry")),
            "{msgs:?}"
        );
    }

    fn graph_of(src: &str) -> LockGraph {
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let locks = declared_locks(&code);
        LockGraph::build(&scan_functions("a.rs", &code, &locks))
    }

    const CYCLE_SRC: &str = r#"
struct S { m1: Mutex<u32>, m2: Mutex<u32> }
impl S {
    fn forward(&self) {
        let a = self.m1.lock();
        let b = self.m2.lock();
    }
    fn backward(&self) {
        let b = self.m2.lock();
        let a = self.m1.lock();
    }
}
"#;

    #[test]
    fn lock_order_cycle_detected_with_both_paths() {
        let g = graph_of(CYCLE_SRC);
        assert_eq!(g.edges.len(), 2);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let analysis = ConcurrencyAnalysis {
            sites: Vec::new(),
            graph: g,
        };
        let r = audit(&analysis, &ConcurrencyCatalog::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RuleId::LockOrderCycle);
        assert!(r.findings[0].message.contains("forward"), "{r}");
        assert!(r.findings[0].message.contains("backward"), "{r}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
struct S { m1: Mutex<u32>, m2: Mutex<u32> }
impl S {
    fn a(&self) { let x = self.m1.lock(); let y = self.m2.lock(); }
    fn b(&self) { let x = self.m1.lock(); let y = self.m2.lock(); }
}
"#;
        let g = graph_of(src);
        assert_eq!(g.edges.len(), 1);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn interprocedural_cycle_through_a_call() {
        let src = r#"
struct S { m1: Mutex<u32>, m2: Mutex<u32> }
impl S {
    fn outer(&self) {
        let a = self.m1.lock();
        self.inner();
    }
    fn inner(&self) {
        let b = self.m2.lock();
    }
    fn inverted(&self) {
        let b = self.m2.lock();
        let a = self.m1.lock();
    }
}
"#;
        let g = graph_of(src);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{:?}", g.edges.keys().collect::<Vec<_>>());
        // The m1 → m2 edge is witnessed by the *call*.
        let w = &g.edges[&("a.rs::m1".to_string(), "a.rs::m2".to_string())];
        assert!(w.detail.contains("calls inner()"), "{w:?}");
    }

    #[test]
    fn io_read_calls_are_not_acquisitions() {
        let src = r#"
struct S { data: Mutex<u32> }
fn f(s: &S, file: &mut File, buf: &mut [u8]) {
    file.read(buf);
    let g = s.data.lock();
}
"#;
        let g = graph_of(src);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn rwlock_read_and_write_are_acquisitions() {
        let src = r#"
struct S { counters: RwLock<u32>, writer: Mutex<u32> }
impl S {
    fn snap(&self) { let c = self.counters.read(); let w = self.writer.lock(); }
    fn add(&self) { let w = self.writer.lock(); let c = self.counters.write(); }
}
"#;
        let g = graph_of(src);
        assert_eq!(g.cycles().len(), 1);
    }
}
