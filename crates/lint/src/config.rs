//! Scope configuration: which paths each source rule applies to.
//!
//! The defaults encode the project's rules (documented in
//! `docs/ANALYSIS.md`); tests construct narrower configs by hand. Paths
//! are repo-relative with `/` separators; a scope entry matches a file
//! when it is a prefix of the file's path (so `crates/parallel/src/`
//! covers the whole crate) or equal to it.

/// Path scopes and catalog knowledge driving [`crate::source`].
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Engine hot paths: `no-panic` and `no-unchecked-index` apply here.
    pub hot_paths: Vec<String>,
    /// Sim-deterministic code: `no-ambient-time` applies here.
    pub deterministic: Vec<String>,
    /// The one file allowed to spell metric/span names as literals.
    pub catalog_file: String,
    /// Dotted metric names from the catalog (`filter.tuples_checked`, …).
    pub metric_names: Vec<String>,
    /// Span names from the catalog (`execute`, `checkpoint`, …).
    pub span_names: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            hot_paths: vec![
                // Both §5 engines live in spj.rs; the pool and the WAL are
                // the other two layers every maintenance run crosses.
                "crates/core/src/differential/spj.rs".into(),
                // Join-key indexes sit on both the probe path (every
                // differential join term) and the apply path (maintained
                // per changed tuple).
                "crates/relational/src/index.rs".into(),
                "crates/parallel/src/".into(),
                "crates/storage/src/wal.rs".into(),
                // The serving layer's per-request path: snapshot pin/unpin
                // and wire decode run once per client operation.
                "crates/core/src/snapshot.rs".into(),
                "crates/serve/src/protocol.rs".into(),
                // The accept/dispatch loop every client session runs
                // through, and the model checker whose verdicts the
                // analyze gate trusts — a panic in either aborts the
                // server or fakes a green gate.
                "crates/serve/src/server.rs".into(),
                "crates/race/src/".into(),
            ],
            deterministic: vec![
                // Everything a simulation run executes must be a pure
                // function of the seed (docs/TESTING.md): the maintenance
                // core, the relational layer, the solver, storage, the
                // pool, and the simulator itself.
                "crates/core/src/".into(),
                "crates/relational/src/".into(),
                "crates/satisfiability/src/".into(),
                "crates/storage/src/".into(),
                "crates/parallel/src/".into(),
                "crates/sim/src/".into(),
                // Exploration statistics and counterexample schedules
                // must be reproducible run-over-run.
                "crates/race/src/".into(),
            ],
            catalog_file: "crates/obs/src/names.rs".into(),
            metric_names: Vec::new(),
            span_names: Vec::new(),
        }
    }
}

impl LintConfig {
    /// True when `path` falls inside one of the `scopes` entries.
    pub fn in_scope(path: &str, scopes: &[String]) -> bool {
        scopes
            .iter()
            .any(|s| path == s || (s.ends_with('/') && path.starts_with(s.as_str())))
    }

    /// Is the file an engine hot path?
    pub fn is_hot_path(&self, path: &str) -> bool {
        Self::in_scope(path, &self.hot_paths)
    }

    /// Is the file in sim-deterministic code?
    pub fn is_deterministic(&self, path: &str) -> bool {
        Self::in_scope(path, &self.deterministic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        let cfg = LintConfig::default();
        assert!(cfg.is_hot_path("crates/parallel/src/lib.rs"));
        assert!(cfg.is_hot_path("crates/core/src/differential/spj.rs"));
        assert!(cfg.is_hot_path("crates/relational/src/index.rs"));
        assert!(!cfg.is_hot_path("crates/relational/src/relation.rs"));
        assert!(cfg.is_hot_path("crates/core/src/snapshot.rs"));
        assert!(cfg.is_hot_path("crates/serve/src/protocol.rs"));
        assert!(!cfg.is_hot_path("crates/core/src/manager.rs"));
        assert!(cfg.is_hot_path("crates/serve/src/server.rs"));
        assert!(cfg.is_hot_path("crates/race/src/dpor.rs"));
        assert!(cfg.is_deterministic("crates/race/src/explore.rs"));
        assert!(cfg.is_deterministic("crates/sim/src/rng.rs"));
        assert!(!cfg.is_deterministic("crates/obs/src/lib.rs"));
        assert!(!cfg.is_deterministic("crates/bench/src/lib.rs"));
    }
}
