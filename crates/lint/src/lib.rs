//! `ivm-lint` — workspace static analysis for the IVM reproduction.
//!
//! The paper's §4 relevance test is itself a static analysis: it decides,
//! independent of database state, that an update cannot affect a view, by
//! running the Rosenkrantz–Hunt satisfiability check on the view
//! condition. This crate applies the same discipline in two directions,
//! sharing one diagnostic/report/baseline engine:
//!
//! * **Frontend A** ([`source`]) — token-level lints over the workspace's
//!   own Rust source: no panics or unchecked indexing in engine hot
//!   paths, `// SAFETY:` comments on every `unsafe`, metric/span name
//!   literals confined to the obs catalog, and no ambient clocks/RNG in
//!   sim-deterministic crates. Driven by `ci/analyze.sh` and the
//!   required `analyze` CI job.
//! * **Frontend B** ([`views`]) — definition-time analysis of view
//!   definitions: statically-unsatisfiable (empty-forever) conditions,
//!   always-irrelevant `(view, relation)` pairs (the degenerate case of
//!   Theorem 4.2), predicates implied by the RH digraph's transitive
//!   closure, and DAG-structure checks over definition *sets* (cycles,
//!   unresolved operands, shared select-join cores). Surfaced through
//!   the shell's `\analyze` command.
//! * **Frontend C** ([`concurrency`]) — concurrency bookkeeping: every
//!   `Ordering::*` site must be inventoried in `concurrency-catalog.toml`
//!   with a rationale (the audit fails on uncataloged sites and stale
//!   ceilings), and `Mutex`/`RwLock` acquisitions are lifted into an
//!   approximate inter-procedural lock-order digraph whose cycles are
//!   reported with both acquisition paths. The dynamic complement (the
//!   `crates/race` model checker) verifies the protocols themselves.
//!
//! Pre-existing findings are grandfathered by `lint-baseline.toml`
//! ([`baseline`]) so the gate fails only on regressions; one-off
//! exceptions use `// ivm-lint: allow(rule)` comments. Every rule is
//! catalogued with its rationale in `docs/ANALYSIS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod catalog;
pub mod concurrency;
pub mod config;
pub mod diag;
pub mod source;
pub mod tokenizer;
pub mod views;
pub mod workspace;

pub use baseline::{Baseline, BaselineOutcome};
pub use concurrency::{analyze_concurrency, scan_concurrency, ConcurrencyCatalog};
pub use config::LintConfig;
pub use diag::{Finding, Report, RuleId};
pub use views::{analyze_all, analyze_dag, analyze_view, DagAnalysis, ViewAnalysisReport};
pub use workspace::{lint_workspace, load_catalog};
