//! The committed baseline: grandfathered findings that gate only on
//! regressions.
//!
//! `lint-baseline.toml` holds `[[allow]]` entries keyed by `(rule, file)`
//! with a `count` ceiling — line numbers would churn on every edit, so
//! the baseline allows *up to N* findings of a rule in a file. New
//! findings beyond the ceiling are regressions and fail the run; a
//! ceiling above the actual count is reported as stale so the baseline
//! ratchets downward over time.
//!
//! The format is a deliberately tiny TOML subset (table arrays of
//! scalar `key = value` pairs) parsed by hand — the container is
//! offline, so no `toml` crate.

use std::collections::BTreeMap;
use std::fmt;

use crate::diag::{Finding, Report, RuleId};

/// One grandfathered `(rule, file)` ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule being grandfathered.
    pub rule: RuleId,
    /// Repo-relative file the findings live in.
    pub file: String,
    /// Maximum findings of `rule` allowed in `file`.
    pub count: usize,
    /// Why this is grandfathered (free text, shown on regressions).
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All ceilings, in file order.
    pub entries: Vec<BaselineEntry>,
}

/// Outcome of filtering a report through a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by any ceiling — these fail the run.
    pub regressions: Vec<Finding>,
    /// Findings absorbed by ceilings.
    pub grandfathered: usize,
    /// Entries whose ceiling exceeds the actual count (ratchet these
    /// down) or whose `(rule, file)` no longer fires at all.
    pub stale: Vec<BaselineEntry>,
}

/// An `[[allow]]` entry mid-parse: (rule, file, count, reason).
type PartialEntry = (Option<RuleId>, Option<String>, Option<usize>, String);

impl Baseline {
    /// Parse the TOML subset. Unknown keys are ignored; malformed lines
    /// return an error naming the line number.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        let mut current: Option<PartialEntry> = None;
        let mut finish = |cur: &mut Option<PartialEntry>| -> Result<(), String> {
            if let Some((rule, file, count, reason)) = cur.take() {
                let rule = rule.ok_or("entry missing `rule`")?;
                let file = file.ok_or("entry missing `file`")?;
                entries.push(BaselineEntry {
                    rule,
                    file,
                    count: count.unwrap_or(1),
                    reason,
                });
            }
            Ok(())
        };
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut current)?;
                current = Some((None, None, None, String::new()));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let Some(cur) = current.as_mut() else {
                return Err(format!("line {}: key outside an [[allow]] entry", n + 1));
            };
            let key = key.trim();
            let value = value.trim();
            let unquote = |v: &str| -> Result<String, String> {
                v.strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .map(str::to_owned)
                    .ok_or(format!("line {}: expected a quoted string", n + 1))
            };
            match key {
                "rule" => {
                    let name = unquote(value)?;
                    cur.0 = Some(
                        RuleId::parse(&name)
                            .ok_or(format!("line {}: unknown rule `{name}`", n + 1))?,
                    );
                }
                "file" => cur.1 = Some(unquote(value)?),
                "count" => {
                    cur.2 = Some(
                        value
                            .parse()
                            .map_err(|_| format!("line {}: bad count `{value}`", n + 1))?,
                    )
                }
                "reason" => cur.3 = unquote(value)?,
                _ => {}
            }
        }
        finish(&mut current)?;
        Ok(Baseline { entries })
    }

    /// Render back to the TOML subset (for `--write-baseline`).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ivm-lint baseline — grandfathered findings, gating on regressions only.\n\
             # Each entry allows up to `count` findings of `rule` in `file`; anything\n\
             # beyond the ceiling fails ci/analyze.sh. Regenerate with:\n\
             #   cargo run -p ivm-lint -- --write-baseline\n",
        );
        for e in &self.entries {
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", e.rule.name()));
            out.push_str(&format!("file = \"{}\"\n", e.file));
            out.push_str(&format!("count = {}\n", e.count));
            if !e.reason.is_empty() {
                out.push_str(&format!("reason = \"{}\"\n", e.reason));
            }
        }
        out
    }

    /// Build a baseline that exactly covers `report` (ceilings = actual
    /// counts).
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts: BTreeMap<(RuleId, String), usize> = BTreeMap::new();
        for f in &report.findings {
            *counts.entry((f.rule, f.file.clone())).or_default() += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file), count)| BaselineEntry {
                    rule,
                    file,
                    count,
                    reason: String::new(),
                })
                .collect(),
        }
    }

    /// Filter a report: absorb up to each ceiling, surface the rest as
    /// regressions, and report stale ceilings.
    pub fn apply(&self, report: &Report) -> BaselineOutcome {
        let mut allowed: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
        for e in &self.entries {
            *allowed.entry((e.rule, e.file.as_str())).or_default() += e.count;
        }
        let mut used: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
        let mut out = BaselineOutcome::default();
        for f in &report.findings {
            let key = (f.rule, f.file.as_str());
            let cap = allowed.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_default();
            if *u < cap {
                *u += 1;
                out.grandfathered += 1;
            } else {
                out.regressions.push(f.clone());
            }
        }
        for e in &self.entries {
            let key = (e.rule, e.file.as_str());
            if used.get(&key).copied().unwrap_or(0) < allowed.get(&key).copied().unwrap_or(0) {
                out.stale.push(e.clone());
            }
        }
        out
    }
}

impl fmt::Display for BaselineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {} (count {})", self.rule, self.file, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            col: 1,
            message: String::new(),
        }
    }

    const SAMPLE: &str = r#"
# comment
[[allow]]
rule = "no-ambient-time"
file = "crates/core/src/relevance/filter.rs"
count = 1
reason = "observational clock behind obs.enabled()"

[[allow]]
rule = "no-panic"
file = "crates/core/src/differential/spj.rs"
count = 2
"#;

    #[test]
    fn parse_and_render_round_trip() {
        let b = Baseline::parse(SAMPLE).unwrap();
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].rule, RuleId::NoAmbientTime);
        assert_eq!(b.entries[0].count, 1);
        assert!(b.entries[0].reason.contains("observational"));
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again.entries, b.entries);
    }

    #[test]
    fn parse_errors_name_lines() {
        assert!(Baseline::parse("rule = \"no-panic\"")
            .unwrap_err()
            .contains("outside"));
        assert!(Baseline::parse("[[allow]]\nrule = \"nope\"")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(Baseline::parse("[[allow]]\ncount = x")
            .unwrap_err()
            .contains("bad count"));
        assert!(Baseline::parse("[[allow]]\nfile = \"f\"")
            .unwrap_err()
            .contains("missing `rule`"));
    }

    #[test]
    fn apply_absorbs_up_to_ceiling() {
        let b = Baseline::parse(SAMPLE).unwrap();
        let mut r = Report::default();
        r.findings.push(finding(
            RuleId::NoAmbientTime,
            "crates/core/src/relevance/filter.rs",
            10,
        ));
        r.findings.push(finding(
            RuleId::NoPanic,
            "crates/core/src/differential/spj.rs",
            5,
        ));
        r.findings.push(finding(
            RuleId::NoPanic,
            "crates/core/src/differential/spj.rs",
            6,
        ));
        let out = b.apply(&r);
        assert_eq!(out.grandfathered, 3);
        assert!(out.regressions.is_empty());
        assert!(out.stale.is_empty());
    }

    #[test]
    fn excess_findings_are_regressions() {
        let b = Baseline::parse(SAMPLE).unwrap();
        let mut r = Report::default();
        for line in 0..3 {
            r.findings.push(finding(
                RuleId::NoPanic,
                "crates/core/src/differential/spj.rs",
                line,
            ));
        }
        let out = b.apply(&r);
        assert_eq!(out.grandfathered, 2);
        assert_eq!(out.regressions.len(), 1);
    }

    #[test]
    fn uncovered_findings_are_regressions() {
        let b = Baseline::default();
        let mut r = Report::default();
        r.findings.push(finding(RuleId::NoPanic, "a.rs", 1));
        let out = b.apply(&r);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.grandfathered, 0);
    }

    #[test]
    fn stale_ceilings_reported() {
        let b = Baseline::parse(SAMPLE).unwrap();
        let r = Report::default();
        let out = b.apply(&r);
        assert_eq!(out.stale.len(), 2);
    }

    #[test]
    fn from_report_covers_exactly() {
        let mut r = Report::default();
        r.findings.push(finding(RuleId::NoPanic, "a.rs", 1));
        r.findings.push(finding(RuleId::NoPanic, "a.rs", 2));
        let b = Baseline::from_report(&r);
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].count, 2);
        let out = b.apply(&r);
        assert!(out.regressions.is_empty());
        assert!(out.stale.is_empty());
    }
}
