//! The metric/span name catalog: parsed from `crates/obs/src/names.rs`
//! and compared against `docs/OBSERVABILITY.md`.
//!
//! Two consumers:
//!
//! * the `metric-literal` source rule needs the set of catalog names to
//!   spot stray literals elsewhere in the workspace,
//! * `ci/check_metrics.sh` delegates its two-way docs↔catalog diff here
//!   (`ivm-lint --metrics-doc …`), so there is exactly one parser of the
//!   catalog.

use std::collections::BTreeSet;

use crate::tokenizer::{tokenize, TokenKind};

/// The parsed catalog: constant name → string value.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// `(CONST_NAME, value)` pairs in declaration order.
    pub entries: Vec<(String, String)>,
}

impl Catalog {
    /// Parse `pub const NAME: &str = "value";` items out of Rust source.
    pub fn parse(source: &str) -> Catalog {
        let toks: Vec<_> = tokenize(source)
            .into_iter()
            .filter(|t| !t.is_comment())
            .collect();
        let mut entries = Vec::new();
        let mut i = 0;
        while i + 8 < toks.len() {
            let window = &toks[i..i + 9];
            let is_const = window[0].ident() == Some("pub")
                && window[1].ident() == Some("const")
                && window[3].is_punct(':')
                && window[4].is_punct('&')
                && window[5].ident() == Some("str")
                && window[6].is_punct('=');
            if is_const {
                if let (Some(name), TokenKind::Str(value)) = (window[2].ident(), &window[7].kind) {
                    entries.push((name.to_owned(), value.clone()));
                    i += 9;
                    continue;
                }
            }
            i += 1;
        }
        Catalog { entries }
    }

    /// Dotted metric names (`layer.metric` — counters and histograms).
    pub fn metric_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, v)| v.contains('.'))
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Bare span names (`execute`, `checkpoint`, …).
    pub fn span_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, v)| !v.contains('.'))
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// The set of `layer` prefixes in use (`filter`, `wal`, …).
    pub fn prefixes(&self) -> BTreeSet<String> {
        self.entries
            .iter()
            .filter_map(|(_, v)| v.split_once('.').map(|(p, _)| p.to_owned()))
            .collect()
    }
}

/// File-extension lookalikes that must not count as metric names when
/// extracting `layer.name` tokens from prose (`filter.rs`, `wal.log`, …).
const EXTENSIONS: &[&str] = &[
    "rs", "md", "sh", "toml", "yml", "yaml", "log", "txt", "json",
];

/// Extract every `prefix.suffix` token from free text where `prefix` is a
/// known catalog layer and `suffix` is a metric-shaped identifier.
pub fn extract_dotted_names(text: &str, prefixes: &BTreeSet<String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes: Vec<char> = text.chars().collect();
    let is_word = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_';
    let mut i = 0;
    while i < bytes.len() {
        if !(bytes[i].is_ascii_lowercase()) || (i > 0 && is_word(bytes[i - 1])) {
            i += 1;
            continue;
        }
        // Candidate word start.
        let start = i;
        while i < bytes.len() && is_word(bytes[i]) {
            i += 1;
        }
        let prefix: String = bytes[start..i].iter().collect();
        if i < bytes.len() && bytes[i] == '.' && prefixes.contains(&prefix) {
            let sstart = i + 1;
            let mut j = sstart;
            while j < bytes.len() && is_word(bytes[j]) {
                j += 1;
            }
            if j > sstart {
                let suffix: String = bytes[sstart..j].iter().collect();
                if !EXTENSIONS.contains(&suffix.as_str()) && bytes[sstart].is_ascii_lowercase() {
                    out.insert(format!("{prefix}.{suffix}"));
                }
                i = j;
                continue;
            }
        }
    }
    out
}

/// Result of the two-way docs↔catalog comparison.
#[derive(Debug, Clone, Default)]
pub struct MetricsDocDiff {
    /// Names the doc mentions that the catalog does not define.
    pub missing_in_catalog: Vec<String>,
    /// Names the catalog defines that the doc never mentions.
    pub undocumented: Vec<String>,
    /// How many names agreed.
    pub agreed: usize,
}

impl MetricsDocDiff {
    /// True when the doc and the catalog agree exactly.
    pub fn is_clean(&self) -> bool {
        self.missing_in_catalog.is_empty() && self.undocumented.is_empty()
    }
}

/// Compare a prose document against the catalog, both directions — the
/// logic `ci/check_metrics.sh` wraps.
pub fn check_metrics_doc(doc_text: &str, catalog_source: &str) -> MetricsDocDiff {
    let catalog = Catalog::parse(catalog_source);
    let prefixes = catalog.prefixes();
    let doc_names = extract_dotted_names(doc_text, &prefixes);
    let catalog_names: BTreeSet<String> = catalog.metric_names().into_iter().collect();
    MetricsDocDiff {
        missing_in_catalog: doc_names.difference(&catalog_names).cloned().collect(),
        undocumented: catalog_names.difference(&doc_names).cloned().collect(),
        agreed: doc_names.intersection(&catalog_names).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG: &str = r#"
        /// Counter.
        pub const FILTER_TUPLES: &str = "filter.tuples_checked";
        /// Histogram.
        pub const POOL_MICROS: &str = "pool.chunk_micros";
        /// Span.
        pub const SPAN_EXECUTE: &str = "execute";
        pub const ALL: &[&str] = &[FILTER_TUPLES];
    "#;

    #[test]
    fn parses_consts() {
        let c = Catalog::parse(CATALOG);
        assert_eq!(c.entries.len(), 3);
        assert_eq!(
            c.metric_names(),
            ["filter.tuples_checked", "pool.chunk_micros"]
        );
        assert_eq!(c.span_names(), ["execute"]);
        assert!(c.prefixes().contains("filter"));
    }

    #[test]
    fn extracts_dotted_names_not_file_paths() {
        let c = Catalog::parse(CATALOG);
        let text = "see filter.tuples_checked and filter.rs plus pool.chunk_micros; wal.log";
        let names = extract_dotted_names(text, &c.prefixes());
        assert!(names.contains("filter.tuples_checked"));
        assert!(names.contains("pool.chunk_micros"));
        assert!(!names.iter().any(|n| n.ends_with(".rs")));
        // `wal` is not a prefix of this mini-catalog at all.
        assert!(!names.iter().any(|n| n.starts_with("wal.")));
    }

    #[test]
    fn doc_diff_both_directions() {
        let doc = "documents filter.tuples_checked and the phantom filter.not_real";
        let d = check_metrics_doc(doc, CATALOG);
        assert_eq!(d.missing_in_catalog, ["filter.not_real"]);
        assert_eq!(d.undocumented, ["pool.chunk_micros"]);
        assert_eq!(d.agreed, 1);
        assert!(!d.is_clean());
    }

    #[test]
    fn clean_diff() {
        let doc = "filter.tuples_checked pool.chunk_micros";
        let d = check_metrics_doc(doc, CATALOG);
        assert!(d.is_clean(), "{d:?}");
        assert_eq!(d.agreed, 2);
    }

    #[test]
    fn mid_word_dots_ignored() {
        let c = Catalog::parse(CATALOG);
        // `xfilter.foo` must not match: prefix must start at a word edge.
        let names = extract_dotted_names("xfilter.foo", &c.prefixes());
        assert!(names.is_empty());
    }
}
