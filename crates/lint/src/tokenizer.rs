//! A lightweight Rust tokenizer — enough lexical fidelity for the source
//! lints, with no `syn`/`proc-macro2` dependency (the build container is
//! offline; like `crates/compat/*` this stays plain `std`).
//!
//! The lexer understands exactly what the rules need to not lie:
//!
//! * line (`//`) and nested block (`/* */`) comments — kept as tokens so
//!   [`crate::source`] can see `// SAFETY:` and `// ivm-lint: allow(...)`,
//! * string literals: `"…"` with escapes, raw strings `r"…"`/`r#"…"#`,
//!   byte and byte-raw strings — kept with their *decoded-enough* text so
//!   the metric-literal rule can compare against the catalog,
//! * char literals vs. lifetimes (`'a'` vs `'a`),
//! * identifiers/keywords, integers (just enough to spot `xs[0]`), and
//!   single-character punctuation.
//!
//! Everything carries a 1-based line/column so findings are clickable.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, …).
    Ident(String),
    /// `//`-style comment, text includes the slashes.
    LineComment(String),
    /// `/* */` comment (possibly nested), text includes delimiters.
    BlockComment(String),
    /// String literal of any flavor; payload is the raw contents between
    /// the quotes (escapes left as written — catalog names contain none).
    Str(String),
    /// Char literal (contents between the quotes).
    Char(String),
    /// Lifetime (`'a` — without the quote).
    Lifetime(String),
    /// Integer or float literal as written.
    Number(String),
    /// Any other single character (`.`, `(`, `[`, `!`, …).
    Punct(char),
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The classified token.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokenKind::Punct(p) if p == c)
    }

    /// True for either comment flavor.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment(_)
        )
    }
}

/// Tokenize Rust source. Never fails: unterminated constructs just run to
/// end of input (the lints degrade gracefully on files rustc would reject).
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: usize, col: usize) {
        self.out.push(Token { kind, line, col });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    let text = self.take_line_comment();
                    self.push(TokenKind::LineComment(text), line, col);
                }
                '/' if self.peek(1) == Some('*') => {
                    let text = self.take_block_comment();
                    self.push(TokenKind::BlockComment(text), line, col);
                }
                '"' => {
                    let text = self.take_string();
                    self.push(TokenKind::Str(text), line, col);
                }
                'r' | 'b' if self.is_string_prefix() => {
                    let text = self.take_prefixed_string();
                    self.push(TokenKind::Str(text), line, col);
                }
                '\'' => self.take_char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => {
                    let text = self.take_ident();
                    self.push(TokenKind::Ident(text), line, col);
                }
                c if c.is_ascii_digit() => {
                    let text = self.take_number();
                    self.push(TokenKind::Number(text), line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line, col);
                }
            }
        }
        self.out
    }

    /// Is the `r`/`b` at the cursor the prefix of a raw/byte string (and
    /// not the start of an identifier like `row`)?
    fn is_string_prefix(&self) -> bool {
        // Longest prefixes: br##"  r#"  b"  r"
        let mut i = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn take_line_comment(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            s.push(c);
            self.bump();
        }
        s
    }

    fn take_block_comment(&mut self) -> String {
        let mut s = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                s.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                s.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                s.push(c);
                self.bump();
            }
        }
        s
    }

    /// Plain `"…"` string: cursor on the opening quote.
    fn take_string(&mut self) -> String {
        self.bump(); // opening quote
        let mut s = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep the escape as written; consume the escaped char.
                    s.push('\\');
                    if let Some(e) = self.bump() {
                        s.push(e);
                    }
                }
                '"' => break,
                _ => s.push(c),
            }
        }
        s
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: cursor on the `r`/`b`.
    fn take_prefixed_string(&mut self) -> String {
        let mut raw = false;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('r') {
            raw = true;
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut s = String::new();
        while let Some(c) = self.bump() {
            if c == '\\' && !raw {
                s.push('\\');
                if let Some(e) = self.bump() {
                    s.push(e);
                }
                continue;
            }
            if c == '"' {
                // A raw string only closes on `"` followed by its hashes.
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            s.push(c);
        }
        s
    }

    /// Distinguish `'a'`/`'\n'` (char) from `'a` (lifetime). Cursor on the
    /// opening quote.
    fn take_char_or_lifetime(&mut self, line: usize, col: usize) {
        self.bump(); // quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                let mut s = String::new();
                s.push(self.bump().unwrap_or('\\'));
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    s.push(c);
                }
                self.push(TokenKind::Char(s), line, col);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') {
                    // 'x' — a char literal.
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Char(c.to_string()), line, col);
                } else {
                    // 'ident — a lifetime.
                    let text = self.take_ident();
                    self.push(TokenKind::Lifetime(text), line, col);
                }
            }
            Some(c) => {
                // Punctuation char literal like '(' or unterminated quote.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Char(c.to_string()), line, col);
                } else {
                    self.push(TokenKind::Punct('\''), line, col);
                }
            }
            None => self.push(TokenKind::Punct('\''), line, col),
        }
    }

    fn take_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn take_number(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for `0`, `0x1f`, `1_000`, `1.5e3`, `0usize`.
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn basic_idents_and_punct() {
        let toks = tokenize("let x = a.unwrap();");
        assert_eq!(idents("let x = a.unwrap();"), ["let", "x", "a", "unwrap"]);
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = tokenize("// unwrap()\n/* expect( */ real");
        assert_eq!(idents("// unwrap()\n/* expect( */ real"), ["real"]);
        assert!(matches!(&toks[0].kind, TokenKind::LineComment(t) if t.contains("unwrap")));
        assert!(matches!(&toks[1].kind, TokenKind::BlockComment(t) if t.contains("expect")));
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn nested_block_comment() {
        let toks = tokenize("/* a /* b */ c */ x");
        assert_eq!(idents("/* a /* b */ c */ x"), ["x"]);
        assert!(matches!(&toks[0].kind, TokenKind::BlockComment(t) if t.contains('c')));
    }

    #[test]
    fn strings_hide_code() {
        let toks = tokenize(r#"let s = "unwrap() // not a comment";"#);
        assert_eq!(
            idents(r#"let s = "unwrap() // not a comment";"#),
            ["let", "s"]
        );
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s.contains("unwrap"))));
    }

    #[test]
    fn string_payload_extracted() {
        let toks = tokenize(r#"obs.add("pool.chunks", 1);"#);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s == "pool.chunks")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = tokenize(r##"let a = r#"filter.x "quoted""#; let b = b"bytes"; let r = row;"##);
        let strs: Vec<&String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("filter.x"));
        assert_eq!(strs[1], "bytes");
        // `row` must lex as an identifier, not a raw-string prefix.
        assert!(toks.iter().any(|t| t.ident() == Some("row")));
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = tokenize(r#"let s = "a\"b"; next"#);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s == "a\\\"b")));
        assert!(toks.iter().any(|t| t.ident() == Some("next")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, [&"a".to_string(), &"a".to_string()]);
        let chars: Vec<&String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Char(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_lex() {
        let toks = tokenize("xs[0]; ys[1_000]; z = 0x1f;");
        let nums: Vec<&String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Number(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            [&"0".to_string(), &"1_000".to_string(), &"0x1f".to_string()]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b\n    c");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 5));
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        tokenize("let s = \"never closed");
        tokenize("/* never closed");
        tokenize("let c = '");
    }
}
