//! The `ivm-lint` binary: scans the workspace (Frontend A), applies the
//! committed baseline, and exits non-zero on regressions. Also hosts the
//! docs↔catalog metric check that `ci/check_metrics.sh` wraps.
//!
//! ```text
//! ivm-lint [--root DIR] [--baseline FILE | --no-baseline]
//!          [--write-baseline] [--write-concurrency-catalog] [--quiet]
//! ivm-lint --metrics-doc DOC [--catalog FILE] [--root DIR]
//! ivm-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings/regressions, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ivm_lint::baseline::Baseline;
use ivm_lint::concurrency::{self, ConcurrencyCatalog};
use ivm_lint::config::LintConfig;
use ivm_lint::diag::RuleId;
use ivm_lint::{catalog, lint_workspace, load_catalog};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    write_concurrency_catalog: bool,
    quiet: bool,
    metrics_doc: Option<PathBuf>,
    catalog: Option<PathBuf>,
    list_rules: bool,
}

fn usage() -> &'static str {
    "usage: ivm-lint [--root DIR] [--baseline FILE | --no-baseline] [--write-baseline] [--write-concurrency-catalog] [--quiet]\n\
     \x20      ivm-lint --metrics-doc DOC [--catalog FILE] [--root DIR]\n\
     \x20      ivm-lint --list-rules"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        write_concurrency_catalog: false,
        quiet: false,
        metrics_doc: None,
        catalog: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let path_arg = |it: &mut dyn Iterator<Item = String>| {
            it.next()
                .map(PathBuf::from)
                .ok_or(format!("{a} needs a value"))
        };
        match a.as_str() {
            "--root" => args.root = path_arg(&mut it)?,
            "--baseline" => args.baseline = Some(path_arg(&mut it)?),
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = true,
            "--write-concurrency-catalog" => args.write_concurrency_catalog = true,
            "--quiet" | "-q" => args.quiet = true,
            "--metrics-doc" => args.metrics_doc = Some(path_arg(&mut it)?),
            "--catalog" => args.catalog = Some(path_arg(&mut it)?),
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    if args.list_rules {
        for &rule in RuleId::ALL {
            println!("{:<20} {}", rule.name(), rule.rationale());
        }
        return Ok(true);
    }

    let mut cfg = LintConfig::default();

    // Metrics-doc mode: the two-way docs↔catalog diff check_metrics.sh
    // delegates to, sharing the catalog parser with the source lints.
    if let Some(doc) = &args.metrics_doc {
        let catalog_path = args
            .catalog
            .clone()
            .unwrap_or_else(|| args.root.join(&cfg.catalog_file));
        let doc_text =
            std::fs::read_to_string(doc).map_err(|e| format!("cannot read {doc:?}: {e}"))?;
        let catalog_text = std::fs::read_to_string(&catalog_path)
            .map_err(|e| format!("cannot read {catalog_path:?}: {e}"))?;
        let diff = catalog::check_metrics_doc(&doc_text, &catalog_text);
        for name in &diff.missing_in_catalog {
            eprintln!("ERROR: doc names metric `{name}` that the catalog does not define");
        }
        for name in &diff.undocumented {
            eprintln!("ERROR: catalog defines metric `{name}` that the doc never mentions");
        }
        if diff.is_clean() {
            println!(
                "ok: {} metric name(s) agree between {} and the catalog",
                diff.agreed,
                doc.display()
            );
        }
        return Ok(diff.is_clean());
    }

    // Frontend C's catalog: missing file means an empty catalog, so
    // every atomic site is reported as uncataloged.
    let concurrency_path = args.root.join("concurrency-catalog.toml");
    let concurrency_catalog = if concurrency_path.exists() {
        let text = std::fs::read_to_string(&concurrency_path)
            .map_err(|e| format!("cannot read {concurrency_path:?}: {e}"))?;
        ConcurrencyCatalog::parse(&text)
            .map_err(|e| format!("{}: {e}", concurrency_path.display()))?
    } else {
        ConcurrencyCatalog::default()
    };

    if args.write_concurrency_catalog {
        let analysis = concurrency::scan_concurrency(&args.root)
            .map_err(|e| format!("concurrency scan failed: {e}"))?;
        let fresh = ConcurrencyCatalog::from_sites(&analysis.sites, &concurrency_catalog);
        std::fs::write(&concurrency_path, fresh.render())
            .map_err(|e| format!("cannot write {concurrency_path:?}: {e}"))?;
        println!(
            "wrote {} with {} entry(ies) covering {} atomic site(s); fill in any empty rationales",
            concurrency_path.display(),
            fresh.atomics.len(),
            analysis.sites.len()
        );
        return Ok(true);
    }

    // Frontend A over the workspace, then Frontend C merged into the
    // same baseline-gated report.
    load_catalog(&args.root, &mut cfg)
        .map_err(|e| format!("cannot load catalog {}: {e}", cfg.catalog_file))?;
    let mut report = lint_workspace(&args.root, &cfg).map_err(|e| format!("scan failed: {e}"))?;
    report.merge(
        concurrency::analyze_concurrency(&args.root, &concurrency_catalog)
            .map_err(|e| format!("concurrency scan failed: {e}"))?,
    );
    report.sort();

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.toml"));

    if args.write_baseline {
        let b = Baseline::from_report(&report);
        std::fs::write(&baseline_path, b.render())
            .map_err(|e| format!("cannot write {baseline_path:?}: {e}"))?;
        println!(
            "wrote {} with {} ceiling(s) covering {} finding(s)",
            baseline_path.display(),
            b.entries.len(),
            report.findings.len()
        );
        return Ok(true);
    }

    let baseline = if args.no_baseline || !baseline_path.exists() {
        Baseline::default()
    } else {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {baseline_path:?}: {e}"))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    };

    let outcome = baseline.apply(&report);
    for finding in &outcome.regressions {
        println!("{finding}");
    }
    if !args.quiet {
        for stale in &outcome.stale {
            eprintln!("warning: stale baseline ceiling: {stale} — ratchet it down");
        }
        println!(
            "{} regression(s), {} grandfathered, {} suppressed inline, {} file(s) scanned",
            outcome.regressions.len(),
            outcome.grandfathered,
            report.suppressed,
            report.scanned
        );
    }
    Ok(outcome.regressions.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
