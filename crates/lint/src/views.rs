//! Frontend B: definition-time view analysis.
//!
//! The paper's §4 relevance test is a static analysis — it decides,
//! independent of database state, that an update cannot affect a view.
//! This module applies the same machinery to the view *definition* at
//! registration time:
//!
//! * **`unsat-view`** — the condition is statically unsatisfiable
//!   (negative cycle in every disjunct's RH constraint digraph): the
//!   materialization is empty forever, for every database instance.
//!   Individual dead disjuncts of an otherwise-live DNF are reported too.
//! * **`always-irrelevant`** — a `(view, relation)` pair where the
//!   relation's *local* predicates (the variant-evaluable class of
//!   Definition 4.2) are contradictory in every disjunct: Algorithm 4.1
//!   rejects **every** update tuple at the substitution step. This is the
//!   degenerate case of Theorem 4.2 — maintenance for this pair is
//!   provably a no-op, so the view should not subscribe to the relation.
//! * **`redundant-atom`** — an atom implied by the transitive closure
//!   (all-pairs shortest paths) of the digraph built from the *other*
//!   atoms of its disjunct: deleting it leaves the view's contents
//!   identical on every instance, and the maintenance engine faster.
//!
//! A second, structural analysis works on definition *sets* rather than
//! single conditions: [`analyze_dag`] checks that a set of view
//! definitions (which may reference each other as operands) forms a
//! dependency DAG — reporting **`view-cycle`** findings for definition
//! cycles, unresolved operands, the topological strata a maintainer
//! would use, and groups of siblings with an identical select-join core
//! (candidates for shared maintenance, see `docs/PIPELINES.md`).
//!
//! Results surface as a [`ViewAnalysisReport`] / [`DagAnalysis`] (the
//! `MaintenanceReport`s of this crate) and through the shell's
//! `\analyze` command.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ivm::relevance::classify::{to_sat_atom, VarMap};
use ivm::relevance::{classify_atom, FormulaClass};
use ivm_relational::database::Database;
use ivm_relational::expr::SpjExpr;
use ivm_relational::predicate::{Atom as RelAtom, Conjunction};
use ivm_satisfiability::conjunctive::{ConjunctiveFormula, Solver};
use ivm_satisfiability::constraint::{normalize_atom, Normalized};
use ivm_satisfiability::floyd::floyd_warshall;
use ivm_satisfiability::graph::ConstraintGraph;

use crate::diag::{Finding, Report, RuleId};

/// One redundant atom: implied by the rest of its disjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundantAtom {
    /// Which disjunct of the DNF condition (0-based).
    pub disjunct: usize,
    /// Display form of the implied atom.
    pub atom: String,
}

/// The definition-time analysis verdict for one view — the static
/// analogue of the manager's `MaintenanceReport`.
#[derive(Debug, Clone, Default)]
pub struct ViewAnalysisReport {
    /// View name.
    pub view: String,
    /// Number of disjuncts in the DNF condition.
    pub disjuncts: usize,
    /// True when at least one disjunct is satisfiable.
    pub satisfiable: bool,
    /// 0-based indices of unsatisfiable (dead) disjuncts.
    pub dead_disjuncts: Vec<usize>,
    /// Relations whose every update is provably irrelevant.
    pub always_irrelevant: Vec<String>,
    /// Atoms implied by the transitive closure of their disjunct.
    pub redundant: Vec<RedundantAtom>,
}

impl ViewAnalysisReport {
    /// True when the analysis found nothing to complain about.
    pub fn is_clean(&self) -> bool {
        self.satisfiable
            && self.dead_disjuncts.is_empty()
            && self.always_irrelevant.is_empty()
            && self.redundant.is_empty()
    }

    /// Lower into the shared diagnostic model (the `view:<name>`
    /// pseudo-file), so both frontends report through one engine.
    pub fn to_report(&self) -> Report {
        let mut report = Report {
            scanned: 1,
            ..Report::default()
        };
        let mut push = |rule: RuleId, message: String| {
            report.findings.push(Finding {
                rule,
                file: format!("view:{}", self.view),
                line: 0,
                col: 0,
                message,
            });
        };
        if !self.satisfiable {
            push(
                RuleId::UnsatView,
                "condition is statically unsatisfiable: the view is empty for every database instance".into(),
            );
        } else {
            for &d in &self.dead_disjuncts {
                push(
                    RuleId::UnsatView,
                    format!(
                        "disjunct #{d} is unsatisfiable (dead); it can never contribute tuples"
                    ),
                );
            }
        }
        for rel in &self.always_irrelevant {
            push(
                RuleId::AlwaysIrrelevant,
                format!(
                    "every update to `{rel}` is provably irrelevant: its local predicates are contradictory in every disjunct (degenerate Theorem 4.2)"
                ),
            );
        }
        for r in &self.redundant {
            push(
                RuleId::RedundantAtom,
                format!(
                    "atom `{}` in disjunct #{} is implied by the transitive closure of the remaining atoms",
                    r.atom, r.disjunct
                ),
            );
        }
        report
    }
}

impl fmt::Display for ViewAnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "view {}: {} disjunct(s), {}",
            self.view,
            self.disjuncts,
            if self.satisfiable {
                "satisfiable"
            } else {
                "UNSATISFIABLE (empty forever)"
            }
        )?;
        for &d in &self.dead_disjuncts {
            if self.satisfiable {
                writeln!(f, "  dead disjunct #{d}: unsatisfiable, never contributes")?;
            }
        }
        for rel in &self.always_irrelevant {
            writeln!(
                f,
                "  always-irrelevant: every update to `{rel}` provably cannot affect this view"
            )?;
        }
        for r in &self.redundant {
            writeln!(
                f,
                "  redundant: atom `{}` (disjunct #{}) is implied by the others",
                r.atom, r.disjunct
            )?;
        }
        if self.is_clean() {
            writeln!(f, "  clean: no definition-time findings")?;
        }
        Ok(())
    }
}

/// Translate one disjunct into a satisfiability formula under the
/// condition-wide variable map.
fn to_formula(conj: &Conjunction, vars: &VarMap) -> ConjunctiveFormula {
    let mut f = ConjunctiveFormula::new(vars.len());
    for atom in &conj.atoms {
        // The map is built from the same condition, so pushing cannot
        // reference an out-of-range variable.
        if f.push(to_sat_atom(atom, vars)).is_err() {
            debug_assert!(false, "VarMap missed a condition variable");
        }
    }
    f
}

/// Are this disjunct's `relation`-local atoms (variant evaluable w.r.t.
/// the relation's scheme) contradictory on their own?
fn local_atoms_unsat(
    conj: &Conjunction,
    schema: &ivm_relational::schema::Schema,
    vars: &VarMap,
) -> bool {
    let local: Vec<&RelAtom> = conj
        .atoms
        .iter()
        .filter(|a| classify_atom(a, schema) == FormulaClass::VariantEvaluable)
        .collect();
    if local.is_empty() {
        return false;
    }
    let mut f = ConjunctiveFormula::new(vars.len());
    for atom in local {
        if f.push(to_sat_atom(atom, vars)).is_err() {
            return false;
        }
    }
    !f.is_satisfiable(Solver::FloydWarshall)
}

/// Find atoms implied by the rest of their (satisfiable) disjunct, via
/// the all-pairs shortest-path closure of the remaining atoms' digraph.
fn redundant_atoms(conj: &Conjunction, vars: &VarMap, disjunct: usize) -> Vec<RedundantAtom> {
    let sat_atoms: Vec<_> = conj.atoms.iter().map(|a| to_sat_atom(a, vars)).collect();
    let mut out = Vec::new();
    for (i, cand) in sat_atoms.iter().enumerate() {
        let Normalized::Constraints(cand_cs) = normalize_atom(cand) else {
            continue; // constant-false atoms belong to unsat-view, not here
        };
        if cand_cs.is_empty() {
            // Constant-true after normalization: trivially redundant.
            out.push(RedundantAtom {
                disjunct,
                atom: conj.atoms[i].to_string(),
            });
            continue;
        }
        // Digraph of everything else.
        let mut g = ConstraintGraph::new(vars.len());
        let mut rest_ok = true;
        for (j, other) in sat_atoms.iter().enumerate() {
            if i == j {
                continue;
            }
            match normalize_atom(other) {
                Normalized::False => {
                    rest_ok = false;
                    break;
                }
                Normalized::Constraints(cs) => g.add_constraints(cs.iter()),
            }
        }
        if !rest_ok {
            continue;
        }
        let apsp = floyd_warshall(&g);
        if apsp.has_negative_cycle {
            continue; // the rest is already unsat; implication is vacuous
        }
        // `x − y ≤ c` is implied iff the shortest x→y path is ≤ c.
        let implied = cand_cs.iter().all(|c| {
            let from = g.index(c.x);
            let to = g.index(c.y);
            apsp.distance(from, to) <= c.c
        });
        if implied {
            out.push(RedundantAtom {
                disjunct,
                atom: conj.atoms[i].to_string(),
            });
        }
    }
    out
}

/// Run the full definition-time analysis of one view against the
/// database's schemas (contents are never consulted — the verdicts hold
/// for every instance).
pub fn analyze_view(name: &str, expr: &SpjExpr, db: &Database) -> ViewAnalysisReport {
    let vars = VarMap::from_condition(&expr.condition);
    let disjuncts = &expr.condition.disjuncts;

    let mut report = ViewAnalysisReport {
        view: name.to_owned(),
        disjuncts: disjuncts.len(),
        ..ViewAnalysisReport::default()
    };

    let formulas: Vec<ConjunctiveFormula> =
        disjuncts.iter().map(|c| to_formula(c, &vars)).collect();
    let sat: Vec<bool> = formulas
        .iter()
        .map(|f| f.is_satisfiable(Solver::FloydWarshall))
        .collect();
    report.satisfiable = sat.iter().any(|&s| s);
    report.dead_disjuncts = sat
        .iter()
        .enumerate()
        .filter(|(_, &s)| !s)
        .map(|(i, _)| i)
        .collect();

    // always-irrelevant: only meaningful when the whole condition is
    // unsatisfiable (otherwise some update can always matter), and
    // attributed to the relations whose local predicates carry the
    // contradiction in every disjunct.
    if !report.satisfiable && !disjuncts.is_empty() {
        for rel in &expr.relations {
            let Ok(schema) = db.schema(rel) else { continue };
            if disjuncts
                .iter()
                .all(|c| local_atoms_unsat(c, schema, &vars))
            {
                report.always_irrelevant.push(rel.clone());
            }
        }
    }

    // redundant-atom: only within satisfiable disjuncts (inside a dead
    // disjunct everything is vacuously implied).
    for (d, conj) in disjuncts.iter().enumerate() {
        if sat[d] {
            report.redundant.extend(redundant_atoms(conj, &vars, d));
        }
    }
    report
}

/// Structural verdict over a *set* of view definitions that may
/// reference each other: does it admit a topological maintenance order,
/// and where could maintenance work be shared?
#[derive(Debug, Clone, Default)]
pub struct DagAnalysis {
    /// Views by stratum: `strata[0]` depends only on base relations,
    /// `strata[i]` has its deepest operand in `strata[i-1]`. Views in a
    /// cycle or behind an unresolved operand are absent.
    pub strata: Vec<Vec<String>>,
    /// Definition cycles, each listed in traversal order starting from
    /// its lexicographically smallest member.
    pub cycles: Vec<Vec<String>>,
    /// `(view, operand)` pairs where the operand is neither a base
    /// relation nor a defined view.
    pub unresolved: Vec<(String, String)>,
    /// Groups (size ≥ 2) of views with an identical select-join core —
    /// the manager maintains such a core once and fans its delta out.
    pub sharing: Vec<Vec<String>>,
}

impl DagAnalysis {
    /// True when every view is stratifiable (no cycles, no unresolved
    /// operands).
    pub fn is_stratified(&self) -> bool {
        self.cycles.is_empty() && self.unresolved.is_empty()
    }

    /// Lower cycle findings into the shared diagnostic model (one
    /// `view-cycle` finding per cycle, attributed to its smallest
    /// member).
    pub fn to_report(&self) -> Report {
        let mut report = Report::default();
        for cycle in &self.cycles {
            let path = cycle.join(" -> ");
            let first = cycle.first().map(String::as_str).unwrap_or("?");
            report.findings.push(Finding {
                rule: RuleId::ViewCycle,
                file: format!("view:{first}"),
                line: 0,
                col: 0,
                message: format!(
                    "definition cycle {path} -> {first}: no topological maintenance order exists"
                ),
            });
        }
        report
    }
}

impl fmt::Display for DagAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n: usize = self.strata.iter().map(Vec::len).sum();
        writeln!(
            f,
            "dependency DAG: {n} stratified view(s) across {} stratum(s), {}",
            self.strata.len(),
            if self.is_stratified() {
                "acyclic"
            } else {
                "NOT stratifiable"
            }
        )?;
        for (i, level) in self.strata.iter().enumerate() {
            writeln!(f, "  stratum {}: {}", i + 1, level.join(" "))?;
        }
        for group in &self.sharing {
            writeln!(
                f,
                "  shared core: {} (identical select-join core; maintained once)",
                group.join(", ")
            )?;
        }
        for cycle in &self.cycles {
            let first = cycle.first().map(String::as_str).unwrap_or("?");
            writeln!(f, "  CYCLE: {} -> {first}", cycle.join(" -> "))?;
        }
        for (view, op) in &self.unresolved {
            writeln!(
                f,
                "  unresolved: `{view}` references `{op}`, which is neither a base relation nor a defined view"
            )?;
        }
        Ok(())
    }
}

/// Analyze a definition *set* for DAG structure: stratify what can be
/// stratified, extract the cycles that block the rest, flag unresolved
/// operands, and group views by identical select-join core.
///
/// The database supplies base-relation names only; contents are never
/// consulted. Definitions may arrive in any order — unlike the
/// manager's registration path, operands may be defined later in the
/// set.
pub fn analyze_dag<'a>(
    views: impl IntoIterator<Item = (&'a str, &'a SpjExpr)>,
    db: &Database,
) -> DagAnalysis {
    let defs: BTreeMap<&str, &SpjExpr> = views.into_iter().collect();
    let mut analysis = DagAnalysis::default();

    // Unresolved operands disqualify a view from stratification.
    for (&name, expr) in &defs {
        for op in &expr.relations {
            if !db.contains_relation(op) && !defs.contains_key(op.as_str()) {
                analysis.unresolved.push((name.to_owned(), op.clone()));
            }
        }
    }
    let blocked: BTreeSet<&str> = analysis
        .unresolved
        .iter()
        .map(|(v, _)| v.as_str())
        .collect();

    // Stratification fixpoint, exactly the manager's rule: a view's
    // stratum is 1 + the deepest view operand (base operands count 0).
    let mut stratum: BTreeMap<&str, usize> = BTreeMap::new();
    loop {
        let mut progressed = false;
        for (&name, expr) in &defs {
            if stratum.contains_key(name) || blocked.contains(name) {
                continue;
            }
            let mut depth = Some(0usize);
            for op in &expr.relations {
                if defs.contains_key(op.as_str()) {
                    match stratum.get(op.as_str()) {
                        Some(&d) => depth = depth.map(|cur| cur.max(d + 1)),
                        None => depth = None, // operand not placed (yet)
                    }
                }
                if depth.is_none() {
                    break;
                }
            }
            if let Some(d) = depth {
                stratum.insert(name, d);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    if !stratum.is_empty() {
        analysis.strata = vec![Vec::new(); max_stratum + 1];
        for (name, &d) in &stratum {
            analysis.strata[d].push((*name).to_owned());
        }
    }

    // Whatever is neither stratified nor blocked on an unknown operand
    // depends (transitively) on a cycle. Walk each leftover's operand
    // chain until a node repeats on the path: that slice is the cycle.
    let mut in_cycle: BTreeSet<&str> = BTreeSet::new();
    for &start in defs.keys() {
        if stratum.contains_key(start) || blocked.contains(start) || in_cycle.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut cur = start;
        let cycle = loop {
            if let Some(pos) = path.iter().position(|&n| n == cur) {
                break &path[pos..];
            }
            path.push(cur);
            // Follow the first operand that is itself an unplaced view —
            // every leftover has one, or it would have stratified.
            let Some(next) = defs[cur].relations.iter().find(|op| {
                defs.contains_key(op.as_str())
                    && !stratum.contains_key(op.as_str())
                    && !blocked.contains(op.as_str())
            }) else {
                break &path[path.len()..]; // blocked transitively, not cyclic itself
            };
            cur = next.as_str();
        };
        if cycle.is_empty() {
            continue;
        }
        if cycle.iter().any(|n| in_cycle.contains(n)) {
            continue; // reached an already-reported cycle
        }
        in_cycle.extend(cycle.iter().copied());
        // Rotate so the smallest member leads: deterministic output.
        let min_pos = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| **n)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let rotated: Vec<String> = cycle[min_pos..]
            .iter()
            .chain(&cycle[..min_pos])
            .map(|n| (*n).to_owned())
            .collect();
        analysis.cycles.push(rotated);
    }
    analysis.cycles.sort();

    // Sharing groups: identical select-join core (relations + condition).
    let mut by_core: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (&name, expr) in &defs {
        by_core
            .entry(expr.core_key())
            .or_default()
            .push(name.to_owned());
    }
    analysis.sharing = by_core
        .into_values()
        .filter(|group| group.len() >= 2)
        .collect();
    analysis
}

/// Analyze every `(name, expr)` pair and merge into one [`Report`] for
/// the shared baseline/diagnostic pipeline.
pub fn analyze_all<'a>(
    views: impl IntoIterator<Item = (&'a str, &'a SpjExpr)>,
    db: &Database,
) -> (Vec<ViewAnalysisReport>, Report) {
    let mut reports = Vec::new();
    let mut merged = Report::default();
    for (name, expr) in views {
        let r = analyze_view(name, expr, db);
        merged.merge(r.to_report());
        reports.push(r);
    }
    (reports, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_relational::predicate::{Atom, CompOp, Condition};
    use ivm_relational::schema::Schema;

    /// R(A,B) ⋈ S(C,D) test database (schemas only — analysis never reads
    /// contents).
    fn db() -> Database {
        let mut db = Database::new();
        db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
        db.create("S", Schema::new(["C", "D"]).unwrap()).unwrap();
        db
    }

    fn view(cond: Condition) -> SpjExpr {
        SpjExpr::new(["R", "S"], cond, None)
    }

    #[test]
    fn satisfiable_view_is_clean() {
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 10),
            Atom::gt_const("C", 5),
        ]));
        let r = analyze_view("v", &v, &db());
        assert!(r.is_clean(), "{r}");
        assert!(r.satisfiable);
        assert!(r.to_report().is_clean());
    }

    #[test]
    fn unsatisfiable_view_flagged() {
        // A < 5 ∧ A > 10: empty forever.
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 5),
            Atom::gt_const("A", 10),
        ]));
        let r = analyze_view("dead", &v, &db());
        assert!(!r.satisfiable);
        let rep = r.to_report();
        assert!(rep.findings.iter().any(|f| f.rule == RuleId::UnsatView));
    }

    #[test]
    fn always_irrelevant_attributed_to_the_contradictory_relation() {
        // The contradiction lives entirely in R's attributes; S carries
        // a satisfiable predicate.
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 5),
            Atom::gt_const("A", 10),
            Atom::gt_const("C", 0),
        ]));
        let r = analyze_view("dead", &v, &db());
        assert_eq!(r.always_irrelevant, ["R"]);
        let rep = r.to_report();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.rule == RuleId::AlwaysIrrelevant && f.message.contains("`R`")));
    }

    #[test]
    fn cross_relation_contradiction_has_no_local_culprit() {
        // A < C ∧ C < A: unsat, but neither relation's local atoms are.
        let v = view(Condition::conjunction([
            Atom::cmp_attr("A", CompOp::Lt, "C", 0),
            Atom::cmp_attr("C", CompOp::Lt, "A", 0),
        ]));
        let r = analyze_view("cross", &v, &db());
        assert!(!r.satisfiable);
        assert!(r.always_irrelevant.is_empty());
    }

    #[test]
    fn dead_disjunct_in_live_dnf_flagged() {
        let live = Conjunction::new([Atom::lt_const("A", 10)]);
        let dead = Conjunction::new([Atom::lt_const("C", 0), Atom::gt_const("C", 0)]);
        let v = view(Condition::dnf([live, dead]));
        let r = analyze_view("v", &v, &db());
        assert!(r.satisfiable);
        assert_eq!(r.dead_disjuncts, [1]);
        let rep = r.to_report();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.rule == RuleId::UnsatView && f.message.contains("disjunct #1")));
    }

    #[test]
    fn duplicate_atom_is_redundant() {
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 10),
            Atom::lt_const("A", 10),
        ]));
        let r = analyze_view("v", &v, &db());
        assert_eq!(r.redundant.len(), 2, "each copy implied by the other: {r}");
    }

    #[test]
    fn weaker_bound_is_redundant() {
        // A < 5 implies A < 10.
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 5),
            Atom::lt_const("A", 10),
        ]));
        let r = analyze_view("v", &v, &db());
        assert_eq!(r.redundant.len(), 1);
        assert!(r.redundant[0].atom.contains("10"), "{:?}", r.redundant);
    }

    #[test]
    fn transitive_closure_implication() {
        // A ≤ C ∧ C ≤ D ⟹ A ≤ D: the third atom is implied via a 2-hop
        // path in the digraph — exactly the transitive-closure case.
        let v = view(Condition::conjunction([
            Atom::cmp_attr("A", CompOp::Le, "C", 0),
            Atom::cmp_attr("C", CompOp::Le, "D", 0),
            Atom::cmp_attr("A", CompOp::Le, "D", 0),
        ]));
        let r = analyze_view("v", &v, &db());
        assert_eq!(r.redundant.len(), 1);
        assert!(r.redundant[0].atom.contains("A"));
        assert!(r.redundant[0].atom.contains("D"));
    }

    #[test]
    fn independent_atoms_not_redundant() {
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 10),
            Atom::gt_const("C", 5),
            Atom::cmp_attr("B", CompOp::Eq, "D", 0),
        ]));
        let r = analyze_view("v", &v, &db());
        assert!(r.redundant.is_empty(), "{:?}", r.redundant);
    }

    #[test]
    fn equality_implies_both_inequalities() {
        // A = C makes A ≤ C redundant.
        let v = view(Condition::conjunction([
            Atom::cmp_attr("A", CompOp::Eq, "C", 0),
            Atom::cmp_attr("A", CompOp::Le, "C", 0),
        ]));
        let r = analyze_view("v", &v, &db());
        assert_eq!(r.redundant.len(), 1);
        assert!(r.redundant[0].atom.contains("<="));
    }

    #[test]
    fn always_true_condition_clean() {
        let v = view(Condition::always_true());
        let r = analyze_view("v", &v, &db());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn always_false_condition_is_unsat() {
        let v = view(Condition::always_false());
        let r = analyze_view("v", &v, &db());
        assert!(!r.satisfiable);
        assert!(r.always_irrelevant.is_empty());
    }

    #[test]
    fn analyze_all_merges() {
        let good = view(Condition::conjunction([Atom::lt_const("A", 10)]));
        let bad = view(Condition::conjunction([
            Atom::lt_const("A", 0),
            Atom::gt_const("A", 0),
        ]));
        let (reports, merged) = analyze_all([("g", &good), ("b", &bad)], &db());
        assert_eq!(reports.len(), 2);
        assert_eq!(merged.scanned, 2);
        assert!(merged.findings.iter().all(|f| f.file == "view:b"));
    }

    fn named(rels: &[&str]) -> SpjExpr {
        SpjExpr::new(
            rels.iter().map(|r| r.to_string()),
            Condition::always_true(),
            None,
        )
    }

    #[test]
    fn dag_stratifies_a_stacked_definition_set() {
        let l1 = named(&["R", "S"]);
        let l2 = named(&["l1", "S"]);
        let l3 = named(&["l2"]);
        // Definition order does not matter: l3 arrives before l1.
        let a = analyze_dag([("l3", &l3), ("l1", &l1), ("l2", &l2)], &db());
        assert!(a.is_stratified(), "{a}");
        assert_eq!(a.strata, [vec!["l1"], vec!["l2"], vec!["l3"]]);
        assert!(a.to_report().is_clean());
    }

    #[test]
    fn dag_reports_cycles() {
        let va = named(&["vb", "R"]);
        let vb = named(&["vc"]);
        let vc = named(&["va"]);
        let ok = named(&["R"]);
        let a = analyze_dag([("va", &va), ("vb", &vb), ("vc", &vc), ("ok", &ok)], &db());
        assert!(!a.is_stratified());
        assert_eq!(a.strata, [vec!["ok"]]);
        assert_eq!(a.cycles, [vec!["va", "vb", "vc"]]);
        let rep = a.to_report();
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, RuleId::ViewCycle);
        assert!(rep.findings[0].message.contains("va -> vb -> vc -> va"));
        assert!(a.to_string().contains("CYCLE: va -> vb -> vc -> va"));
    }

    #[test]
    fn dag_self_reference_is_a_unit_cycle() {
        let v = named(&["v"]);
        let a = analyze_dag([("v", &v)], &db());
        assert_eq!(a.cycles, [vec!["v"]]);
    }

    #[test]
    fn dag_flags_unresolved_operands() {
        let v = named(&["ghost"]);
        let over = named(&["v"]); // transitively blocked, not cyclic
        let a = analyze_dag([("v", &v), ("over", &over)], &db());
        assert_eq!(a.unresolved, [("v".to_owned(), "ghost".to_owned())]);
        assert!(a.cycles.is_empty());
        assert!(a.strata.is_empty());
        assert!(a.to_string().contains("unresolved: `v` references `ghost`"));
    }

    #[test]
    fn dag_groups_identical_cores() {
        let cond: Condition = Atom::lt_const("A", 10).into();
        let p1 = SpjExpr::new(["R", "S"], cond.clone(), Some(vec!["A".into()]));
        let p2 = SpjExpr::new(["R", "S"], cond, Some(vec!["B".into()]));
        let other = named(&["R"]);
        let a = analyze_dag([("p1", &p1), ("p2", &p2), ("other", &other)], &db());
        assert_eq!(a.sharing, [vec!["p1", "p2"]]);
        assert!(a.to_string().contains("shared core: p1, p2"));
    }

    #[test]
    fn display_renders_verdicts() {
        let v = view(Condition::conjunction([
            Atom::lt_const("A", 5),
            Atom::gt_const("A", 10),
        ]));
        let s = analyze_view("dead", &v, &db()).to_string();
        assert!(s.contains("UNSATISFIABLE"));
        assert!(s.contains("always-irrelevant"));
    }
}
