//! The shared diagnostic model: findings, rule metadata, and the report
//! both frontends feed into.
//!
//! A [`Finding`] is one rule violation at one source location (Frontend A)
//! or one view-analysis verdict (Frontend B, where the "file" is the view
//! name and the line is 0). Findings aggregate into a [`Report`], which is
//! what the baseline engine ([`crate::baseline`]) filters and what the CLI
//! renders.

use std::fmt;

/// Identifier of one lint rule. Stable across releases: baselines and
/// suppression comments reference these strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `no-panic`: no `unwrap`/`expect`/`panic!`-family calls in engine
    /// hot paths.
    NoPanic,
    /// `no-unchecked-index`: no literal-index slice access (`xs[0]`) in
    /// engine hot paths.
    NoUncheckedIndex,
    /// `safety-comment`: every `unsafe` keyword needs a `// SAFETY:`
    /// comment on the lines directly above it.
    SafetyComment,
    /// `metric-literal`: metric/span name string literals belong in
    /// `crates/obs/src/names.rs` only.
    MetricLiteral,
    /// `no-ambient-time`: no `Instant::now` / `SystemTime::now` /
    /// `thread::sleep` / `thread_rng` in sim-deterministic crates.
    NoAmbientTime,
    /// `unsat-view`: a view condition that is statically unsatisfiable
    /// (the materialization is empty forever).
    UnsatView,
    /// `always-irrelevant`: a (view, relation) pair where *every* update
    /// to the relation is provably irrelevant (degenerate Theorem 4.2).
    AlwaysIrrelevant,
    /// `redundant-atom`: a condition atom implied by the transitive
    /// closure of the remaining atoms' RH constraint digraph.
    RedundantAtom,
    /// `view-cycle`: a set of view definitions that reference each other
    /// cyclically — no topological maintenance order exists.
    ViewCycle,
    /// `atomic-audit`: every `Ordering::*` site must appear in the
    /// checked-in `concurrency-catalog.toml` with a one-line rationale.
    AtomicAudit,
    /// `lock-order-cycle`: the approximate inter-procedural lock-order
    /// digraph contains a cycle (a potential deadlock).
    LockOrderCycle,
}

impl RuleId {
    /// Every rule, in catalog order (drives `--list-rules` and the docs
    /// self-test).
    pub const ALL: &'static [RuleId] = &[
        RuleId::NoPanic,
        RuleId::NoUncheckedIndex,
        RuleId::SafetyComment,
        RuleId::MetricLiteral,
        RuleId::NoAmbientTime,
        RuleId::UnsatView,
        RuleId::AlwaysIrrelevant,
        RuleId::RedundantAtom,
        RuleId::ViewCycle,
        RuleId::AtomicAudit,
        RuleId::LockOrderCycle,
    ];

    /// The stable kebab-case name used in output, suppressions and
    /// baselines.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoPanic => "no-panic",
            RuleId::NoUncheckedIndex => "no-unchecked-index",
            RuleId::SafetyComment => "safety-comment",
            RuleId::MetricLiteral => "metric-literal",
            RuleId::NoAmbientTime => "no-ambient-time",
            RuleId::UnsatView => "unsat-view",
            RuleId::AlwaysIrrelevant => "always-irrelevant",
            RuleId::RedundantAtom => "redundant-atom",
            RuleId::ViewCycle => "view-cycle",
            RuleId::AtomicAudit => "atomic-audit",
            RuleId::LockOrderCycle => "lock-order-cycle",
        }
    }

    /// Parse a stable rule name (as used by `// ivm-lint: allow(...)` and
    /// baseline files).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// One-line rationale, shown by `--list-rules` and documented in
    /// `docs/ANALYSIS.md`.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::NoPanic => {
                "engine hot paths must fail through typed errors, not process aborts"
            }
            RuleId::NoUncheckedIndex => {
                "literal indexing hides bounds assumptions; use get() or document the invariant"
            }
            RuleId::SafetyComment => {
                "every unsafe block must state the invariant that makes it sound"
            }
            RuleId::MetricLiteral => {
                "metric/span names live in the obs catalog so docs and code cannot drift"
            }
            RuleId::NoAmbientTime => {
                "sim-reachable code must be a pure function of its inputs and the seed"
            }
            RuleId::UnsatView => "the §4 satisfiability test proves this view is empty forever",
            RuleId::AlwaysIrrelevant => {
                "every update to this relation is provably irrelevant to the view (Thm 4.2)"
            }
            RuleId::RedundantAtom => {
                "the atom is implied by the RH digraph's transitive closure of the others"
            }
            RuleId::ViewCycle => {
                "view definitions must form a DAG; a cycle has no topological maintenance order"
            }
            RuleId::AtomicAudit => {
                "every atomic ordering choice must be cataloged with the invariant it relies on"
            }
            RuleId::LockOrderCycle => {
                "locks must be acquired in one global order; a digraph cycle is a latent deadlock"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Repo-relative path (Frontend A) or `view:<name>` (Frontend B).
    pub file: String,
    /// 1-based line, or 0 for whole-entity findings.
    pub line: usize,
    /// 1-based column, or 0.
    pub col: usize,
    /// Human-readable description of the specific violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}:{}: {}: {}",
                self.file, self.line, self.col, self.rule, self.message
            )
        }
    }
}

/// A batch of findings plus bookkeeping from a scan.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned (Frontend A) or views analyzed (B).
    pub scanned: usize,
    /// Findings suppressed by inline `ivm-lint: allow(...)` comments.
    pub suppressed: usize,
}

impl Report {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.scanned += other.scanned;
        self.suppressed += other.suppressed;
    }

    /// True when no findings survived.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sort findings into stable file/line/col/rule order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} finding(s), {} suppressed, {} file(s) scanned",
            self.findings.len(),
            self.suppressed,
            self.scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for &rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn display_formats() {
        let f = Finding {
            rule: RuleId::NoPanic,
            file: "a.rs".into(),
            line: 3,
            col: 7,
            message: "x".into(),
        };
        assert_eq!(f.to_string(), "a.rs:3:7: no-panic: x");
        let v = Finding {
            rule: RuleId::UnsatView,
            file: "view:v".into(),
            line: 0,
            col: 0,
            message: "empty".into(),
        };
        assert_eq!(v.to_string(), "view:v: unsat-view: empty");
    }

    #[test]
    fn report_merge_and_sort() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: RuleId::NoPanic,
            file: "b.rs".into(),
            line: 1,
            col: 1,
            message: String::new(),
        });
        let mut o = Report {
            scanned: 2,
            ..Default::default()
        };
        o.findings.push(Finding {
            rule: RuleId::NoPanic,
            file: "a.rs".into(),
            line: 9,
            col: 1,
            message: String::new(),
        });
        r.merge(o);
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.scanned, 2);
        assert!(!r.is_clean());
    }
}
