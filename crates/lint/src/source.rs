//! Frontend A: token-level source lints.
//!
//! Mirrors the paper's §4 discipline — decide statically, before anything
//! runs, that a class of failures cannot happen. Five rules (catalogued
//! with rationale and suppression syntax in `docs/ANALYSIS.md`):
//!
//! | rule | scope |
//! |------|-------|
//! | `no-panic`           | engine hot paths |
//! | `no-unchecked-index` | engine hot paths |
//! | `safety-comment`     | whole workspace |
//! | `metric-literal`     | whole workspace except the catalog |
//! | `no-ambient-time`    | sim-deterministic crates |
//!
//! `#[cfg(test)]` regions are exempt from every rule except
//! `safety-comment` (an undocumented `unsafe` is a problem in a test
//! too). A finding is suppressed by a comment on the same or preceding
//! line:
//!
//! ```text
//! // ivm-lint: allow(no-panic) — invariant: rows only select present operands
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::diag::{Finding, Report, RuleId};
use crate::tokenizer::{tokenize, Token, TokenKind};

/// Lint one file's source text. `path` is the repo-relative path used for
/// scoping and reporting.
pub fn lint_file(path: &str, source: &str, cfg: &LintConfig) -> Report {
    let tokens = tokenize(source);
    let suppressions = Suppressions::collect(&tokens);
    let safety_lines = safety_comment_lines(&tokens);
    let test_spans = test_region_spans(&tokens);
    let in_test = |idx: usize| test_spans.iter().any(|&(s, e)| idx >= s && idx < e);

    // Code view: comments stripped, original indices retained.
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();

    let mut report = Report {
        scanned: 1,
        ..Report::default()
    };
    let mut emit = |rule: RuleId, tok: &Token, idx: usize, skip_tests: bool, message: String| {
        if skip_tests && in_test(idx) {
            return;
        }
        if suppressions.allows(rule, tok.line) {
            report.suppressed += 1;
            return;
        }
        report.findings.push(Finding {
            rule,
            file: path.to_owned(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let hot = cfg.is_hot_path(path);
    let deterministic = cfg.is_deterministic(path);
    let is_catalog = path == cfg.catalog_file;
    let metric_names: BTreeSet<&str> = cfg.metric_names.iter().map(String::as_str).collect();
    let span_names: BTreeSet<&str> = cfg.span_names.iter().map(String::as_str).collect();

    fn ident_at<'t>(w: &[(usize, &'t Token)], i: usize) -> Option<&'t str> {
        w.get(i).and_then(|(_, t)| t.ident())
    }
    fn punct_at(w: &[(usize, &Token)], i: usize, c: char) -> bool {
        w.get(i).is_some_and(|(_, t)| t.is_punct(c))
    }

    for i in 0..code.len() {
        let (idx, tok) = code[i];

        if hot {
            // no-panic: `.unwrap()` / `.expect(` method calls.
            if tok.is_punct('.') {
                if let Some(name @ ("unwrap" | "expect")) = ident_at(&code, i + 1) {
                    if punct_at(&code, i + 2, '(') {
                        let (_, t) = code[i + 1];
                        emit(
                            RuleId::NoPanic,
                            t,
                            idx,
                            true,
                            format!("`.{name}()` in an engine hot path; return a typed error or document the invariant"),
                        );
                    }
                }
            }
            // no-panic: panic-family macros.
            if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) = tok.ident() {
                if punct_at(&code, i + 1, '!') {
                    emit(
                        RuleId::NoPanic,
                        tok,
                        idx,
                        true,
                        format!("`{name}!` in an engine hot path; return a typed error instead"),
                    );
                }
            }
            // no-unchecked-index: `expr[<literal>]`.
            let index_base = matches!(
                tok.kind,
                TokenKind::Ident(_)
                    | TokenKind::Number(_)
                    | TokenKind::Punct(']')
                    | TokenKind::Punct(')')
            );
            if index_base && punct_at(&code, i + 1, '[') {
                if let Some((_, num)) = code.get(i + 2) {
                    if matches!(num.kind, TokenKind::Number(_)) && punct_at(&code, i + 3, ']') {
                        let (nidx, ntok) = code[i + 1];
                        emit(
                            RuleId::NoUncheckedIndex,
                            ntok,
                            nidx,
                            true,
                            "literal slice index in an engine hot path; use get() or document the bound".into(),
                        );
                    }
                }
            }
        }

        // safety-comment: every `unsafe` keyword, tests included.
        if tok.ident() == Some("unsafe") {
            let documented =
                (tok.line.saturating_sub(3)..=tok.line).any(|l| safety_lines.contains(&l));
            if !documented {
                emit(
                    RuleId::SafetyComment,
                    tok,
                    idx,
                    false,
                    "`unsafe` without a `// SAFETY:` comment on the preceding lines".into(),
                );
            }
        }

        // metric-literal: catalog names spelled as literals elsewhere.
        if !is_catalog {
            if let TokenKind::Str(value) = &tok.kind {
                if metric_names.contains(value.as_str()) {
                    emit(
                        RuleId::MetricLiteral,
                        tok,
                        idx,
                        true,
                        format!(
                            "metric name \"{value}\" as a literal; use the ivm_obs::names constant"
                        ),
                    );
                } else if span_names.contains(value.as_str())
                    && i >= 2
                    && punct_at(&code, i - 1, '(')
                    && matches!(ident_at(&code, i - 2), Some("span" | "span_enter"))
                {
                    emit(
                        RuleId::MetricLiteral,
                        tok,
                        idx,
                        true,
                        format!(
                            "span name \"{value}\" as a literal; use the ivm_obs::names constant"
                        ),
                    );
                }
            }
        }

        if deterministic {
            // no-ambient-time: wall clocks, sleeps and ambient RNGs.
            let path_call = |head: &str, tail: &str| -> bool {
                tok.ident() == Some(head)
                    && punct_at(&code, i + 1, ':')
                    && punct_at(&code, i + 2, ':')
                    && ident_at(&code, i + 3) == Some(tail)
            };
            if path_call("Instant", "now") {
                emit(
                    RuleId::NoAmbientTime,
                    tok,
                    idx,
                    true,
                    "`Instant::now` in sim-deterministic code; results must be a pure function of the seed".into(),
                );
            } else if path_call("SystemTime", "now") {
                emit(
                    RuleId::NoAmbientTime,
                    tok,
                    idx,
                    true,
                    "`SystemTime::now` in sim-deterministic code".into(),
                );
            } else if path_call("thread", "sleep") {
                emit(
                    RuleId::NoAmbientTime,
                    tok,
                    idx,
                    true,
                    "`thread::sleep` in sim-deterministic code".into(),
                );
            } else if tok.ident() == Some("thread_rng") {
                emit(
                    RuleId::NoAmbientTime,
                    tok,
                    idx,
                    true,
                    "ambient RNG in sim-deterministic code; thread a seeded rng instead".into(),
                );
            }
        }
    }

    report.sort();
    report
}

/// Inline suppressions: `// ivm-lint: allow(rule[, rule…])` covers the
/// comment's own line and the next; `allow-file(rule)` covers the file.
#[derive(Debug, Default)]
struct Suppressions {
    /// rule → lines on which a same-or-next-line allow was written.
    lines: BTreeMap<RuleId, BTreeSet<usize>>,
    /// rules allowed for the whole file.
    file_wide: BTreeSet<RuleId>,
}

impl Suppressions {
    fn collect(tokens: &[Token]) -> Suppressions {
        let mut s = Suppressions::default();
        for tok in tokens {
            let text = match &tok.kind {
                TokenKind::LineComment(t) | TokenKind::BlockComment(t) => t,
                _ => continue,
            };
            let Some(rest) = text.split("ivm-lint:").nth(1) else {
                continue;
            };
            let rest = rest.trim_start();
            let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow(") {
                (false, r)
            } else {
                continue;
            };
            let Some(end) = rest.find(')') else { continue };
            for name in rest[..end].split(',') {
                if let Some(rule) = RuleId::parse(name.trim()) {
                    if file_wide {
                        s.file_wide.insert(rule);
                    } else {
                        s.lines.entry(rule).or_default().insert(tok.line);
                    }
                }
            }
        }
        s
    }

    fn allows(&self, rule: RuleId, line: usize) -> bool {
        if self.file_wide.contains(&rule) {
            return true;
        }
        self.lines
            .get(&rule)
            .is_some_and(|ls| ls.contains(&line) || ls.contains(&line.saturating_sub(1)))
    }
}

/// Lines bearing a `SAFETY:` comment.
fn safety_comment_lines(tokens: &[Token]) -> BTreeSet<usize> {
    tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::LineComment(text) | TokenKind::BlockComment(text)
                if text.contains("SAFETY:") =>
            {
                Some(t.line)
            }
            _ => None,
        })
        .collect()
}

/// Token-index spans `[start, end)` of items annotated `#[cfg(test)]`
/// (or any `#[cfg(…)]` mentioning `test`, e.g. `all(test, …)`).
fn test_region_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 3 < code.len() {
        let attr_start = code[i].1.is_punct('#')
            && code[i + 1].1.is_punct('[')
            && code[i + 2].1.ident() == Some("cfg")
            && code[i + 3].1.is_punct('(');
        if !attr_start {
            i += 1;
            continue;
        }
        // Scan the attribute body for `test`, then find its closing `]`.
        let mut j = i + 4;
        let mut depth = 1usize; // inside the cfg(...) parens
        let mut mentions_test = false;
        while j < code.len() && depth > 0 {
            let t = code[j].1;
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            } else if t.ident() == Some("test") {
                mentions_test = true;
            }
            j += 1;
        }
        // j is just past the closing ')'; expect the attribute's ']'.
        if j < code.len() && code[j].1.is_punct(']') {
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // The annotated item runs to its matching closing brace (or a `;`
        // for `mod name;` forms, which have no body to skip).
        let mut k = j;
        while k < code.len() && !code[k].1.is_punct('{') && !code[k].1.is_punct(';') {
            k += 1;
        }
        if k < code.len() && code[k].1.is_punct('{') {
            let mut braces = 0usize;
            let mut end = k;
            while end < code.len() {
                let t = code[end].1;
                if t.is_punct('{') {
                    braces += 1;
                } else if t.is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                end += 1;
            }
            spans.push((code[i].0, code[end.min(code.len() - 1)].0 + 1));
            i = end + 1;
        } else {
            i = k + 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_cfg() -> LintConfig {
        LintConfig {
            metric_names: vec!["pool.chunks".into(), "filter.tuples_checked".into()],
            span_names: vec!["execute".into()],
            ..LintConfig::default()
        }
    }

    const HOT: &str = "crates/parallel/src/lib.rs";
    const COLD: &str = "crates/bench/src/lib.rs";

    fn rules(path: &str, src: &str) -> Vec<RuleId> {
        lint_file(path, src, &hot_cfg())
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unwrap_flagged_in_hot_path_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules(HOT, src), [RuleId::NoPanic]);
        assert_eq!(rules(COLD, src), []);
    }

    #[test]
    fn expect_and_panic_macros_flagged() {
        let src = "fn f() { y.expect(\"m\"); panic!(\"boom\"); unreachable!(); }";
        assert_eq!(
            rules(HOT, src),
            [RuleId::NoPanic, RuleId::NoPanic, RuleId::NoPanic]
        );
    }

    #[test]
    fn unwrap_in_comment_or_string_ignored() {
        let src = "// x.unwrap()\nfn f() { let s = \"a.unwrap()\"; }";
        assert_eq!(rules(HOT, src), []);
    }

    #[test]
    fn unwrap_in_test_module_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\nfn g() { y.unwrap(); }";
        let found = lint_file(HOT, src, &hot_cfg());
        assert_eq!(found.findings.len(), 1);
        assert_eq!(found.findings[0].line, 3);
    }

    #[test]
    fn literal_index_flagged() {
        let src = "fn f(xs: &[u8]) -> u8 { xs[0] }";
        assert_eq!(rules(HOT, src), [RuleId::NoUncheckedIndex]);
        // Computed indices and ranges are not flagged.
        assert_eq!(rules(HOT, "fn f(xs: &[u8], i: usize) -> u8 { xs[i] }"), []);
        assert_eq!(rules(HOT, "fn f(xs: &[u8]) -> &[u8] { &xs[1..] }"), []);
        // Array type annotations are not indexing.
        assert_eq!(rules(HOT, "fn f(xs: [u8; 4]) {}"), []);
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { core(); } }";
        assert_eq!(rules(COLD, bad), [RuleId::SafetyComment]);
        let good =
            "fn f() {\n    // SAFETY: the pointer outlives the call.\n    unsafe { core(); }\n}";
        assert_eq!(rules(COLD, good), []);
        // Comment too far above does not count.
        let far =
            "// SAFETY: stale\nfn a() {}\nfn b() {}\nfn c() {}\nfn f() { unsafe { core(); } }";
        assert_eq!(rules(COLD, far), [RuleId::SafetyComment]);
    }

    #[test]
    fn unsafe_in_tests_still_checked() {
        let src = "#[cfg(test)]\nmod tests { fn f() { unsafe { x(); } } }";
        assert_eq!(rules(COLD, src), [RuleId::SafetyComment]);
    }

    #[test]
    fn metric_literal_flagged_outside_catalog() {
        let src = "fn f(o: &Obs) { o.add(\"pool.chunks\", 1); }";
        assert_eq!(rules(COLD, src), [RuleId::MetricLiteral]);
        // The catalog itself is exempt.
        assert_eq!(rules("crates/obs/src/names.rs", src), []);
        // Unrelated literals are fine.
        assert_eq!(rules(COLD, "fn f() { let s = \"pool.boats\"; }"), []);
    }

    #[test]
    fn span_literal_flagged_only_in_span_calls() {
        let src = "fn f(o: &Obs) { let _g = o.span(\"execute\"); }";
        assert_eq!(rules(COLD, src), [RuleId::MetricLiteral]);
        // The bare word "execute" elsewhere is prose, not a span name.
        assert_eq!(rules(COLD, "fn f() { let s = \"execute\"; }"), []);
    }

    #[test]
    fn ambient_time_flagged_in_deterministic_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules("crates/sim/src/lib.rs", src), [RuleId::NoAmbientTime]);
        assert_eq!(rules("crates/obs/src/lib.rs", src), []);
        assert_eq!(
            rules(
                "crates/storage/src/lib.rs",
                "fn f() { let t = SystemTime::now(); }"
            ),
            [RuleId::NoAmbientTime]
        );
        assert_eq!(
            rules("crates/core/src/manager.rs", "fn f() { thread::sleep(d); }"),
            [RuleId::NoAmbientTime]
        );
        assert_eq!(
            rules(
                "crates/relational/src/lib.rs",
                "fn f() { let mut r = thread_rng(); }"
            ),
            [RuleId::NoAmbientTime]
        );
    }

    #[test]
    fn inline_suppression_same_and_previous_line() {
        let same = "fn f() { x.unwrap() } // ivm-lint: allow(no-panic) — invariant: x is Some";
        let r = lint_file(HOT, same, &hot_cfg());
        assert!(r.is_clean());
        assert_eq!(r.suppressed, 1);
        let above = "// ivm-lint: allow(no-panic) — checked above\nfn f() { x.unwrap() }";
        assert!(lint_file(HOT, above, &hot_cfg()).is_clean());
        // A suppression for a different rule does not apply.
        let wrong = "// ivm-lint: allow(no-ambient-time)\nfn f() { x.unwrap() }";
        assert_eq!(rules(HOT, wrong), [RuleId::NoPanic]);
        // A suppression two lines up does not apply.
        let far = "// ivm-lint: allow(no-panic)\n\nfn f() { x.unwrap() }";
        assert_eq!(rules(HOT, far), [RuleId::NoPanic]);
    }

    #[test]
    fn file_wide_suppression() {
        let src = "// ivm-lint: allow-file(no-panic)\nfn f() { x.unwrap() }\nfn g() { y.unwrap() }";
        let r = lint_file(HOT, src, &hot_cfg());
        assert!(r.is_clean());
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn multi_rule_suppression() {
        let src =
            "fn f() { t(Instant::now()).unwrap() } // ivm-lint: allow(no-panic, no-ambient-time)";
        assert!(lint_file("crates/parallel/src/lib.rs", src, &hot_cfg()).is_clean());
    }

    #[test]
    fn findings_carry_positions() {
        let src = "fn f() {\n    x.unwrap();\n}";
        let r = lint_file(HOT, src, &hot_cfg());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 2);
        assert!(r.findings[0].col > 1);
    }
}
