//! Tagged tuples and the tag algebra of §5.3.
//!
//! "From now on, all tuples are assumed to be tagged in such a way that it
//! is possible to identify inserted, deleted, and old tuples." The paper
//! gives a combination table for the tag of a tuple produced by joining two
//! tagged tuples; `insert ⋈ delete` yields *ignore* — such tuples "do not
//! emerge from the join". Select and project preserve the operand's tag.
//!
//! Tag semantics (with `i_r ∩ r = ∅` and `d_r ⊆ r`, §3):
//! * `Old` — the tuple is in both the old and the new state,
//! * `Delete` — in the old state only,
//! * `Insert` — in the new state only.
//!
//! Under that reading the paper's table is exactly the rule "a joined tuple
//! exists in a state iff all its constituents do": any `Insert` ⇒ absent
//! from the old state; any `Delete` ⇒ absent from the new state; one of
//! each ⇒ absent from both ⇒ ignore.

use crate::fxhash::FxHashMap;
use std::fmt;

use crate::delta::DeltaRelation;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// The provenance tag attached to every tuple flowing through the
/// differential pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// Present in both old and new database states.
    Old,
    /// Newly inserted: present in the new state only.
    Insert,
    /// Deleted: present in the old state only.
    Delete,
}

impl Tag {
    /// The paper's tag-combination table for join (symmetric).
    /// `None` encodes *ignore*.
    ///
    /// ```text
    ///   r1      r2      r1 ⋈ r2
    ///   insert  insert  insert
    ///   insert  delete  ignore
    ///   insert  old     insert
    ///   delete  insert  ignore
    ///   delete  delete  delete
    ///   delete  old     delete
    ///   old     insert  insert
    ///   old     delete  delete
    ///   old     old     old
    /// ```
    pub fn combine(self, other: Tag) -> Option<Tag> {
        match (self, other) {
            (Tag::Old, Tag::Old) => Some(Tag::Old),
            (Tag::Insert, Tag::Delete) | (Tag::Delete, Tag::Insert) => None,
            (Tag::Insert, _) | (_, Tag::Insert) => Some(Tag::Insert),
            (Tag::Delete, _) | (_, Tag::Delete) => Some(Tag::Delete),
        }
    }

    /// Tag of a tuple produced by a unary select or project (§5.3: "the tag
    /// value of the tuples resulting from a select or project operation" is
    /// the operand's tag).
    pub fn through_unary(self) -> Tag {
        self
    }

    /// Signed-count reading of the tag: `Insert → +1`, `Delete → −1`,
    /// `Old → 0` (an old tuple contributes no net change).
    pub fn sign(self) -> i64 {
        match self {
            Tag::Old => 0,
            Tag::Insert => 1,
            Tag::Delete => -1,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tag::Old => "old",
            Tag::Insert => "insert",
            Tag::Delete => "delete",
        })
    }
}

/// A counted multiset of tagged tuples over a scheme.
#[derive(Debug, Clone)]
pub struct TaggedRelation {
    schema: Schema,
    tuples: FxHashMap<(Tuple, Tag), u64>,
}

impl TaggedRelation {
    /// An empty tagged relation.
    pub fn empty(schema: Schema) -> Self {
        TaggedRelation {
            schema,
            tuples: FxHashMap::default(),
        }
    }

    /// Tag every tuple of a plain relation uniformly.
    pub fn from_relation(rel: &Relation, tag: Tag) -> Self {
        let mut out = TaggedRelation::empty(rel.schema().clone());
        for (t, c) in rel.iter() {
            out.add(t.clone(), tag, c);
        }
        out
    }

    /// Build the tagged *changed portion* of a base relation from its net
    /// insert/delete sets: inserts tagged [`Tag::Insert`], deletes tagged
    /// [`Tag::Delete`]. This is the operand substituted for `B_i = 1` rows
    /// of the truth table (Algorithm 5.1 step 2).
    pub fn from_changes(inserts: &Relation, deletes: &Relation) -> Result<Self> {
        inserts.schema().require_same(deletes.schema())?;
        let mut out = TaggedRelation::empty(inserts.schema().clone());
        for (t, c) in inserts.iter() {
            out.add(t.clone(), Tag::Insert, c);
        }
        for (t, c) in deletes.iter() {
            out.add(t.clone(), Tag::Delete, c);
        }
        Ok(out)
    }

    /// The scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct `(tuple, tag)` entries.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Count of a `(tuple, tag)` pair.
    pub fn count(&self, tuple: &Tuple, tag: Tag) -> u64 {
        self.tuples.get(&(tuple.clone(), tag)).copied().unwrap_or(0)
    }

    /// Add occurrences of a tagged tuple.
    pub fn add(&mut self, tuple: Tuple, tag: Tag, count: u64) {
        if count > 0 {
            *self.tuples.entry((tuple, tag)).or_insert(0) += count;
        }
    }

    /// Merge another tagged relation into this one.
    pub fn merge(&mut self, other: &TaggedRelation) -> Result<()> {
        self.schema.require_same(&other.schema)?;
        for ((t, tag), c) in &other.tuples {
            self.add(t.clone(), *tag, *c);
        }
        Ok(())
    }

    /// Iterate over `(tuple, tag, count)` triples in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, Tag, u64)> {
        self.tuples.iter().map(|((t, tag), &c)| (t, *tag, c))
    }

    /// Sorted triples for deterministic output.
    pub fn sorted(&self) -> Vec<(Tuple, Tag, u64)> {
        let mut v: Vec<(Tuple, Tag, u64)> = self
            .tuples
            .iter()
            .map(|((t, tag), &c)| (t.clone(), *tag, c))
            .collect();
        v.sort();
        v
    }

    /// Tag-algebra outcome tally: distinct entries carrying each tag, as
    /// `(inserts, deletes, olds)`. The `old` component counts context
    /// tuples that survived the joins but cancel out of the final delta
    /// (`Tag::sign() == 0`) — the observability layer reports it as
    /// `diff.tag_olds` so the cost of carrying context through §5.3 rows
    /// is visible.
    pub fn tag_counts(&self) -> (u64, u64, u64) {
        let mut inserts = 0;
        let mut deletes = 0;
        let mut olds = 0;
        for (_, tag, _) in self.iter() {
            match tag {
                Tag::Insert => inserts += 1,
                Tag::Delete => deletes += 1,
                Tag::Old => olds += 1,
            }
        }
        (inserts, deletes, olds)
    }

    /// Collapse to a signed delta: `Insert → +count`, `Delete → −count`,
    /// `Old → 0`. This is the view transaction of Algorithm 5.1 step 3
    /// ("insert all tuples tagged insert, delete all tuples tagged delete").
    pub fn to_delta(&self) -> DeltaRelation {
        let mut d = DeltaRelation::empty(self.schema.clone());
        for (t, tag, c) in self.iter() {
            d.add(t.clone(), tag.sign() * c as i64);
        }
        d
    }

    /// [`TaggedRelation::to_delta`] by value: consumes the relation so the
    /// tuples move into the delta instead of being cloned. Semantically
    /// identical to `to_delta`; the differential engines use it on their
    /// final accumulator, where the tagged form is no longer needed.
    pub fn into_delta(self) -> DeltaRelation {
        let mut d = DeltaRelation::empty(self.schema.clone());
        for ((t, tag), c) in self.tuples {
            d.add(t, tag.sign() * c as i64);
        }
        d
    }
}

impl PartialEq for TaggedRelation {
    fn eq(&self, other: &Self) -> bool {
        self.schema.same_as(&other.schema) && self.tuples == other.tuples
    }
}

impl Eq for TaggedRelation {}

impl fmt::Display for TaggedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [tagged]", self.schema)?;
        for (t, tag, c) in self.sorted() {
            writeln!(f, "  {t} [{tag}] x{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_table_matches_paper() {
        use Tag::*;
        // The nine rows of the §5.3 table.
        assert_eq!(Insert.combine(Insert), Some(Insert));
        assert_eq!(Insert.combine(Delete), None);
        assert_eq!(Insert.combine(Old), Some(Insert));
        assert_eq!(Delete.combine(Insert), None);
        assert_eq!(Delete.combine(Delete), Some(Delete));
        assert_eq!(Delete.combine(Old), Some(Delete));
        assert_eq!(Old.combine(Insert), Some(Insert));
        assert_eq!(Old.combine(Delete), Some(Delete));
        assert_eq!(Old.combine(Old), Some(Old));
    }

    #[test]
    fn combine_is_symmetric() {
        use Tag::*;
        for a in [Old, Insert, Delete] {
            for b in [Old, Insert, Delete] {
                assert_eq!(a.combine(b), b.combine(a));
            }
        }
    }

    #[test]
    fn unary_preserves_tag() {
        for t in [Tag::Old, Tag::Insert, Tag::Delete] {
            assert_eq!(t.through_unary(), t);
        }
    }

    #[test]
    fn signs() {
        assert_eq!(Tag::Old.sign(), 0);
        assert_eq!(Tag::Insert.sign(), 1);
        assert_eq!(Tag::Delete.sign(), -1);
    }

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    #[test]
    fn from_changes_tags_correctly() {
        let ins = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let del = Relation::from_rows(ab(), [[3, 4]]).unwrap();
        let tr = TaggedRelation::from_changes(&ins, &del).unwrap();
        assert_eq!(tr.count(&Tuple::from([1, 2]), Tag::Insert), 1);
        assert_eq!(tr.count(&Tuple::from([3, 4]), Tag::Delete), 1);
        assert_eq!(tr.count(&Tuple::from([1, 2]), Tag::Old), 0);
    }

    #[test]
    fn to_delta_signs_by_tag() {
        let mut tr = TaggedRelation::empty(ab());
        tr.add(Tuple::from([1, 1]), Tag::Insert, 2);
        tr.add(Tuple::from([2, 2]), Tag::Delete, 1);
        tr.add(Tuple::from([3, 3]), Tag::Old, 5);
        let d = tr.to_delta();
        assert_eq!(d.count(&Tuple::from([1, 1])), 2);
        assert_eq!(d.count(&Tuple::from([2, 2])), -1);
        assert_eq!(d.count(&Tuple::from([3, 3])), 0);
    }

    #[test]
    fn same_tuple_different_tags_coexist() {
        let mut tr = TaggedRelation::empty(ab());
        tr.add(Tuple::from([1, 1]), Tag::Insert, 1);
        tr.add(Tuple::from([1, 1]), Tag::Delete, 1);
        assert_eq!(tr.len(), 2);
        // Net delta cancels.
        assert!(tr.to_delta().is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TaggedRelation::empty(ab());
        a.add(Tuple::from([1, 1]), Tag::Insert, 1);
        let mut b = TaggedRelation::empty(ab());
        b.add(Tuple::from([1, 1]), Tag::Insert, 2);
        a.merge(&b).unwrap();
        assert_eq!(a.count(&Tuple::from([1, 1]), Tag::Insert), 3);
    }
}
