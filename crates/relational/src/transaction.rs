//! Transactions (§3).
//!
//! A transaction is an indivisible sequence of insert/delete operations
//! against base relations, possibly touching several relations. Its *net
//! effect* on a relation `r` is a pair of disjoint sets `i_r`, `d_r` with
//! `τ(r) = r ∪ i_r − d_r` and `r`, `i_r`, `d_r` mutually disjoint. The
//! paper stresses that only net changes are represented: "if a tuple not in
//! the relation is inserted and then deleted within a transaction, it is
//! not represented at all in this set of changes" — the builder below
//! cancels such pairs as operations are recorded.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::delta::DeltaRelation;
use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Net per-tuple state while recording a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Net {
    Inserted,
    Deleted,
}

/// A transaction under construction / ready to apply: per-relation net
/// insert and delete sets.
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    // BTreeMap so touched-relation order is deterministic.
    changes: BTreeMap<String, HashMap<Tuple, Net>>,
}

impl Transaction {
    /// An empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Record `insert(R, t)`. Cancels a pending delete of the same tuple;
    /// errors on a duplicate pending insert.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: impl Into<Tuple>) -> Result<()> {
        let relation = relation.into();
        let tuple = tuple.into();
        let entry = self.changes.entry(relation.clone()).or_default();
        match entry.get(&tuple) {
            None => {
                entry.insert(tuple, Net::Inserted);
                Ok(())
            }
            Some(Net::Deleted) => {
                // delete(t) then insert(t): net no-op on a tuple of r.
                entry.remove(&tuple);
                Ok(())
            }
            Some(Net::Inserted) => Err(RelError::InsertExists(format!(
                "{tuple} inserted twice into {relation} in one transaction"
            ))),
        }
    }

    /// Record `delete(R, t)`. Cancels a pending insert of the same tuple;
    /// errors on a duplicate pending delete.
    pub fn delete(&mut self, relation: impl Into<String>, tuple: impl Into<Tuple>) -> Result<()> {
        let relation = relation.into();
        let tuple = tuple.into();
        let entry = self.changes.entry(relation.clone()).or_default();
        match entry.get(&tuple) {
            None => {
                entry.insert(tuple, Net::Deleted);
                Ok(())
            }
            Some(Net::Inserted) => {
                // insert(t) then delete(t): "not represented at all" (§3).
                entry.remove(&tuple);
                Ok(())
            }
            Some(Net::Deleted) => Err(RelError::DeleteMissing(format!(
                "{tuple} deleted twice from {relation} in one transaction"
            ))),
        }
    }

    /// Convenience: record many inserts.
    pub fn insert_all<T: Into<Tuple>>(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = T>,
    ) -> Result<()> {
        for t in tuples {
            self.insert(relation, t)?;
        }
        Ok(())
    }

    /// Convenience: record many deletes.
    pub fn delete_all<T: Into<Tuple>>(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = T>,
    ) -> Result<()> {
        for t in tuples {
            self.delete(relation, t)?;
        }
        Ok(())
    }

    /// True when the transaction has no net effect at all.
    pub fn is_empty(&self) -> bool {
        self.changes.values().all(HashMap::is_empty)
    }

    /// Names of relations with a non-empty net change, in sorted order.
    pub fn touched(&self) -> Vec<&str> {
        self.changes
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Net inserted tuples for a relation (`i_r`).
    pub fn inserted(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.changes
            .get(relation)
            .into_iter()
            .flat_map(|m| m.iter())
            .filter(|(_, n)| **n == Net::Inserted)
            .map(|(t, _)| t)
    }

    /// Net deleted tuples for a relation (`d_r`).
    pub fn deleted(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.changes
            .get(relation)
            .into_iter()
            .flat_map(|m| m.iter())
            .filter(|(_, n)| **n == Net::Deleted)
            .map(|(t, _)| t)
    }

    /// `i_r` as a counted relation under the given scheme.
    pub fn insert_set(&self, relation: &str, schema: &Schema) -> Result<Relation> {
        let mut rel = Relation::empty(schema.clone());
        for t in self.inserted(relation) {
            rel.insert(t.clone(), 1)?;
        }
        Ok(rel)
    }

    /// `d_r` as a counted relation under the given scheme.
    pub fn delete_set(&self, relation: &str, schema: &Schema) -> Result<Relation> {
        let mut rel = Relation::empty(schema.clone());
        for t in self.deleted(relation) {
            rel.insert(t.clone(), 1)?;
        }
        Ok(rel)
    }

    /// The net change as a signed delta (`+1` per insert, `−1` per delete).
    pub fn delta(&self, relation: &str, schema: &Schema) -> Result<DeltaRelation> {
        let mut d = DeltaRelation::empty(schema.clone());
        for t in self.inserted(relation) {
            t.check_arity(schema)?;
            d.add(t.clone(), 1);
        }
        for t in self.deleted(relation) {
            t.check_arity(schema)?;
            d.add(t.clone(), -1);
        }
        Ok(d)
    }

    /// Total number of net tuple changes across all relations.
    pub fn size(&self) -> usize {
        self.changes.values().map(HashMap::len).sum()
    }
}

/// Equality on *net effect*: relations whose changes cancelled out inside
/// one transaction (insert then delete of the same tuple) leave an empty
/// per-relation entry behind, which must not distinguish two transactions.
impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        fn nonempty(t: &Transaction) -> Vec<(&String, &HashMap<Tuple, Net>)> {
            t.changes.iter().filter(|(_, m)| !m.is_empty()).collect()
        }
        nonempty(self) == nonempty(other)
    }
}

impl Eq for Transaction {}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "transaction [{} net changes]", self.size())?;
        for (rel, m) in &self.changes {
            let mut entries: Vec<(&Tuple, Net)> = m.iter().map(|(t, &n)| (t, n)).collect();
            entries.sort();
            for (t, n) in entries {
                match n {
                    Net::Inserted => writeln!(f, "  insert({rel}, {t})")?,
                    Net::Deleted => writeln!(f, "  delete({rel}, {t})")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut t = Transaction::new();
        t.insert("R", [1, 2]).unwrap();
        t.delete("R", [1, 2]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.touched(), Vec::<&str>::new());
    }

    #[test]
    fn delete_then_insert_cancels() {
        let mut t = Transaction::new();
        t.delete("R", [1, 2]).unwrap();
        t.insert("R", [1, 2]).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_ops_error() {
        let mut t = Transaction::new();
        t.insert("R", [1, 2]).unwrap();
        assert!(t.insert("R", [1, 2]).is_err());
        let mut t = Transaction::new();
        t.delete("R", [1, 2]).unwrap();
        assert!(t.delete("R", [1, 2]).is_err());
    }

    #[test]
    fn net_sets_partition() {
        let mut t = Transaction::new();
        t.insert("R", [1, 1]).unwrap();
        t.delete("R", [2, 2]).unwrap();
        t.insert("S", [3, 3]).unwrap();
        assert_eq!(t.touched(), vec!["R", "S"]);
        let i: Vec<&Tuple> = t.inserted("R").collect();
        assert_eq!(i, vec![&Tuple::from([1, 1])]);
        let d: Vec<&Tuple> = t.deleted("R").collect();
        assert_eq!(d, vec![&Tuple::from([2, 2])]);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn delta_signs() {
        let mut t = Transaction::new();
        t.insert("R", [1, 1]).unwrap();
        t.delete("R", [2, 2]).unwrap();
        let d = t.delta("R", &ab()).unwrap();
        assert_eq!(d.count(&Tuple::from([1, 1])), 1);
        assert_eq!(d.count(&Tuple::from([2, 2])), -1);
    }

    #[test]
    fn sets_as_relations() {
        let mut t = Transaction::new();
        t.insert_all("R", [[1, 1], [2, 2]]).unwrap();
        t.delete("R", [3, 3]).unwrap();
        let i = t.insert_set("R", &ab()).unwrap();
        assert_eq!(i.total_count(), 2);
        let d = t.delete_set("R", &ab()).unwrap();
        assert_eq!(d.total_count(), 1);
    }

    #[test]
    fn untouched_relation_has_empty_sets() {
        let t = Transaction::new();
        assert_eq!(t.inserted("R").count(), 0);
        assert!(t.delta("R", &ab()).unwrap().is_empty());
    }
}
