//! SPJ expressions.
//!
//! The paper considers views defined by *SPJ expressions* — combinations of
//! selections, projections and joins (§3) — and its algorithms work on the
//! normal form `π_X(σ_C(R₁ ⋈ R₂ ⋈ … ⋈ R_p))` (§4 uses × of
//! disjoint-scheme relations, §5.3 uses ⋈; with nominal attribute identity
//! ⋈ degenerates to × exactly when the schemes are disjoint, so
//! [`SpjExpr`] covers both).
//!
//! A general expression tree [`Expr`] is also provided for ad-hoc queries
//! and for the full re-evaluation baseline; [`Expr::normalize`] rewrites a
//! pure select/project/join tree into an [`SpjExpr`] by pulling selections
//! up and composing projections (the identities σ and π commute with ⋈
//! when attribute names are nominal and projections keep the needed
//! attributes — we only normalize trees where that is legal, and return
//! `None` otherwise).

use std::collections::BTreeSet;
use std::fmt;

use crate::algebra;
use crate::attribute::AttrName;
use crate::database::Database;
use crate::delta::DeltaRelation;
use crate::error::{RelError, Result};
use crate::predicate::Condition;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tagged::TaggedRelation;

/// A view definition in the paper's normal form
/// `π_X(σ_C(R₁ ⋈ … ⋈ R_p))`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpjExpr {
    /// Names of the base relations `R₁ … R_p`, in join order.
    pub relations: Vec<String>,
    /// The selection condition `C(Y)` in DNF.
    pub condition: Condition,
    /// The projection list `X`; `None` projects every attribute.
    pub projection: Option<Vec<AttrName>>,
}

impl SpjExpr {
    /// Build an SPJ expression.
    pub fn new<R: Into<String>>(
        relations: impl IntoIterator<Item = R>,
        condition: Condition,
        projection: Option<Vec<AttrName>>,
    ) -> Self {
        SpjExpr {
            relations: relations.into_iter().map(Into::into).collect(),
            condition,
            projection,
        }
    }

    /// Number of operand relations (`p`).
    pub fn arity(&self) -> usize {
        self.relations.len()
    }

    /// Position of a base relation in the operand list.
    pub fn position_of(&self, relation: &str) -> Option<usize> {
        self.relations.iter().position(|r| r == relation)
    }

    /// Scheme of the join `R₁ ⋈ … ⋈ R_p` before projection.
    pub fn join_schema(&self, db: &Database) -> Result<Schema> {
        let mut schemas = Vec::with_capacity(self.relations.len());
        for name in &self.relations {
            schemas.push(db.relation(name)?.schema().clone());
        }
        let refs: Vec<&Schema> = schemas.iter().collect();
        self.join_schema_with(&refs)
    }

    /// [`SpjExpr::join_schema`] over explicit positional operand schemes —
    /// the operands need not live in a [`Database`] (view-over-view
    /// operands resolve to other views' output schemes).
    pub fn join_schema_with(&self, schemas: &[&Schema]) -> Result<Schema> {
        assert_eq!(
            schemas.len(),
            self.relations.len(),
            "operand count mismatch"
        );
        let mut schema: Option<Schema> = None;
        for s in schemas {
            schema = Some(match schema {
                None => (*s).clone(),
                Some(acc) => acc.join(s),
            });
        }
        schema.ok_or_else(|| RelError::UnknownRelation("<empty SPJ expression>".into()))
    }

    /// Scheme of the view this expression defines.
    pub fn output_schema(&self, db: &Database) -> Result<Schema> {
        let joined = self.join_schema(db)?;
        self.project_schema(joined)
    }

    /// [`SpjExpr::output_schema`] over explicit positional operand schemes.
    pub fn output_schema_with(&self, schemas: &[&Schema]) -> Result<Schema> {
        let joined = self.join_schema_with(schemas)?;
        self.project_schema(joined)
    }

    fn project_schema(&self, joined: Schema) -> Result<Schema> {
        match &self.projection {
            None => Ok(joined),
            Some(attrs) => joined.project(attrs.iter()),
        }
    }

    /// Check the expression is well formed against a database: relations
    /// exist, condition variables and projection attributes are in the
    /// joined scheme.
    pub fn validate(&self, db: &Database) -> Result<()> {
        let joined = self.join_schema(db)?;
        self.validate_against(&joined)
    }

    /// [`SpjExpr::validate`] over explicit positional operand schemes:
    /// condition variables and projection attributes must resolve in the
    /// joined scheme.
    pub fn validate_with(&self, schemas: &[&Schema]) -> Result<()> {
        let joined = self.join_schema_with(schemas)?;
        self.validate_against(&joined)
    }

    fn validate_against(&self, joined: &Schema) -> Result<()> {
        for v in self.condition.vars() {
            joined.require(&v)?;
        }
        if let Some(attrs) = &self.projection {
            for a in attrs {
                joined.require(a)?;
            }
        }
        Ok(())
    }

    /// The expression's *core*: the same operands and selection with the
    /// projection dropped — `σ_C(R₁ ⋈ … ⋈ R_p)`. Two views whose cores
    /// coincide differ only by their final projections, so one maintained
    /// core can feed both (common-subexpression sharing).
    pub fn core(&self) -> SpjExpr {
        SpjExpr {
            relations: self.relations.clone(),
            condition: self.condition.clone(),
            projection: None,
        }
    }

    /// A syntactic identity key for the expression's core: equal keys ⟺
    /// same operand list (same order — join order fixes the output column
    /// order) and the same selection condition. Used by the view manager
    /// to detect shareable common subexpressions; deliberately *syntactic*
    /// (no condition equivalence reasoning), so detection is predictable
    /// and survives recovery replay byte-for-byte.
    pub fn core_key(&self) -> String {
        format!("{}|{}", self.relations.join(","), self.condition)
    }

    /// Full evaluation against the database (the paper's "complete
    /// re-evaluation" baseline).
    pub fn eval(&self, db: &Database) -> Result<Relation> {
        let inputs: Vec<&Relation> = self
            .relations
            .iter()
            .map(|n| db.relation(n))
            .collect::<Result<_>>()?;
        self.eval_with(&inputs)
    }

    /// Evaluate with explicit positional operands (used by the differential
    /// engines, which substitute change sets for some operands).
    pub fn eval_with(&self, inputs: &[&Relation]) -> Result<Relation> {
        assert_eq!(inputs.len(), self.relations.len(), "operand count mismatch");
        let mut iter = inputs.iter();
        let first = *iter
            .next()
            .ok_or_else(|| RelError::UnknownRelation("<empty SPJ expression>".into()))?;
        let mut acc = first.clone();
        for rel in iter {
            acc = algebra::natural_join(&acc, rel)?;
        }
        let selected = algebra::select(&acc, &self.condition)?;
        match &self.projection {
            None => Ok(selected),
            Some(attrs) => algebra::project(&selected, attrs),
        }
    }

    /// Evaluate with tagged operands — the §5.3/§5.4 pipeline: tagged
    /// joins (tag-combination table), then σ and π which preserve tags.
    pub fn eval_with_tagged(&self, inputs: &[&TaggedRelation]) -> Result<TaggedRelation> {
        assert_eq!(inputs.len(), self.relations.len(), "operand count mismatch");
        let mut iter = inputs.iter();
        let first = *iter
            .next()
            .ok_or_else(|| RelError::UnknownRelation("<empty SPJ expression>".into()))?;
        let mut acc = first.clone();
        for rel in iter {
            acc = algebra::natural_join_tagged(&acc, rel)?;
        }
        let selected = algebra::select_tagged(&acc, &self.condition)?;
        match &self.projection {
            None => Ok(selected),
            Some(attrs) => algebra::project_tagged(&selected, attrs),
        }
    }

    /// Evaluate with signed-delta operands (bilinear join; used by the
    /// signed-count engine's inclusion–exclusion rows).
    pub fn eval_with_delta(&self, inputs: &[&DeltaRelation]) -> Result<DeltaRelation> {
        assert_eq!(inputs.len(), self.relations.len(), "operand count mismatch");
        let mut iter = inputs.iter();
        let first = *iter
            .next()
            .ok_or_else(|| RelError::UnknownRelation("<empty SPJ expression>".into()))?;
        let mut acc = first.clone();
        for rel in iter {
            acc = algebra::natural_join_delta(&acc, rel)?;
        }
        let selected = algebra::select_delta(&acc, &self.condition)?;
        match &self.projection {
            None => Ok(selected),
            Some(attrs) => algebra::project_delta(&selected, attrs),
        }
    }
}

impl fmt::Display for SpjExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(attrs) = &self.projection {
            write!(f, "π[")?;
            for (i, a) in attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "](")?;
        }
        write!(f, "σ[{}](", self.condition)?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")?;
        if self.projection.is_some() {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A general relational-algebra expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named base relation.
    Base(String),
    /// σ_C(input)
    Select {
        /// Operand.
        input: Box<Expr>,
        /// Selection condition.
        cond: Condition,
    },
    /// π_X(input)
    Project {
        /// Operand.
        input: Box<Expr>,
        /// Projection attributes.
        attrs: Vec<AttrName>,
    },
    /// Natural join of two subexpressions.
    Join(Box<Expr>, Box<Expr>),
    /// Union (schemes must match).
    Union(Box<Expr>, Box<Expr>),
    /// Difference (schemes must match; counters subtract).
    Difference(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A base-relation leaf.
    pub fn base(name: impl Into<String>) -> Expr {
        Expr::Base(name.into())
    }

    /// Wrap in a selection.
    pub fn select(self, cond: impl Into<Condition>) -> Expr {
        Expr::Select {
            input: Box::new(self),
            cond: cond.into(),
        }
    }

    /// Wrap in a projection.
    pub fn project<A: Into<AttrName>>(self, attrs: impl IntoIterator<Item = A>) -> Expr {
        Expr::Project {
            input: Box::new(self),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Natural join with another expression.
    pub fn join(self, other: Expr) -> Expr {
        Expr::Join(Box::new(self), Box::new(other))
    }

    /// Union with another expression.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// Difference with another expression.
    pub fn difference(self, other: Expr) -> Expr {
        Expr::Difference(Box::new(self), Box::new(other))
    }

    /// Names of the base relations mentioned, in first-occurrence order.
    pub fn base_relations(&self) -> Vec<String> {
        fn walk(e: &Expr, seen: &mut BTreeSet<String>, out: &mut Vec<String>) {
            match e {
                Expr::Base(n) => {
                    if seen.insert(n.clone()) {
                        out.push(n.clone());
                    }
                }
                Expr::Select { input, .. } | Expr::Project { input, .. } => walk(input, seen, out),
                Expr::Join(l, r) | Expr::Union(l, r) | Expr::Difference(l, r) => {
                    walk(l, seen, out);
                    walk(r, seen, out);
                }
            }
        }
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        walk(self, &mut seen, &mut out);
        out
    }

    /// Evaluate against a database.
    pub fn eval(&self, db: &Database) -> Result<Relation> {
        match self {
            Expr::Base(n) => Ok(db.relation(n)?.clone()),
            Expr::Select { input, cond } => algebra::select(&input.eval(db)?, cond),
            Expr::Project { input, attrs } => algebra::project(&input.eval(db)?, attrs),
            Expr::Join(l, r) => algebra::natural_join(&l.eval(db)?, &r.eval(db)?),
            Expr::Union(l, r) => algebra::union(&l.eval(db)?, &r.eval(db)?),
            Expr::Difference(l, r) => algebra::difference(&l.eval(db)?, &r.eval(db)?),
        }
    }

    /// Rewrite a pure select/project/join tree into SPJ normal form.
    ///
    /// Selections are conjoined; only an outermost projection is kept (the
    /// paper's normal form allows a single π). Returns `None` when the tree
    /// contains ∪/−, an inner projection (which would change join
    /// semantics), or no base relation.
    pub fn normalize(&self) -> Option<SpjExpr> {
        fn collect(e: &Expr, rels: &mut Vec<String>, cond: &mut Condition) -> bool {
            match e {
                Expr::Base(n) => {
                    rels.push(n.clone());
                    true
                }
                Expr::Select { input, cond: c } => {
                    if !collect(input, rels, cond) {
                        return false;
                    }
                    *cond = cond.and(c);
                    true
                }
                Expr::Join(l, r) => collect(l, rels, cond) && collect(r, rels, cond),
                Expr::Project { .. } | Expr::Union(..) | Expr::Difference(..) => false,
            }
        }

        let (inner, projection) = match self {
            Expr::Project { input, attrs } => (input.as_ref(), Some(attrs.clone())),
            other => (other, None),
        };
        let mut rels = Vec::new();
        let mut cond = Condition::always_true();
        if !collect(inner, &mut rels, &mut cond) || rels.is_empty() {
            return None;
        }
        Some(SpjExpr {
            relations: rels,
            condition: cond,
            projection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Atom;
    use crate::tuple::Tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
        db.create("S", Schema::new(["B", "C"]).unwrap()).unwrap();
        db.load("R", [[1, 10], [2, 20], [11, 10]]).unwrap();
        db.load("S", [[10, 6], [20, 3]]).unwrap();
        db
    }

    fn spj() -> SpjExpr {
        // π_{A,C}( σ_{A<10}( R ⋈ S ) )
        SpjExpr::new(
            ["R", "S"],
            Atom::lt_const("A", 10).into(),
            Some(vec!["A".into(), "C".into()]),
        )
    }

    #[test]
    fn spj_eval_joins_selects_projects() {
        let v = spj().eval(&db()).unwrap();
        assert!(v.contains(&Tuple::from([1, 6])));
        assert!(v.contains(&Tuple::from([2, 3])));
        assert!(!v.contains(&Tuple::from([11, 6])), "A<10 filtered");
        assert_eq!(v.total_count(), 2);
    }

    #[test]
    fn spj_schema_and_validation() {
        let d = db();
        let e = spj();
        assert_eq!(
            e.output_schema(&d).unwrap(),
            Schema::new(["A", "C"]).unwrap()
        );
        e.validate(&d).unwrap();
        let bad = SpjExpr::new(["R", "S"], Atom::lt_const("Z", 1).into(), None);
        assert!(bad.validate(&d).is_err());
    }

    #[test]
    fn spj_display() {
        let s = spj().to_string();
        assert!(s.contains("π[A, C]"), "{s}");
        assert!(s.contains("R ⋈ S"), "{s}");
    }

    #[test]
    fn expr_tree_eval_matches_spj() {
        let d = db();
        let tree = Expr::base("R")
            .join(Expr::base("S"))
            .select(Atom::lt_const("A", 10))
            .project(["A", "C"]);
        assert_eq!(tree.eval(&d).unwrap(), spj().eval(&d).unwrap());
    }

    #[test]
    fn normalize_pure_spj_tree() {
        let tree = Expr::base("R")
            .select(Atom::gt_const("B", 0))
            .join(Expr::base("S"))
            .select(Atom::lt_const("A", 10))
            .project(["A", "C"]);
        let n = tree.normalize().unwrap();
        assert_eq!(n.relations, vec!["R".to_string(), "S".to_string()]);
        assert_eq!(n.projection, Some(vec!["A".into(), "C".into()]));
        // Both selections got conjoined.
        assert_eq!(n.condition.disjuncts.len(), 1);
        assert_eq!(n.condition.disjuncts[0].atoms.len(), 2);
        // And the normalized form evaluates identically.
        let d = db();
        assert_eq!(n.eval(&d).unwrap(), tree.eval(&d).unwrap());
    }

    #[test]
    fn normalize_rejects_union_and_inner_projection() {
        assert!(Expr::base("R").union(Expr::base("R")).normalize().is_none());
        let inner_proj = Expr::base("R").project(["A"]).join(Expr::base("S"));
        assert!(inner_proj.normalize().is_none());
    }

    #[test]
    fn base_relations_dedup_in_order() {
        let tree = Expr::base("S").join(Expr::base("R")).join(Expr::base("S"));
        assert_eq!(
            tree.base_relations(),
            vec!["S".to_string(), "R".to_string()]
        );
    }

    #[test]
    fn union_difference_eval() {
        let mut d = Database::new();
        d.create("X", Schema::new(["A"]).unwrap()).unwrap();
        d.create("Y", Schema::new(["A"]).unwrap()).unwrap();
        d.load("X", [[1], [2]]).unwrap();
        d.load("Y", [[2]]).unwrap();
        let u = Expr::base("X").union(Expr::base("Y")).eval(&d).unwrap();
        assert_eq!(u.count(&Tuple::from([2])), 2);
        let m = Expr::base("X")
            .difference(Expr::base("Y"))
            .eval(&d)
            .unwrap();
        assert_eq!(m.count(&Tuple::from([2])), 0);
        assert_eq!(m.count(&Tuple::from([1])), 1);
    }
}
