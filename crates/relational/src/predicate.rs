//! Selection conditions.
//!
//! §4 of the paper works with the Rosenkrantz–Hunt class: conjunctions of
//! atomic formulae of the form `x op y`, `x op c` and `x op y + c`, where
//! `x`, `y` are variables (attributes) over discrete infinite integer
//! domains, `c` is a constant and `op ∈ {=, <, >, ≤, ≥}` (`≠` is excluded —
//! that exclusion is what makes satisfiability polynomial). Disjunctions of
//! such conjunctions (`C₁ ∨ … ∨ C_m`) are also supported (end of §4).
//!
//! This module defines the AST for those conditions and their evaluation
//! against tuples. Satisfiability lives in the `ivm-satisfiability` crate;
//! the translation from these atoms into constraint-graph formulae is done
//! by `ivm::relevance`.

use std::collections::BTreeSet;
use std::fmt;

use crate::attribute::AttrName;
use crate::error::{RelError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operator of an atomic formula. `≠` is deliberately absent
/// (§4: "the improved efficiency arises from not allowing the operator ≠").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `≤`
    Le,
    /// `≥`
    Ge,
}

impl CompOp {
    /// Apply the comparison to two integers.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CompOp::Eq => l == r,
            CompOp::Lt => l < r,
            CompOp::Gt => l > r,
            CompOp::Le => l <= r,
            CompOp::Ge => l >= r,
        }
    }

    /// The operator with its operands swapped (`x < y` ⟺ `y > x`).
    pub fn flipped(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Lt => CompOp::Gt,
            CompOp::Gt => CompOp::Lt,
            CompOp::Le => CompOp::Ge,
            CompOp::Ge => CompOp::Le,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Eq => "=",
            CompOp::Lt => "<",
            CompOp::Gt => ">",
            CompOp::Le => "<=",
            CompOp::Ge => ">=",
        })
    }
}

/// Right-hand side of an atomic formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rhs {
    /// A constant: the atom is `x op c`.
    Const(i64),
    /// A variable plus offset: the atom is `x op y + c` (`c` may be 0,
    /// giving the plain `x op y`).
    AttrPlus(AttrName, i64),
}

impl fmt::Display for Rhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rhs::Const(c) => write!(f, "{c}"),
            Rhs::AttrPlus(a, 0) => write!(f, "{a}"),
            Rhs::AttrPlus(a, c) if *c > 0 => write!(f, "{a}+{c}"),
            Rhs::AttrPlus(a, c) => write!(f, "{a}{c}"),
        }
    }
}

/// An atomic formula `left op rhs` in the Rosenkrantz–Hunt class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left variable.
    pub left: AttrName,
    /// Comparison operator.
    pub op: CompOp,
    /// Right-hand side.
    pub rhs: Rhs,
}

impl Atom {
    /// `x op c`
    pub fn cmp_const(left: impl Into<AttrName>, op: CompOp, c: i64) -> Atom {
        Atom {
            left: left.into(),
            op,
            rhs: Rhs::Const(c),
        }
    }

    /// `x op y + c`
    pub fn cmp_attr(
        left: impl Into<AttrName>,
        op: CompOp,
        right: impl Into<AttrName>,
        c: i64,
    ) -> Atom {
        Atom {
            left: left.into(),
            op,
            rhs: Rhs::AttrPlus(right.into(), c),
        }
    }

    /// `x = c`
    pub fn eq_const(left: impl Into<AttrName>, c: i64) -> Atom {
        Atom::cmp_const(left, CompOp::Eq, c)
    }

    /// `x < c`
    pub fn lt_const(left: impl Into<AttrName>, c: i64) -> Atom {
        Atom::cmp_const(left, CompOp::Lt, c)
    }

    /// `x > c`
    pub fn gt_const(left: impl Into<AttrName>, c: i64) -> Atom {
        Atom::cmp_const(left, CompOp::Gt, c)
    }

    /// `x ≤ c`
    pub fn le_const(left: impl Into<AttrName>, c: i64) -> Atom {
        Atom::cmp_const(left, CompOp::Le, c)
    }

    /// `x ≥ c`
    pub fn ge_const(left: impl Into<AttrName>, c: i64) -> Atom {
        Atom::cmp_const(left, CompOp::Ge, c)
    }

    /// `x = y`
    pub fn eq_attr(left: impl Into<AttrName>, right: impl Into<AttrName>) -> Atom {
        Atom::cmp_attr(left, CompOp::Eq, right, 0)
    }

    /// The variables mentioned by this atom.
    pub fn vars(&self) -> impl Iterator<Item = &AttrName> {
        let second = match &self.rhs {
            Rhs::AttrPlus(a, _) => Some(a),
            Rhs::Const(_) => None,
        };
        std::iter::once(&self.left).chain(second)
    }

    fn int_of(value: &Value, attr: &AttrName) -> Result<i64> {
        value.as_int().ok_or_else(|| {
            RelError::TypeError(format!(
                "attribute {attr} holds non-integer value {value}; selection conditions \
                 are defined over integer domains (§3)"
            ))
        })
    }

    /// Evaluate against a tuple under a scheme. Every variable the atom
    /// mentions must be an integer attribute of the scheme.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        let l = Self::int_of(tuple.get(schema, &self.left)?, &self.left)?;
        let r = match &self.rhs {
            Rhs::Const(c) => *c,
            Rhs::AttrPlus(a, c) => Self::int_of(tuple.get(schema, a)?, a)?.saturating_add(*c),
        };
        Ok(self.op.eval(l, r))
    }

    /// Rename the variables through `f` (used when renaming apart natural
    /// joins).
    pub fn rename(&self, f: &impl Fn(&AttrName) -> AttrName) -> Atom {
        Atom {
            left: f(&self.left),
            op: self.op,
            rhs: match &self.rhs {
                Rhs::Const(c) => Rhs::Const(*c),
                Rhs::AttrPlus(a, c) => Rhs::AttrPlus(f(a), *c),
            },
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.rhs)
    }
}

/// A conjunction `f₁ ∧ … ∧ f_n` of atomic formulae. The empty conjunction
/// is `true`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Conjunction {
    /// The conjoined atoms.
    pub atoms: Vec<Atom>,
}

impl Conjunction {
    /// Build from atoms.
    pub fn new(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Conjunction {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// The always-true conjunction.
    pub fn always_true() -> Self {
        Conjunction::default()
    }

    /// The set of variables mentioned (the paper's `α(C)`).
    pub fn vars(&self) -> BTreeSet<AttrName> {
        self.atoms.iter().flat_map(Atom::vars).cloned().collect()
    }

    /// Evaluate against a tuple (logical AND; empty ⇒ true).
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        for atom in &self.atoms {
            if !atom.eval(schema, tuple)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Rename all variables through `f`.
    pub fn rename(&self, f: &impl Fn(&AttrName) -> AttrName) -> Conjunction {
        Conjunction::new(self.atoms.iter().map(|a| a.rename(f)))
    }

    /// Conjunction of this and another conjunction.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        Conjunction::new(self.atoms.iter().chain(&other.atoms).cloned())
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "({a})")?;
        }
        Ok(())
    }
}

impl From<Atom> for Conjunction {
    fn from(a: Atom) -> Self {
        Conjunction::new([a])
    }
}

/// A selection condition in disjunctive normal form,
/// `C = C₁ ∨ C₂ ∨ … ∨ C_m` (§4). The empty disjunction is `false`; use
/// [`Condition::always_true`] for the trivial condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// The disjuncts.
    pub disjuncts: Vec<Conjunction>,
}

impl Condition {
    /// A single-conjunction condition.
    pub fn conjunction(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Condition {
            disjuncts: vec![Conjunction::new(atoms)],
        }
    }

    /// A DNF condition from disjuncts.
    pub fn dnf(disjuncts: impl IntoIterator<Item = Conjunction>) -> Self {
        Condition {
            disjuncts: disjuncts.into_iter().collect(),
        }
    }

    /// The always-true condition (one empty conjunction).
    pub fn always_true() -> Self {
        Condition {
            disjuncts: vec![Conjunction::always_true()],
        }
    }

    /// The always-false condition (no disjuncts).
    pub fn always_false() -> Self {
        Condition { disjuncts: vec![] }
    }

    /// The set of variables mentioned across all disjuncts.
    pub fn vars(&self) -> BTreeSet<AttrName> {
        self.disjuncts.iter().flat_map(Conjunction::vars).collect()
    }

    /// True when the condition is syntactically the constant `true`
    /// (exactly one empty conjunction) — lets evaluators skip per-tuple
    /// work.
    pub fn is_trivially_true(&self) -> bool {
        self.disjuncts.len() == 1 && self.disjuncts[0].atoms.is_empty()
    }

    /// Evaluate against a tuple (logical OR of disjuncts).
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        for c in &self.disjuncts {
            if c.eval(schema, tuple)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Rename all variables through `f`.
    pub fn rename(&self, f: &impl Fn(&AttrName) -> AttrName) -> Condition {
        Condition {
            disjuncts: self.disjuncts.iter().map(|c| c.rename(f)).collect(),
        }
    }

    /// Conjoin with another condition, distributing over the disjuncts
    /// (stays in DNF).
    pub fn and(&self, other: &Condition) -> Condition {
        let mut out = Vec::with_capacity(self.disjuncts.len() * other.disjuncts.len());
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                out.push(a.and(b));
            }
        }
        Condition { disjuncts: out }
    }

    /// Disjoin with another condition.
    pub fn or(&self, other: &Condition) -> Condition {
        Condition {
            disjuncts: self
                .disjuncts
                .iter()
                .chain(&other.disjuncts)
                .cloned()
                .collect(),
        }
    }
}

impl From<Atom> for Condition {
    fn from(a: Atom) -> Self {
        Condition::conjunction([a])
    }
}

impl From<Conjunction> for Condition {
    fn from(c: Conjunction) -> Self {
        Condition { disjuncts: vec![c] }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return f.write_str("false");
        }
        for (i, c) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" OR ")?;
            }
            if self.disjuncts.len() > 1 {
                write!(f, "[{c}]")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"]).unwrap()
    }

    /// The condition from Example 4.1: (A < 10) ∧ (C > 5) ∧ (B = C).
    fn example_41() -> Conjunction {
        Conjunction::new([
            Atom::lt_const("A", 10),
            Atom::gt_const("C", 5),
            Atom::eq_attr("B", "C"),
        ])
    }

    #[test]
    fn comp_op_eval() {
        assert!(CompOp::Eq.eval(3, 3));
        assert!(CompOp::Lt.eval(2, 3));
        assert!(CompOp::Gt.eval(4, 3));
        assert!(CompOp::Le.eval(3, 3));
        assert!(CompOp::Ge.eval(3, 3));
        assert!(!CompOp::Lt.eval(3, 3));
    }

    #[test]
    fn comp_op_flip() {
        assert_eq!(CompOp::Lt.flipped(), CompOp::Gt);
        assert_eq!(CompOp::Le.flipped(), CompOp::Ge);
        assert_eq!(CompOp::Eq.flipped(), CompOp::Eq);
        // x < y ⟺ y > x for all small pairs
        for l in -3..3 {
            for r in -3..3 {
                for op in [CompOp::Eq, CompOp::Lt, CompOp::Gt, CompOp::Le, CompOp::Ge] {
                    assert_eq!(op.eval(l, r), op.flipped().eval(r, l));
                }
            }
        }
    }

    #[test]
    fn atom_eval_const_and_attr() {
        let s = schema();
        let t = Tuple::from([9, 10, 10]);
        assert!(Atom::lt_const("A", 10).eval(&s, &t).unwrap());
        assert!(Atom::eq_attr("B", "C").eval(&s, &t).unwrap());
        assert!(Atom::cmp_attr("C", CompOp::Ge, "A", 1)
            .eval(&s, &t)
            .unwrap()); // 10 >= 9+1
        assert!(!Atom::cmp_attr("C", CompOp::Gt, "A", 1)
            .eval(&s, &t)
            .unwrap()); // !(10 > 10)
    }

    #[test]
    fn atom_eval_rejects_strings() {
        let s = Schema::new(["A"]).unwrap();
        let t = Tuple::new(vec![Value::str("x")]);
        assert!(matches!(
            Atom::lt_const("A", 10).eval(&s, &t).unwrap_err(),
            RelError::TypeError(_)
        ));
    }

    #[test]
    fn atom_eval_unknown_attr() {
        let t = Tuple::from([1, 2, 3]);
        assert!(Atom::lt_const("Z", 10).eval(&schema(), &t).is_err());
    }

    #[test]
    fn example_41_condition_evaluation() {
        let s = schema();
        // (9, 10, 10): satisfies all three conjuncts.
        assert!(example_41().eval(&s, &Tuple::from([9, 10, 10])).unwrap());
        // (11, 10, 10): fails A < 10.
        assert!(!example_41().eval(&s, &Tuple::from([11, 10, 10])).unwrap());
        // (9, 10, 4): fails C > 5 (and B = C).
        assert!(!example_41().eval(&s, &Tuple::from([9, 10, 4])).unwrap());
    }

    #[test]
    fn conjunction_vars() {
        let vars = example_41().vars();
        assert_eq!(
            vars.into_iter().collect::<Vec<_>>(),
            vec!["A".into(), "B".into(), "C".into()]
        );
    }

    #[test]
    fn empty_conjunction_is_true() {
        assert!(Conjunction::always_true()
            .eval(&schema(), &Tuple::from([1, 2, 3]))
            .unwrap());
    }

    #[test]
    fn condition_dnf_or_semantics() {
        let c = Condition::dnf([
            Conjunction::new([Atom::lt_const("A", 0)]),
            Conjunction::new([Atom::gt_const("B", 100)]),
        ]);
        let s = schema();
        assert!(c.eval(&s, &Tuple::from([-1, 0, 0])).unwrap());
        assert!(c.eval(&s, &Tuple::from([5, 101, 0])).unwrap());
        assert!(!c.eval(&s, &Tuple::from([5, 5, 0])).unwrap());
    }

    #[test]
    fn trivially_true_detection() {
        assert!(Condition::always_true().is_trivially_true());
        assert!(!Condition::always_false().is_trivially_true());
        assert!(!Condition::from(Atom::lt_const("A", 1)).is_trivially_true());
        let two_empty = Condition::dnf([Conjunction::always_true(), Conjunction::always_true()]);
        assert!(
            !two_empty.is_trivially_true(),
            "only the canonical form counts"
        );
    }

    #[test]
    fn always_false_and_true() {
        let s = schema();
        let t = Tuple::from([1, 2, 3]);
        assert!(!Condition::always_false().eval(&s, &t).unwrap());
        assert!(Condition::always_true().eval(&s, &t).unwrap());
    }

    #[test]
    fn and_distributes_over_dnf() {
        let left = Condition::dnf([
            Conjunction::new([Atom::lt_const("A", 0)]),
            Conjunction::new([Atom::gt_const("A", 10)]),
        ]);
        let right = Condition::from(Atom::eq_attr("B", "C"));
        let both = left.and(&right);
        assert_eq!(both.disjuncts.len(), 2);
        let s = schema();
        assert!(both.eval(&s, &Tuple::from([-1, 7, 7])).unwrap());
        assert!(!both.eval(&s, &Tuple::from([-1, 7, 8])).unwrap());
        assert!(both.eval(&s, &Tuple::from([11, 7, 7])).unwrap());
    }

    #[test]
    fn rename_traverses_atoms() {
        let c = example_41().rename(&|a: &AttrName| a.qualify("R"));
        let vars: Vec<String> = c.vars().iter().map(|v| v.as_str().to_owned()).collect();
        assert_eq!(vars, vec!["R.A", "R.B", "R.C"]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::lt_const("A", 10).to_string(), "A < 10");
        assert_eq!(
            Atom::cmp_attr("A", CompOp::Le, "B", -2).to_string(),
            "A <= B-2"
        );
        assert_eq!(
            Atom::cmp_attr("A", CompOp::Ge, "B", 2).to_string(),
            "A >= B+2"
        );
        assert_eq!(Atom::eq_attr("B", "C").to_string(), "B = C");
        assert_eq!(Conjunction::always_true().to_string(), "true");
        assert_eq!(Condition::always_false().to_string(), "false");
    }
}
