//! Counted multiset relations.
//!
//! §5.2 of the paper extends every relation and view with a hidden
//! multiplicity-counter attribute `N` so that projection distributes over
//! difference. We adopt that counted-multiset semantics pervasively: a
//! [`Relation`] maps each distinct tuple to a strictly positive count. For
//! base relations every count is 1 (the paper: "this attribute need not be
//! explicitly stored since its value in every tuple is always one"); views
//! accumulate genuine counts through the redefined π and ⋈.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

use crate::delta::DeltaRelation;
use crate::error::{RelError, Result};
use crate::index::JoinIndex;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// A relation: a scheme plus a counted multiset of tuples, optionally
/// carrying join-key hash indexes maintained through every mutation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    tuples: HashMap<Tuple, u64>,
    indexes: Vec<JoinIndex>,
}

impl Relation {
    /// An empty relation over a scheme.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: HashMap::new(),
            indexes: Vec::new(),
        }
    }

    /// Build a relation from set-style rows (each with count 1).
    ///
    /// Duplicate rows accumulate counts, matching multiset semantics.
    pub fn from_rows<I, T>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = T>,
        T: Into<Tuple>,
    {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(row.into(), 1)?;
        }
        Ok(rel)
    }

    /// The relation's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of *distinct* tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Sum of multiplicity counters (the multiset cardinality).
    pub fn total_count(&self) -> u64 {
        self.tuples.values().sum()
    }

    /// Multiplicity of a tuple (0 when absent).
    pub fn count(&self, tuple: &Tuple) -> u64 {
        self.tuples.get(tuple).copied().unwrap_or(0)
    }

    /// True when the tuple occurs at least once.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains_key(tuple)
    }

    /// Add `count` occurrences of a tuple (arity-checked). Errors with
    /// [`RelError::CounterOverflow`] if the §5.2 multiplicity counter
    /// would exceed `u64` — wrapping silently would corrupt every
    /// downstream count, so the insert is refused and nothing changes.
    pub fn insert(&mut self, tuple: Tuple, count: u64) -> Result<()> {
        tuple.check_arity(&self.schema)?;
        if count == 0 {
            return Ok(());
        }
        if self.indexes.is_empty() {
            match self.tuples.entry(tuple) {
                Entry::Occupied(mut e) => {
                    let updated = e.get().checked_add(count).ok_or_else(|| {
                        RelError::CounterOverflow(format!(
                            "inserting {count} of tuple {} with count {} exceeds u64",
                            e.key(),
                            e.get()
                        ))
                    })?;
                    *e.get_mut() = updated;
                }
                Entry::Vacant(e) => {
                    e.insert(count);
                }
            }
            return Ok(());
        }
        // Indexed path: verify the counter fits *before* touching any
        // index so a refused insert leaves everything consistent.
        let current = self.tuples.get(&tuple).copied().unwrap_or(0);
        let updated = current.checked_add(count).ok_or_else(|| {
            RelError::CounterOverflow(format!(
                "inserting {count} of tuple {tuple} with count {current} exceeds u64"
            ))
        })?;
        for ix in &mut self.indexes {
            ix.insert(&tuple, count)?;
        }
        self.tuples.insert(tuple, updated);
        Ok(())
    }

    /// Remove `count` occurrences; the tuple disappears when its counter
    /// reaches zero (§5.2 alternative 1). Errors if the counter would go
    /// negative.
    pub fn remove(&mut self, tuple: &Tuple, count: u64) -> Result<()> {
        let Some(current) = self.tuples.get_mut(tuple) else {
            return Err(RelError::NegativeCount(format!(
                "removing {count} of absent tuple {tuple}"
            )));
        };
        if *current < count {
            return Err(RelError::NegativeCount(format!(
                "removing {count} of tuple {tuple} with count {current}"
            )));
        }
        *current -= count;
        if *current == 0 {
            self.tuples.remove(tuple);
        }
        for ix in &mut self.indexes {
            ix.remove(tuple, count)?;
        }
        Ok(())
    }

    /// Iterate over `(tuple, count)` pairs in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.tuples.iter().map(|(t, &c)| (t, c))
    }

    /// `(tuple, count)` pairs sorted by tuple, for deterministic output.
    pub fn sorted(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<(Tuple, u64)> = self.tuples.iter().map(|(t, &c)| (t.clone(), c)).collect();
        v.sort();
        v
    }

    /// Apply a signed delta: positive counts are inserted, negative counts
    /// removed. Errors (leaving the relation partially updated is avoided by
    /// pre-checking) if any counter would go negative.
    pub fn apply_delta(&mut self, delta: &DeltaRelation) -> Result<()> {
        self.schema.require_same(delta.schema())?;
        // Pre-check so a failed apply leaves the relation untouched.
        for (tuple, count) in delta.iter() {
            if count < 0 {
                let need = count.unsigned_abs();
                let have = self.count(tuple);
                if have < need {
                    return Err(RelError::NegativeCount(format!(
                        "delta removes {need} of tuple {tuple} with count {have}"
                    )));
                }
            }
        }
        for (tuple, count) in delta.iter() {
            if count > 0 {
                self.insert(tuple.clone(), count as u64)?;
            } else if count < 0 {
                self.remove(tuple, count.unsigned_abs())?;
            }
        }
        Ok(())
    }

    /// The relation as a signed delta (every tuple positive). Used to seed
    /// inclusion-exclusion pipelines.
    pub fn to_delta(&self) -> DeltaRelation {
        let mut d = DeltaRelation::empty(self.schema.clone());
        for (t, c) in self.iter() {
            d.add(t.clone(), c as i64);
        }
        d
    }

    /// Multiset equality: same scheme, same tuples, same counters.
    /// Indexes are derived state and never participate in equality.
    pub fn same_contents(&self, other: &Relation) -> bool {
        self.schema.same_as(&other.schema) && self.tuples == other.tuples
    }

    /// Create a hash index on the given key column positions, built from
    /// the current contents and maintained through every later mutation.
    /// Returns `false` (without rebuilding) when an index with the same
    /// key already exists. The key is treated as a set: positions are
    /// sorted and deduplicated, and must be non-empty and within the
    /// scheme's arity.
    pub fn create_index(&mut self, positions: &[usize]) -> Result<bool> {
        let mut key: Vec<usize> = positions.to_vec();
        key.sort_unstable();
        key.dedup();
        if key.is_empty() {
            return Err(RelError::InvalidIndexKey(
                "index key must name at least one column".to_owned(),
            ));
        }
        if let Some(&max) = key.last() {
            if max >= self.schema.arity() {
                return Err(RelError::InvalidIndexKey(format!(
                    "position {max} outside scheme {} (arity {})",
                    self.schema,
                    self.schema.arity()
                )));
            }
        }
        if self.indexes.iter().any(|ix| ix.covers(&key)) {
            return Ok(false);
        }
        let mut ix = JoinIndex::new(key);
        for (t, c) in self.tuples.iter() {
            ix.insert(t, *c)?;
        }
        self.indexes.push(ix);
        Ok(true)
    }

    /// The index whose key is exactly `key_positions` (as a set), if one
    /// exists.
    pub fn index_covering(&self, key_positions: &[usize]) -> Option<&JoinIndex> {
        let mut key: Vec<usize> = key_positions.to_vec();
        key.sort_unstable();
        key.dedup();
        self.indexes.iter().find(|ix| ix.covers(&key))
    }

    /// Number of indexes maintained on this relation.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// The maintained indexes (sim-oracle and introspection use).
    pub fn indexes(&self) -> &[JoinIndex] {
        &self.indexes
    }

    /// Estimated resident bytes across all indexes.
    pub fn index_memory_bytes(&self) -> u64 {
        let arity = self.schema.arity();
        self.indexes
            .iter()
            .map(|ix| ix.memory_bytes_estimate(arity))
            .sum()
    }

    /// Check every index against a from-scratch rebuild of the current
    /// contents; returns the first divergence. Used by the sim oracle.
    pub fn verify_indexes(&self) -> std::result::Result<(), String> {
        for ix in &self.indexes {
            ix.verify(self.iter())?;
        }
        Ok(())
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.same_contents(other)
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.total_count())?;
        for (t, c) in self.sorted() {
            if c == 1 {
                writeln!(f, "  {t}")?;
            } else {
                writeln!(f, "  {t} x{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    #[test]
    fn from_rows_accumulates_duplicates() {
        let r = Relation::from_rows(ab(), [[1, 2], [1, 2], [3, 4]]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_count(), 3);
        assert_eq!(r.count(&Tuple::from([1, 2])), 2);
        assert_eq!(r.count(&Tuple::from([3, 4])), 1);
        assert_eq!(r.count(&Tuple::from([9, 9])), 0);
    }

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::empty(ab());
        assert!(r.insert(Tuple::from([1]), 1).is_err());
        assert!(r.insert(Tuple::from([1, 2]), 0).is_ok());
        assert!(r.is_empty(), "count-0 insert is a no-op");
    }

    #[test]
    fn remove_decrements_and_erases_at_zero() {
        let mut r = Relation::from_rows(ab(), [[1, 2], [1, 2]]).unwrap();
        r.remove(&Tuple::from([1, 2]), 1).unwrap();
        assert_eq!(r.count(&Tuple::from([1, 2])), 1);
        r.remove(&Tuple::from([1, 2]), 1).unwrap();
        assert!(!r.contains(&Tuple::from([1, 2])));
        assert!(r.remove(&Tuple::from([1, 2]), 1).is_err());
    }

    #[test]
    fn remove_rejects_negative_counter() {
        let mut r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        assert!(matches!(
            r.remove(&Tuple::from([1, 2]), 2).unwrap_err(),
            RelError::NegativeCount(_)
        ));
    }

    #[test]
    fn apply_delta_roundtrip() {
        let mut r = Relation::from_rows(ab(), [[1, 2], [3, 4]]).unwrap();
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([5, 6]), 2);
        d.add(Tuple::from([1, 2]), -1);
        r.apply_delta(&d).unwrap();
        assert_eq!(r.count(&Tuple::from([5, 6])), 2);
        assert!(!r.contains(&Tuple::from([1, 2])));
        assert_eq!(r.count(&Tuple::from([3, 4])), 1);
    }

    #[test]
    fn apply_delta_failure_leaves_relation_untouched() {
        let mut r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([7, 8]), 1);
        d.add(Tuple::from([3, 4]), -1); // not present: must fail
        let before = r.clone();
        assert!(r.apply_delta(&d).is_err());
        assert_eq!(r, before);
    }

    #[test]
    fn equality_is_count_sensitive() {
        let a = Relation::from_rows(ab(), [[1, 2], [1, 2]]).unwrap();
        let b = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        assert_ne!(a, b);
        let c = Relation::from_rows(ab(), [[1, 2], [1, 2]]).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn insert_refuses_counter_overflow_at_u64_max() {
        // Regression: `insert` used an unchecked `+=`, panicking in debug
        // and wrapping in release once a counter reached u64::MAX.
        let mut r = Relation::empty(ab());
        let t = Tuple::from([1, 2]);
        r.insert(t.clone(), u64::MAX).unwrap();
        assert_eq!(r.count(&t), u64::MAX);
        assert!(matches!(
            r.insert(t.clone(), 1).unwrap_err(),
            RelError::CounterOverflow(_)
        ));
        assert_eq!(r.count(&t), u64::MAX, "refused insert changes nothing");
        // The indexed maintenance path must refuse identically.
        let mut r = Relation::empty(ab());
        r.create_index(&[0]).unwrap();
        r.insert(t.clone(), u64::MAX).unwrap();
        assert!(matches!(
            r.insert(t.clone(), 1).unwrap_err(),
            RelError::CounterOverflow(_)
        ));
        assert_eq!(r.count(&t), u64::MAX);
        r.verify_indexes().unwrap();
    }

    #[test]
    fn indexes_follow_every_mutation() {
        let mut r = Relation::from_rows(ab(), [[1, 2], [3, 2], [5, 6]]).unwrap();
        assert!(r.create_index(&[1]).unwrap());
        assert!(!r.create_index(&[1]).unwrap(), "same key: not rebuilt");
        let ix = r.index_covering(&[1]).unwrap();
        assert_eq!(ix.entry_count(), 3);
        assert_eq!(ix.probe(&[2.into()]).count(), 2);
        r.insert(Tuple::from([7, 2]), 1).unwrap();
        r.remove(&Tuple::from([1, 2]), 1).unwrap();
        let ix = r.index_covering(&[1]).unwrap();
        assert_eq!(ix.probe(&[2.into()]).count(), 2);
        r.verify_indexes().unwrap();
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([9, 6]), 1);
        d.add(Tuple::from([5, 6]), -1);
        r.apply_delta(&d).unwrap();
        r.verify_indexes().unwrap();
        assert_eq!(
            r.index_covering(&[1]).unwrap().probe(&[6.into()]).count(),
            1
        );
        // Clones carry their indexes.
        let c = r.clone();
        assert_eq!(c.index_count(), 1);
        c.verify_indexes().unwrap();
        assert!(r.index_memory_bytes() > 0);
    }

    #[test]
    fn create_index_validates_key() {
        let mut r = Relation::empty(ab());
        assert!(matches!(
            r.create_index(&[]).unwrap_err(),
            RelError::InvalidIndexKey(_)
        ));
        assert!(matches!(
            r.create_index(&[2]).unwrap_err(),
            RelError::InvalidIndexKey(_)
        ));
        // Key treated as a set: {1, 0, 1} == {0, 1}.
        assert!(r.create_index(&[1, 0, 1]).unwrap());
        assert!(!r.create_index(&[0, 1]).unwrap());
        assert!(r.index_covering(&[1, 0]).is_some());
    }

    #[test]
    fn equality_ignores_indexes() {
        let plain = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let mut indexed = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        indexed.create_index(&[0]).unwrap();
        assert_eq!(plain, indexed);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = Relation::from_rows(ab(), [[3, 4], [1, 2], [2, 9]]).unwrap();
        let order: Vec<Tuple> = r.sorted().into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            order,
            vec![
                Tuple::from([1, 2]),
                Tuple::from([2, 9]),
                Tuple::from([3, 4])
            ]
        );
    }
}
