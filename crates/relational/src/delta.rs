//! Signed deltas over relations.
//!
//! A [`DeltaRelation`] maps tuples to *signed* multiplicities: positive for
//! insertions, negative for deletions. It is the arithmetic closure of the
//! paper's tagged tuples — a tuple tagged `insert` carries `+count`, a tuple
//! tagged `delete` carries `−count`, and a tuple tagged `ignore` has
//! cancelled to zero. Because join is bilinear and σ/π are linear over
//! signed multisets, the distributive identities of §5.3–§5.4 hold exactly,
//! which is what the alternative signed-count differential engine in
//! `ivm::differential` exploits. The paper-literal engine uses
//! [`crate::tagged::TaggedRelation`] instead; the two are property-tested to
//! agree.

use crate::fxhash::FxHashMap;
use std::fmt;

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Unsigned counted tuples, as returned by [`DeltaRelation::split`].
pub type CountedTuples = Vec<(Tuple, u64)>;

/// A signed counted multiset of tuples over a scheme.
///
/// Entries with count zero are removed eagerly, so `is_empty()` means "no
/// net change".
#[derive(Debug, Clone)]
pub struct DeltaRelation {
    schema: Schema,
    tuples: FxHashMap<Tuple, i64>,
}

impl DeltaRelation {
    /// An empty (no-op) delta over a scheme.
    pub fn empty(schema: Schema) -> Self {
        DeltaRelation {
            schema,
            tuples: FxHashMap::default(),
        }
    }

    /// Build a delta from explicit insert and delete row sets.
    pub fn from_changes<I, D, T, U>(schema: Schema, inserts: I, deletes: D) -> Result<Self>
    where
        I: IntoIterator<Item = T>,
        D: IntoIterator<Item = U>,
        T: Into<Tuple>,
        U: Into<Tuple>,
    {
        let mut delta = DeltaRelation::empty(schema);
        for t in inserts {
            let t = t.into();
            t.check_arity(&delta.schema)?;
            delta.add(t, 1);
        }
        for t in deletes {
            let t = t.into();
            t.check_arity(&delta.schema)?;
            delta.add(t, -1);
        }
        Ok(delta)
    }

    /// The delta's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct tuples with a non-zero net count.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the delta is a net no-op.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Net signed count of a tuple (0 when absent).
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.tuples.get(tuple).copied().unwrap_or(0)
    }

    /// Add a signed contribution for a tuple; zero entries are dropped.
    pub fn add(&mut self, tuple: Tuple, count: i64) {
        if count == 0 {
            return;
        }
        use std::collections::hash_map::Entry;
        match self.tuples.entry(tuple) {
            Entry::Occupied(mut e) => {
                let v = e.get_mut();
                *v += count;
                if *v == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                e.insert(count);
            }
        }
    }

    /// Merge another delta into this one (`self += other`).
    pub fn merge(&mut self, other: &DeltaRelation) -> Result<()> {
        self.schema.require_same(&other.schema)?;
        for (t, c) in other.iter() {
            self.add(t.clone(), c);
        }
        Ok(())
    }

    /// Iterate over `(tuple, signed count)` pairs in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.tuples.iter().map(|(t, &c)| (t, c))
    }

    /// `(tuple, signed count)` pairs sorted by tuple for deterministic
    /// output.
    pub fn sorted(&self) -> Vec<(Tuple, i64)> {
        let mut v: Vec<(Tuple, i64)> = self.tuples.iter().map(|(t, &c)| (t.clone(), c)).collect();
        v.sort();
        v
    }

    /// Split into (insertions, deletions) as unsigned counted sets — the
    /// shape of the view transaction emitted by Algorithm 5.1 step 3.
    pub fn split(&self) -> (CountedTuples, CountedTuples) {
        let mut ins = Vec::new();
        let mut del = Vec::new();
        for (t, c) in self.sorted() {
            if c > 0 {
                ins.push((t, c as u64));
            } else {
                del.push((t, c.unsigned_abs()));
            }
        }
        (ins, del)
    }

    /// Total number of tuple occurrences touched, `Σ |count|`.
    pub fn magnitude(&self) -> u64 {
        self.tuples.values().map(|c| c.unsigned_abs()).sum()
    }

    /// Negate every count (turn an "old→new" delta into "new→old").
    pub fn negated(&self) -> DeltaRelation {
        DeltaRelation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().map(|(t, &c)| (t.clone(), -c)).collect(),
        }
    }
}

impl PartialEq for DeltaRelation {
    fn eq(&self, other: &Self) -> bool {
        self.schema.same_as(&other.schema) && self.tuples == other.tuples
    }
}

impl Eq for DeltaRelation {}

impl fmt::Display for DeltaRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Δ{} [{} changes]", self.schema, self.magnitude())?;
        for (t, c) in self.sorted() {
            writeln!(
                f,
                "  {} {t} x{}",
                if c > 0 { '+' } else { '-' },
                c.unsigned_abs()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    #[test]
    fn add_cancels_to_zero() {
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([1, 2]), 3);
        d.add(Tuple::from([1, 2]), -3);
        assert!(d.is_empty());
        assert_eq!(d.count(&Tuple::from([1, 2])), 0);
    }

    #[test]
    fn from_changes_nets_out() {
        // Insert-then-delete of the same tuple nets to nothing (§3).
        let d = DeltaRelation::from_changes(ab(), [[1, 2], [5, 6]], [[1, 2]]).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.count(&Tuple::from([5, 6])), 1);
    }

    #[test]
    fn split_partitions_by_sign() {
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([1, 1]), 2);
        d.add(Tuple::from([2, 2]), -1);
        let (ins, del) = d.split();
        assert_eq!(ins, vec![(Tuple::from([1, 1]), 2)]);
        assert_eq!(del, vec![(Tuple::from([2, 2]), 1)]);
        assert_eq!(d.magnitude(), 3);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = DeltaRelation::empty(ab());
        a.add(Tuple::from([1, 1]), 1);
        let mut b = DeltaRelation::empty(ab());
        b.add(Tuple::from([1, 1]), -1);
        b.add(Tuple::from([2, 2]), 4);
        a.merge(&b).unwrap();
        assert_eq!(a.count(&Tuple::from([1, 1])), 0);
        assert_eq!(a.count(&Tuple::from([2, 2])), 4);
    }

    #[test]
    fn merge_requires_same_scheme() {
        let mut a = DeltaRelation::empty(ab());
        let b = DeltaRelation::empty(Schema::new(["X"]).unwrap());
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn negated_flips_signs() {
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([1, 1]), 2);
        d.add(Tuple::from([2, 2]), -3);
        let n = d.negated();
        assert_eq!(n.count(&Tuple::from([1, 1])), -2);
        assert_eq!(n.count(&Tuple::from([2, 2])), 3);
    }

    #[test]
    fn arity_checked_in_from_changes() {
        assert!(DeltaRelation::from_changes(ab(), [[1]], Vec::<[i32; 2]>::new()).is_err());
    }
}
