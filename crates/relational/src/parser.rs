//! Text parsers for schemas, tuples and selection conditions.
//!
//! A small, hand-rolled surface syntax so that views and updates can be
//! written down in examples, tests and the interactive shell without
//! building ASTs by hand:
//!
//! * schema:    `A, B, C` (parentheses optional)
//! * tuple:     `(1, -2, widget, "two words")` — integers or strings
//! * condition: DNF text over the Rosenkrantz–Hunt atom shapes, e.g.
//!   `A < 10 and B = C or D >= E + 2`; `and` binds tighter than `or`;
//!   the constants `true` / `false` are accepted. Operators:
//!   `=`, `<`, `>`, `<=`, `>=` (no `!=`, per §4).

use crate::attribute::AttrName;
use crate::error::{RelError, Result};
use crate::predicate::{Atom, CompOp, Condition, Conjunction, Rhs};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

fn err(msg: impl Into<String>) -> RelError {
    RelError::Parse(msg.into())
}

/// Parse a comma-separated attribute list, with or without surrounding
/// parentheses: `A, B` or `(A, B)`.
pub fn parse_schema(text: &str) -> Result<Schema> {
    let inner = strip_parens(text.trim());
    if inner.is_empty() {
        return Schema::new(Vec::<AttrName>::new());
    }
    let attrs: Vec<&str> = inner.split(',').map(str::trim).collect();
    if attrs.iter().any(|a| a.is_empty() || !is_ident(a)) {
        return Err(err(format!("invalid attribute list: {text:?}")));
    }
    Schema::new(attrs)
}

/// Parse a tuple literal: `(1, 2, widget)`. Fields are integers when they
/// parse as `i64`, double-quoted strings verbatim, and bare strings
/// otherwise.
pub fn parse_tuple(text: &str) -> Result<Tuple> {
    let inner = strip_parens(text.trim());
    if inner.is_empty() {
        return Ok(Tuple::new(Vec::<Value>::new()));
    }
    let mut values = Vec::new();
    for field in split_top_level(inner) {
        let field = field.trim();
        if field.is_empty() {
            return Err(err(format!("empty field in tuple {text:?}")));
        }
        if let Some(stripped) = field.strip_prefix('"') {
            let Some(body) = stripped.strip_suffix('"') else {
                return Err(err(format!("unterminated string in tuple {text:?}")));
            };
            values.push(Value::str(body));
        } else if let Ok(i) = field.parse::<i64>() {
            values.push(Value::Int(i));
        } else if is_ident(field) {
            values.push(Value::str(field));
        } else {
            return Err(err(format!("invalid tuple field {field:?}")));
        }
    }
    Ok(Tuple::new(values))
}

/// Parse a DNF condition: conjunctions of atoms joined by `and`, the
/// conjunctions joined by `or` (case-insensitive keywords).
pub fn parse_condition(text: &str) -> Result<Condition> {
    let text = text.trim();
    if text.eq_ignore_ascii_case("true") || text.is_empty() {
        return Ok(Condition::always_true());
    }
    if text.eq_ignore_ascii_case("false") {
        return Ok(Condition::always_false());
    }
    let mut disjuncts = Vec::new();
    for disjunct in split_keyword(text, "or") {
        let mut atoms = Vec::new();
        for atom_text in split_keyword(&disjunct, "and") {
            atoms.push(parse_atom(atom_text.trim())?);
        }
        disjuncts.push(Conjunction::new(atoms));
    }
    Ok(Condition::dnf(disjuncts))
}

/// Parse one atom: `IDENT op (IDENT ((+|-) INT)? | INT)`.
pub fn parse_atom(text: &str) -> Result<Atom> {
    let (op, op_pos, op_len) =
        find_op(text).ok_or_else(|| err(format!("no comparison operator in atom {text:?}")))?;
    let left = text[..op_pos].trim();
    let right = text[op_pos + op_len..].trim();
    if !is_ident(left) {
        return Err(err(format!(
            "left side of an atom must be an attribute, got {left:?}"
        )));
    }
    if right.is_empty() {
        return Err(err(format!("missing right side in atom {text:?}")));
    }
    // Right side: integer constant?
    if let Ok(c) = right.parse::<i64>() {
        return Ok(Atom {
            left: left.into(),
            op,
            rhs: Rhs::Const(c),
        });
    }
    // Variable with optional offset: Y, Y + 3, Y - 3.
    let (var, offset) = match right.find(['+', '-'].as_ref()) {
        // A leading sign was already handled by the i64 parse above, so a
        // sign here separates the variable from the offset.
        Some(pos) if pos > 0 => {
            let var = right[..pos].trim();
            let sign = if right.as_bytes()[pos] == b'+' { 1 } else { -1 };
            let num = right[pos + 1..].trim();
            let c: i64 = num
                .parse()
                .map_err(|_| err(format!("invalid offset {num:?} in atom {text:?}")))?;
            (var, sign * c)
        }
        _ => (right, 0),
    };
    if !is_ident(var) {
        return Err(err(format!(
            "right side of an atom must be an attribute or constant, got {right:?}"
        )));
    }
    Ok(Atom {
        left: left.into(),
        op,
        rhs: Rhs::AttrPlus(var.into(), offset),
    })
}

fn strip_parens(text: &str) -> &str {
    let t = text.trim();
    if let Some(inner) = t.strip_prefix('(').and_then(|s| s.strip_suffix(')')) {
        inner.trim()
    } else {
        t
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

/// Split on commas that are not inside double quotes.
fn split_top_level(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    out.push(cur);
    out
}

/// Split on a lowercase/uppercase keyword delimited by whitespace.
fn split_keyword(text: &str, keyword: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for token in text.split_whitespace() {
        if token.eq_ignore_ascii_case(keyword) {
            out.push(std::mem::take(&mut cur));
        } else {
            if !cur.is_empty() {
                cur.push(' ');
            }
            cur.push_str(token);
        }
    }
    out.push(cur);
    out
}

/// Find the comparison operator in an atom, preferring the two-character
/// forms.
fn find_op(text: &str) -> Option<(CompOp, usize, usize)> {
    for (sym, op) in [("<=", CompOp::Le), (">=", CompOp::Ge)] {
        if let Some(pos) = text.find(sym) {
            return Some((op, pos, 2));
        }
    }
    for (sym, op) in [("=", CompOp::Eq), ("<", CompOp::Lt), (">", CompOp::Gt)] {
        if let Some(pos) = text.find(sym) {
            return Some((op, pos, 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_with_and_without_parens() {
        assert_eq!(
            parse_schema("A, B").unwrap(),
            Schema::new(["A", "B"]).unwrap()
        );
        assert_eq!(
            parse_schema("(A,B)").unwrap(),
            Schema::new(["A", "B"]).unwrap()
        );
        assert!(parse_schema("A, 1B").is_err());
        assert!(parse_schema("A,,B").is_err());
        assert_eq!(parse_schema("()").unwrap().arity(), 0);
    }

    #[test]
    fn tuple_ints_and_strings() {
        assert_eq!(parse_tuple("(1, -2, 3)").unwrap(), Tuple::from([1, -2, 3]));
        let t = parse_tuple("(1, widget, \"two words, really\")").unwrap();
        assert_eq!(t.at(0), &Value::Int(1));
        assert_eq!(t.at(1), &Value::str("widget"));
        assert_eq!(t.at(2), &Value::str("two words, really"));
        assert!(parse_tuple("(1, )").is_err());
        assert!(parse_tuple("(\"open").is_err());
    }

    #[test]
    fn atoms_all_shapes() {
        assert_eq!(parse_atom("A < 10").unwrap(), Atom::lt_const("A", 10));
        assert_eq!(parse_atom("A<=-3").unwrap(), Atom::le_const("A", -3));
        assert_eq!(parse_atom("B = C").unwrap(), Atom::eq_attr("B", "C"));
        assert_eq!(
            parse_atom("A >= B + 2").unwrap(),
            Atom::cmp_attr("A", CompOp::Ge, "B", 2)
        );
        assert_eq!(
            parse_atom("A > B - 5").unwrap(),
            Atom::cmp_attr("A", CompOp::Gt, "B", -5)
        );
        assert!(parse_atom("A ! B").is_err());
        assert!(parse_atom("3 < A").is_err());
        assert!(parse_atom("A < ").is_err());
    }

    #[test]
    fn conditions_dnf_structure() {
        let c = parse_condition("A < 10 and B = C or D >= 5").unwrap();
        assert_eq!(c.disjuncts.len(), 2);
        assert_eq!(c.disjuncts[0].atoms.len(), 2);
        assert_eq!(c.disjuncts[1].atoms.len(), 1);
        assert_eq!(c.disjuncts[0].atoms[0], Atom::lt_const("A", 10));
    }

    #[test]
    fn condition_keywords_case_insensitive() {
        let c = parse_condition("A < 1 AND B > 2 OR C = 3").unwrap();
        assert_eq!(c.disjuncts.len(), 2);
        assert!(parse_condition("TRUE").unwrap().is_trivially_true());
        assert_eq!(parse_condition("false").unwrap(), Condition::always_false());
        assert!(parse_condition("").unwrap().is_trivially_true());
    }

    #[test]
    fn parsed_condition_evaluates_like_built_one() {
        let s = Schema::new(["A", "B", "C"]).unwrap();
        let parsed = parse_condition("A < 10 and C > 5 and B = C").unwrap();
        let built = Condition::conjunction([
            Atom::lt_const("A", 10),
            Atom::gt_const("C", 5),
            Atom::eq_attr("B", "C"),
        ]);
        for a in 0..12 {
            for b in 0..12 {
                for c in 0..12 {
                    let t = Tuple::from([a, b, c]);
                    assert_eq!(parsed.eval(&s, &t).unwrap(), built.eval(&s, &t).unwrap());
                }
            }
        }
    }

    #[test]
    fn qualified_attribute_names_allowed() {
        let a = parse_atom("R.A < S.B + 1").unwrap();
        assert_eq!(a.left, AttrName::new("R.A"));
        assert_eq!(a.rhs, Rhs::AttrPlus("S.B".into(), 1));
    }

    #[test]
    fn roundtrip_display_reparse() {
        // Atom display text parses back to the same atom.
        for atom in [
            Atom::lt_const("A", 10),
            Atom::cmp_attr("A", CompOp::Le, "B", -2),
            Atom::cmp_attr("X", CompOp::Ge, "Y", 3),
            Atom::eq_attr("B", "C"),
        ] {
            let text = atom.to_string();
            assert_eq!(parse_atom(&text).unwrap(), atom, "{text}");
        }
    }
}
