//! Natural join ⋈, redefined for counters (§5.2) and tags (§5.3).
//!
//! The counter redefinition: the joined tuple's counter is the *product* of
//! the operand counters (`t(N) = u(N) * v(N)`). The tag of a joined tuple
//! follows the §5.3 combination table; `insert ⋈ delete` combinations are
//! dropped. Implementation is a hash join on the shared attributes — when
//! the schemes share no attribute the join degenerates to a cross product,
//! exactly as in the algebra.

use std::collections::HashMap;

use crate::attribute::AttrName;
use crate::delta::DeltaRelation;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tagged::{Tag, TaggedRelation};
use crate::tuple::Tuple;
use crate::value::Value;

/// Positions of the shared (join-key) attributes in each operand, plus the
/// positions of the right operand's non-shared attributes (the part
/// appended to the left tuple in the output layout `R ∪ (S − R)`).
pub fn join_key_positions(l: &Schema, r: &Schema) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let shared: Vec<AttrName> = l.intersection(r);
    let l_key = shared
        .iter()
        .map(|a| l.position(a).expect("shared attr in left"))
        .collect();
    let r_key = shared
        .iter()
        .map(|a| r.position(a).expect("shared attr in right"))
        .collect();
    let r_rest = r
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !l.contains(a))
        .map(|(i, _)| i)
        .collect();
    (l_key, r_key, r_rest)
}

fn key_of(tuple: &Tuple, positions: &[usize]) -> Vec<Value> {
    positions.iter().map(|&p| tuple.at(p).clone()).collect()
}

fn joined_tuple(lt: &Tuple, rt: &Tuple, r_rest: &[usize]) -> Tuple {
    let mut values: Vec<Value> = lt.values().to_vec();
    values.extend(r_rest.iter().map(|&p| rt.at(p).clone()));
    Tuple::from(values)
}

/// `l ⋈ r` over plain counted relations.
///
/// Hash join; the index is always built over the *smaller* operand, which
/// matters in the differential engine where a tiny change set routinely
/// joins a large old relation.
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation> {
    let schema = l.schema().join(r.schema());
    let (l_key, r_key, r_rest) = join_key_positions(l.schema(), r.schema());
    let mut out = Relation::empty(schema);
    if l.len() <= r.len() {
        // Index the left side, probe from the right.
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> = HashMap::new();
        for (lt, lc) in l.iter() {
            index.entry(key_of(lt, &l_key)).or_default().push((lt, lc));
        }
        for (rt, rc) in r.iter() {
            if let Some(matches) = index.get(&key_of(rt, &r_key)) {
                for (lt, lc) in matches {
                    out.insert(joined_tuple(lt, rt, &r_rest), lc * rc)?;
                }
            }
        }
    } else {
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> = HashMap::new();
        for (rt, rc) in r.iter() {
            index.entry(key_of(rt, &r_key)).or_default().push((rt, rc));
        }
        for (lt, lc) in l.iter() {
            if let Some(matches) = index.get(&key_of(lt, &l_key)) {
                for (rt, rc) in matches {
                    out.insert(joined_tuple(lt, rt, &r_rest), lc * rc)?;
                }
            }
        }
    }
    Ok(out)
}

/// `l ⋈ r` over signed deltas (bilinear in the signed counts). Indexes
/// the smaller operand.
pub fn natural_join_delta(l: &DeltaRelation, r: &DeltaRelation) -> Result<DeltaRelation> {
    let schema = l.schema().join(r.schema());
    let (l_key, r_key, r_rest) = join_key_positions(l.schema(), r.schema());
    let mut out = DeltaRelation::empty(schema);
    if l.len() <= r.len() {
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, i64)>> = HashMap::new();
        for (lt, lc) in l.iter() {
            index.entry(key_of(lt, &l_key)).or_default().push((lt, lc));
        }
        for (rt, rc) in r.iter() {
            if let Some(matches) = index.get(&key_of(rt, &r_key)) {
                for (lt, lc) in matches {
                    out.add(joined_tuple(lt, rt, &r_rest), lc * rc);
                }
            }
        }
    } else {
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, i64)>> = HashMap::new();
        for (rt, rc) in r.iter() {
            index.entry(key_of(rt, &r_key)).or_default().push((rt, rc));
        }
        for (lt, lc) in l.iter() {
            if let Some(matches) = index.get(&key_of(lt, &l_key)) {
                for (rt, rc) in matches {
                    out.add(joined_tuple(lt, rt, &r_rest), lc * rc);
                }
            }
        }
    }
    Ok(out)
}

/// `l ⋈ r` over tagged relations; tags combine via [`Tag::combine`], and
/// `insert ⋈ delete` pairs are dropped. Indexes the smaller operand.
pub fn natural_join_tagged(l: &TaggedRelation, r: &TaggedRelation) -> Result<TaggedRelation> {
    let schema = l.schema().join(r.schema());
    let (l_key, r_key, r_rest) = join_key_positions(l.schema(), r.schema());
    let mut out = TaggedRelation::empty(schema);
    if l.len() <= r.len() {
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, Tag, u64)>> = HashMap::new();
        for (lt, ltag, lc) in l.iter() {
            index
                .entry(key_of(lt, &l_key))
                .or_default()
                .push((lt, ltag, lc));
        }
        for (rt, rtag, rc) in r.iter() {
            if let Some(matches) = index.get(&key_of(rt, &r_key)) {
                for (lt, ltag, lc) in matches {
                    if let Some(tag) = ltag.combine(rtag) {
                        out.add(joined_tuple(lt, rt, &r_rest), tag, lc * rc);
                    }
                }
            }
        }
    } else {
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, Tag, u64)>> = HashMap::new();
        for (rt, rtag, rc) in r.iter() {
            index
                .entry(key_of(rt, &r_key))
                .or_default()
                .push((rt, rtag, rc));
        }
        for (lt, ltag, lc) in l.iter() {
            if let Some(matches) = index.get(&key_of(lt, &l_key)) {
                for (rt, rtag, rc) in matches {
                    if let Some(tag) = ltag.combine(*rtag) {
                        out.add(joined_tuple(lt, rt, &r_rest), tag, lc * rc);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{product, union};

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn bc() -> Schema {
        Schema::new(["B", "C"]).unwrap()
    }

    #[test]
    fn natural_join_on_shared_attribute() {
        // r = {(1,10), (2,20)}, s = {(10,100), (10,200), (30,300)}
        let r = Relation::from_rows(ab(), [[1, 10], [2, 20]]).unwrap();
        let s = Relation::from_rows(bc(), [[10, 100], [10, 200], [30, 300]]).unwrap();
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.schema().attrs(), &["A".into(), "B".into(), "C".into()]);
        assert!(j.contains(&Tuple::from([1, 10, 100])));
        assert!(j.contains(&Tuple::from([1, 10, 200])));
        assert!(!j.contains(&Tuple::from([2, 20, 300])));
        assert_eq!(j.total_count(), 2);
    }

    #[test]
    fn join_counters_multiply() {
        let r = Relation::from_rows(ab(), [[1, 10], [1, 10]]).unwrap(); // x2
        let s = Relation::from_rows(bc(), [[10, 7], [10, 7], [10, 7]]).unwrap(); // x3
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.count(&Tuple::from([1, 10, 7])), 6);
    }

    #[test]
    fn disjoint_schemes_degenerate_to_product() {
        let r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let s = Relation::from_rows(Schema::new(["C", "D"]).unwrap(), [[3, 4]]).unwrap();
        assert_eq!(natural_join(&r, &s).unwrap(), product(&r, &s).unwrap());
    }

    #[test]
    fn join_distributes_over_union() {
        // (r ∪ i) ⋈ s = (r ⋈ s) ∪ (i ⋈ s) — the §5.3 identity.
        let r = Relation::from_rows(ab(), [[1, 10], [2, 20]]).unwrap();
        let i = Relation::from_rows(ab(), [[3, 10]]).unwrap();
        let s = Relation::from_rows(bc(), [[10, 5], [20, 6]]).unwrap();
        let lhs = natural_join(&union(&r, &i).unwrap(), &s).unwrap();
        let rhs = union(
            &natural_join(&r, &s).unwrap(),
            &natural_join(&i, &s).unwrap(),
        )
        .unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn delta_join_is_bilinear() {
        let mut dl = DeltaRelation::empty(ab());
        dl.add(Tuple::from([1, 10]), 2);
        dl.add(Tuple::from([2, 10]), -1);
        let mut dr = DeltaRelation::empty(bc());
        dr.add(Tuple::from([10, 5]), -3);
        let j = natural_join_delta(&dl, &dr).unwrap();
        assert_eq!(j.count(&Tuple::from([1, 10, 5])), -6);
        assert_eq!(j.count(&Tuple::from([2, 10, 5])), 3);
    }

    #[test]
    fn tagged_join_example_54_cases() {
        // Example 5.4's six cases, driven through one tagged join.
        // keep(r)={(1,10)}, d_r={(2,10)}, i_r={(3,10)};
        // keep(s)={(10,100)}, d_s={(10,200)}, i_s={(10,300)}.
        let mut l = TaggedRelation::empty(ab());
        l.add(Tuple::from([1, 10]), Tag::Old, 1);
        l.add(Tuple::from([2, 10]), Tag::Delete, 1);
        l.add(Tuple::from([3, 10]), Tag::Insert, 1);
        let mut r = TaggedRelation::empty(bc());
        r.add(Tuple::from([10, 100]), Tag::Old, 1);
        r.add(Tuple::from([10, 200]), Tag::Delete, 1);
        r.add(Tuple::from([10, 300]), Tag::Insert, 1);
        let j = natural_join_tagged(&l, &r).unwrap();
        // Case 6: old ⋈ old → old.
        assert_eq!(j.count(&Tuple::from([1, 10, 100]), Tag::Old), 1);
        // Case 3: insert ⋈ old → insert.
        assert_eq!(j.count(&Tuple::from([3, 10, 100]), Tag::Insert), 1);
        // Case 1: insert ⋈ insert → insert.
        assert_eq!(j.count(&Tuple::from([3, 10, 300]), Tag::Insert), 1);
        // Case 5: delete ⋈ old → delete.
        assert_eq!(j.count(&Tuple::from([2, 10, 100]), Tag::Delete), 1);
        // Case 4: delete ⋈ delete → delete.
        assert_eq!(j.count(&Tuple::from([2, 10, 200]), Tag::Delete), 1);
        // Case 2: insert ⋈ delete → ignored entirely.
        assert_eq!(j.count(&Tuple::from([3, 10, 200]), Tag::Insert), 0);
        assert_eq!(j.count(&Tuple::from([3, 10, 200]), Tag::Delete), 0);
        assert_eq!(j.count(&Tuple::from([3, 10, 200]), Tag::Old), 0);
        // And old ⋈ insert → insert (symmetric of case 3).
        assert_eq!(j.count(&Tuple::from([1, 10, 300]), Tag::Insert), 1);
    }

    #[test]
    fn join_key_positions_shapes() {
        let (lk, rk, rr) = join_key_positions(&ab(), &bc());
        assert_eq!(lk, vec![1]); // B in {A,B}
        assert_eq!(rk, vec![0]); // B in {B,C}
        assert_eq!(rr, vec![1]); // C appended
    }
}
