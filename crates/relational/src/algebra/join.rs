//! Natural join ⋈, redefined for counters (§5.2) and tags (§5.3).
//!
//! The counter redefinition: the joined tuple's counter is the *product* of
//! the operand counters (`t(N) = u(N) * v(N)`). The tag of a joined tuple
//! follows the §5.3 combination table; `insert ⋈ delete` combinations are
//! dropped. Implementation is a hash join on the shared attributes — when
//! the schemes share no attribute the join degenerates to a cross product,
//! exactly as in the algebra.
//!
//! Counter products use `checked_mul` throughout and surface
//! [`RelError::CounterOverflow`] instead of wrapping in release builds.
//!
//! Each flavour also has a `*_with(l, r, threads)` form that, above a size
//! threshold, hash-partitions both operands by their join key and joins the
//! partitions on a scoped worker pool. Tuples with equal keys land in the
//! same partition, partitions are therefore key-disjoint, and the output
//! relations are keyed maps — so the merged result is identical to the
//! sequential join for every thread count.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};

use ivm_parallel::Pool;

use crate::attribute::AttrName;
use crate::delta::DeltaRelation;
use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tagged::{Tag, TaggedRelation};
use crate::tuple::Tuple;
use crate::value::Value;

/// Minimum combined operand size (tuples on both sides) before a
/// `*_with` join bothers to partition. Below this the scoped-thread spawn
/// cost dwarfs the join itself.
pub const PARTITION_THRESHOLD: usize = 2048;

/// Positions of the shared (join-key) attributes in each operand, plus the
/// positions of the right operand's non-shared attributes (the part
/// appended to the left tuple in the output layout `R ∪ (S − R)`).
///
/// Errors with [`RelError::UnknownAttribute`] if an attribute reported
/// shared by [`Schema::intersection`] cannot be located in one of the
/// operands — a schema-invariant violation rather than a user error, but
/// one the caller can now surface instead of panicking.
pub fn join_key_positions(l: &Schema, r: &Schema) -> Result<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let shared: Vec<AttrName> = l.intersection(r);
    let position = |s: &Schema, a: &AttrName| {
        s.position(a).ok_or_else(|| RelError::UnknownAttribute {
            attr: a.clone(),
            scheme: format!("{s}"),
        })
    };
    let l_key = shared
        .iter()
        .map(|a| position(l, a))
        .collect::<Result<Vec<usize>>>()?;
    let r_key = shared
        .iter()
        .map(|a| position(r, a))
        .collect::<Result<Vec<usize>>>()?;
    let r_rest = r
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !l.contains(a))
        .map(|(i, _)| i)
        .collect();
    Ok((l_key, r_key, r_rest))
}

/// `lc * rc` for §5.2 counters, or [`RelError::CounterOverflow`].
pub(crate) fn mul_counts(lc: u64, rc: u64) -> Result<u64> {
    lc.checked_mul(rc)
        .ok_or_else(|| RelError::CounterOverflow(format!("{lc} * {rc} exceeds u64")))
}

/// `lc * rc` for signed delta counts, or [`RelError::CounterOverflow`].
pub(crate) fn mul_signed(lc: i64, rc: i64) -> Result<i64> {
    lc.checked_mul(rc)
        .ok_or_else(|| RelError::CounterOverflow(format!("{lc} * {rc} exceeds i64")))
}

fn key_of(tuple: &Tuple, positions: &[usize]) -> Vec<Value> {
    positions.iter().map(|&p| tuple.at(p).clone()).collect()
}

fn joined_tuple(lt: &Tuple, rt: &Tuple, r_rest: &[usize]) -> Tuple {
    let mut values: Vec<Value> = lt.values().to_vec();
    values.extend(r_rest.iter().map(|&p| rt.at(p).clone()));
    Tuple::from(values)
}

/// Hash join over borrowed `(tuple, payload)` slices. The index is always
/// built over the *smaller* side, which matters in the differential engine
/// where a tiny change set routinely joins a large old relation. `emit`
/// receives the joined tuple plus both payloads (counter, signed count, or
/// tag+counter) and owns the combination rule.
fn hash_join_slices<'a, P, F>(
    lts: &[(&'a Tuple, P)],
    rts: &[(&'a Tuple, P)],
    l_key: &[usize],
    r_key: &[usize],
    r_rest: &[usize],
    mut emit: F,
) -> Result<()>
where
    P: Copy,
    F: FnMut(Tuple, P, P) -> Result<()>,
{
    if lts.len() <= rts.len() {
        // Index the left side, probe from the right.
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, P)>> = HashMap::new();
        for &(lt, lp) in lts {
            index.entry(key_of(lt, l_key)).or_default().push((lt, lp));
        }
        for &(rt, rp) in rts {
            if let Some(matches) = index.get(&key_of(rt, r_key)) {
                for &(lt, lp) in matches {
                    emit(joined_tuple(lt, rt, r_rest), lp, rp)?;
                }
            }
        }
    } else {
        let mut index: HashMap<Vec<Value>, Vec<(&Tuple, P)>> = HashMap::new();
        for &(rt, rp) in rts {
            index.entry(key_of(rt, r_key)).or_default().push((rt, rp));
        }
        for &(lt, lp) in lts {
            if let Some(matches) = index.get(&key_of(lt, l_key)) {
                for &(rt, rp) in matches {
                    emit(joined_tuple(lt, rt, r_rest), lp, rp)?;
                }
            }
        }
    }
    Ok(())
}

/// Scatter tuples into `parts` buckets by the hash of their join key, so
/// equal keys always share a bucket. With an empty key (cross product)
/// every tuple lands in one bucket and the join stays sequential — which
/// is correct, since a cross product cannot be key-partitioned.
fn partition_by_key<'a, P: Copy>(
    items: &[(&'a Tuple, P)],
    key: &[usize],
    parts: usize,
) -> Vec<Vec<(&'a Tuple, P)>> {
    let mut out: Vec<Vec<(&'a Tuple, P)>> = (0..parts).map(|_| Vec::new()).collect();
    for &(t, p) in items {
        let mut h = DefaultHasher::new();
        key_of(t, key).hash(&mut h);
        out[(h.finish() % parts as u64) as usize].push((t, p));
    }
    out
}

/// Shared skeleton of the three partitioned joins: decide whether the
/// operands are worth partitioning, fan the key-disjoint partitions out on
/// the pool, and hand each pair of partitions to `join_part` (which
/// returns its locally accumulated output rows for in-order merging).
fn partitioned<'a, P, R, F>(
    lts: Vec<(&'a Tuple, P)>,
    rts: Vec<(&'a Tuple, P)>,
    l_key: &[usize],
    r_key: &[usize],
    threads: usize,
    join_part: F,
) -> Result<Vec<Vec<R>>>
where
    P: Copy + Send + Sync,
    R: Send,
    F: Fn(&[(&'a Tuple, P)], &[(&'a Tuple, P)]) -> Result<Vec<R>> + Sync,
{
    let pool = Pool::new(threads.max(1));
    let combined = lts.len() + rts.len();
    if pool.is_sequential() || combined < PARTITION_THRESHOLD || l_key.is_empty() {
        return Ok(vec![join_part(&lts, &rts)?]);
    }
    let parts = pool.threads();
    let l_parts = partition_by_key(&lts, l_key, parts);
    let r_parts = partition_by_key(&rts, r_key, parts);
    let pairs: Vec<_> = l_parts.into_iter().zip(r_parts).collect();
    pool.try_map(&pairs, |(lp, rp)| join_part(lp, rp))
}

/// `l ⋈ r` over plain counted relations, fanned out over `threads`
/// workers when the operands clear [`PARTITION_THRESHOLD`]. `threads = 1`
/// is the sequential oracle; `0` means one worker per core. Output is
/// identical at every width.
pub fn natural_join_with(l: &Relation, r: &Relation, threads: usize) -> Result<Relation> {
    let schema = l.schema().join(r.schema());
    let (l_key, r_key, r_rest) = join_key_positions(l.schema(), r.schema())?;
    let lts: Vec<(&Tuple, u64)> = l.iter().collect();
    let rts: Vec<(&Tuple, u64)> = r.iter().collect();
    let chunks = partitioned(lts, rts, &l_key, &r_key, threads, |lp, rp| {
        let mut acc: Vec<(Tuple, u64)> = Vec::new();
        hash_join_slices(lp, rp, &l_key, &r_key, &r_rest, |t, lc, rc| {
            acc.push((t, mul_counts(lc, rc)?));
            Ok(())
        })?;
        Ok(acc)
    })?;
    let mut out = Relation::empty(schema);
    for chunk in chunks {
        for (t, c) in chunk {
            out.insert(t, c)?;
        }
    }
    Ok(out)
}

/// `l ⋈ r` over plain counted relations (sequential form).
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation> {
    natural_join_with(l, r, 1)
}

/// `l ⋈ r` over signed deltas (bilinear in the signed counts), fanned out
/// over `threads` workers past the size threshold.
pub fn natural_join_delta_with(
    l: &DeltaRelation,
    r: &DeltaRelation,
    threads: usize,
) -> Result<DeltaRelation> {
    let schema = l.schema().join(r.schema());
    let (l_key, r_key, r_rest) = join_key_positions(l.schema(), r.schema())?;
    let lts: Vec<(&Tuple, i64)> = l.iter().collect();
    let rts: Vec<(&Tuple, i64)> = r.iter().collect();
    let chunks = partitioned(lts, rts, &l_key, &r_key, threads, |lp, rp| {
        let mut acc: Vec<(Tuple, i64)> = Vec::new();
        hash_join_slices(lp, rp, &l_key, &r_key, &r_rest, |t, lc, rc| {
            acc.push((t, mul_signed(lc, rc)?));
            Ok(())
        })?;
        Ok(acc)
    })?;
    let mut out = DeltaRelation::empty(schema);
    for chunk in chunks {
        for (t, c) in chunk {
            out.add(t, c);
        }
    }
    Ok(out)
}

/// `l ⋈ r` over signed deltas (sequential form).
pub fn natural_join_delta(l: &DeltaRelation, r: &DeltaRelation) -> Result<DeltaRelation> {
    natural_join_delta_with(l, r, 1)
}

/// `l ⋈ r` over tagged relations; tags combine via [`Tag::combine`], and
/// `insert ⋈ delete` pairs are dropped. Fanned out over `threads` workers
/// past the size threshold.
pub fn natural_join_tagged_with(
    l: &TaggedRelation,
    r: &TaggedRelation,
    threads: usize,
) -> Result<TaggedRelation> {
    let schema = l.schema().join(r.schema());
    let (l_key, r_key, r_rest) = join_key_positions(l.schema(), r.schema())?;
    let lts: Vec<(&Tuple, (Tag, u64))> = l.iter().map(|(t, tag, c)| (t, (tag, c))).collect();
    let rts: Vec<(&Tuple, (Tag, u64))> = r.iter().map(|(t, tag, c)| (t, (tag, c))).collect();
    let chunks = partitioned(lts, rts, &l_key, &r_key, threads, |lp, rp| {
        let mut acc: Vec<(Tuple, Tag, u64)> = Vec::new();
        hash_join_slices(
            lp,
            rp,
            &l_key,
            &r_key,
            &r_rest,
            |t, (ltag, lc), (rtag, rc)| {
                if let Some(tag) = ltag.combine(rtag) {
                    acc.push((t, tag, mul_counts(lc, rc)?));
                }
                Ok(())
            },
        )?;
        Ok(acc)
    })?;
    let mut out = TaggedRelation::empty(schema);
    for chunk in chunks {
        for (t, tag, c) in chunk {
            out.add(t, tag, c);
        }
    }
    Ok(out)
}

/// `l ⋈ r` over tagged relations (sequential form).
pub fn natural_join_tagged(l: &TaggedRelation, r: &TaggedRelation) -> Result<TaggedRelation> {
    natural_join_tagged_with(l, r, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{product, union};

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn bc() -> Schema {
        Schema::new(["B", "C"]).unwrap()
    }

    #[test]
    fn natural_join_on_shared_attribute() {
        // r = {(1,10), (2,20)}, s = {(10,100), (10,200), (30,300)}
        let r = Relation::from_rows(ab(), [[1, 10], [2, 20]]).unwrap();
        let s = Relation::from_rows(bc(), [[10, 100], [10, 200], [30, 300]]).unwrap();
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.schema().attrs(), &["A".into(), "B".into(), "C".into()]);
        assert!(j.contains(&Tuple::from([1, 10, 100])));
        assert!(j.contains(&Tuple::from([1, 10, 200])));
        assert!(!j.contains(&Tuple::from([2, 20, 300])));
        assert_eq!(j.total_count(), 2);
    }

    #[test]
    fn join_counters_multiply() {
        let r = Relation::from_rows(ab(), [[1, 10], [1, 10]]).unwrap(); // x2
        let s = Relation::from_rows(bc(), [[10, 7], [10, 7], [10, 7]]).unwrap(); // x3
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.count(&Tuple::from([1, 10, 7])), 6);
    }

    #[test]
    fn disjoint_schemes_degenerate_to_product() {
        let r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let s = Relation::from_rows(Schema::new(["C", "D"]).unwrap(), [[3, 4]]).unwrap();
        assert_eq!(natural_join(&r, &s).unwrap(), product(&r, &s).unwrap());
    }

    #[test]
    fn join_distributes_over_union() {
        // (r ∪ i) ⋈ s = (r ⋈ s) ∪ (i ⋈ s) — the §5.3 identity.
        let r = Relation::from_rows(ab(), [[1, 10], [2, 20]]).unwrap();
        let i = Relation::from_rows(ab(), [[3, 10]]).unwrap();
        let s = Relation::from_rows(bc(), [[10, 5], [20, 6]]).unwrap();
        let lhs = natural_join(&union(&r, &i).unwrap(), &s).unwrap();
        let rhs = union(
            &natural_join(&r, &s).unwrap(),
            &natural_join(&i, &s).unwrap(),
        )
        .unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn delta_join_is_bilinear() {
        let mut dl = DeltaRelation::empty(ab());
        dl.add(Tuple::from([1, 10]), 2);
        dl.add(Tuple::from([2, 10]), -1);
        let mut dr = DeltaRelation::empty(bc());
        dr.add(Tuple::from([10, 5]), -3);
        let j = natural_join_delta(&dl, &dr).unwrap();
        assert_eq!(j.count(&Tuple::from([1, 10, 5])), -6);
        assert_eq!(j.count(&Tuple::from([2, 10, 5])), 3);
    }

    #[test]
    fn tagged_join_example_54_cases() {
        // Example 5.4's six cases, driven through one tagged join.
        // keep(r)={(1,10)}, d_r={(2,10)}, i_r={(3,10)};
        // keep(s)={(10,100)}, d_s={(10,200)}, i_s={(10,300)}.
        let mut l = TaggedRelation::empty(ab());
        l.add(Tuple::from([1, 10]), Tag::Old, 1);
        l.add(Tuple::from([2, 10]), Tag::Delete, 1);
        l.add(Tuple::from([3, 10]), Tag::Insert, 1);
        let mut r = TaggedRelation::empty(bc());
        r.add(Tuple::from([10, 100]), Tag::Old, 1);
        r.add(Tuple::from([10, 200]), Tag::Delete, 1);
        r.add(Tuple::from([10, 300]), Tag::Insert, 1);
        let j = natural_join_tagged(&l, &r).unwrap();
        // Case 6: old ⋈ old → old.
        assert_eq!(j.count(&Tuple::from([1, 10, 100]), Tag::Old), 1);
        // Case 3: insert ⋈ old → insert.
        assert_eq!(j.count(&Tuple::from([3, 10, 100]), Tag::Insert), 1);
        // Case 1: insert ⋈ insert → insert.
        assert_eq!(j.count(&Tuple::from([3, 10, 300]), Tag::Insert), 1);
        // Case 5: delete ⋈ old → delete.
        assert_eq!(j.count(&Tuple::from([2, 10, 100]), Tag::Delete), 1);
        // Case 4: delete ⋈ delete → delete.
        assert_eq!(j.count(&Tuple::from([2, 10, 200]), Tag::Delete), 1);
        // Case 2: insert ⋈ delete → ignored entirely.
        assert_eq!(j.count(&Tuple::from([3, 10, 200]), Tag::Insert), 0);
        assert_eq!(j.count(&Tuple::from([3, 10, 200]), Tag::Delete), 0);
        assert_eq!(j.count(&Tuple::from([3, 10, 200]), Tag::Old), 0);
        // And old ⋈ insert → insert (symmetric of case 3).
        assert_eq!(j.count(&Tuple::from([1, 10, 300]), Tag::Insert), 1);
    }

    #[test]
    fn join_key_positions_shapes() {
        let (lk, rk, rr) = join_key_positions(&ab(), &bc()).unwrap();
        assert_eq!(lk, vec![1]); // B in {A,B}
        assert_eq!(rk, vec![0]); // B in {B,C}
        assert_eq!(rr, vec![1]); // C appended
    }

    #[test]
    fn counter_overflow_is_an_error_not_a_wrap() {
        // (u64::MAX / 2 + 1) * 2 wraps to 0 in release; must error instead.
        let big = u64::MAX / 2 + 1;
        let mut r = Relation::empty(ab());
        r.insert(Tuple::from([1, 10]), big).unwrap();
        let mut s = Relation::empty(bc());
        s.insert(Tuple::from([10, 100]), 2).unwrap();
        let err = natural_join(&r, &s).unwrap_err();
        assert!(
            matches!(err, RelError::CounterOverflow(_)),
            "expected CounterOverflow, got {err:?}"
        );

        // The signed variant at i64 scale.
        let mut dl = DeltaRelation::empty(ab());
        dl.add(Tuple::from([1, 10]), i64::MAX / 2 + 1);
        let mut dr = DeltaRelation::empty(bc());
        dr.add(Tuple::from([10, 100]), 2);
        let err = natural_join_delta(&dl, &dr).unwrap_err();
        assert!(matches!(err, RelError::CounterOverflow(_)));

        // The tagged variant.
        let mut tl = TaggedRelation::empty(ab());
        tl.add(Tuple::from([1, 10]), Tag::Insert, big);
        let mut tr = TaggedRelation::empty(bc());
        tr.add(Tuple::from([10, 100]), Tag::Old, 2);
        let err = natural_join_tagged(&tl, &tr).unwrap_err();
        assert!(matches!(err, RelError::CounterOverflow(_)));
    }

    /// Build a pair of relations big enough to clear the partition
    /// threshold, with skewed key multiplicity so partitions are uneven.
    fn big_pair() -> (Relation, Relation) {
        let mut r = Relation::empty(ab());
        let mut s = Relation::empty(bc());
        for i in 0..2000i64 {
            r.insert(Tuple::from([i, i % 37]), (i % 3 + 1) as u64)
                .unwrap();
            s.insert(Tuple::from([i % 37, i]), (i % 2 + 1) as u64)
                .unwrap();
        }
        (r, s)
    }

    #[test]
    fn partitioned_join_matches_sequential() {
        let (r, s) = big_pair();
        let seq = natural_join_with(&r, &s, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(natural_join_with(&r, &s, threads).unwrap(), seq);
        }
        let dl = r.to_delta();
        let dr = s.to_delta();
        let seq_d = natural_join_delta_with(&dl, &dr, 1).unwrap();
        assert_eq!(natural_join_delta_with(&dl, &dr, 4).unwrap(), seq_d);
        let mut tl = TaggedRelation::empty(ab());
        let mut tr = TaggedRelation::empty(bc());
        for (i, (t, c)) in r.iter().enumerate() {
            let tag = [Tag::Old, Tag::Insert, Tag::Delete][i % 3];
            tl.add(t.clone(), tag, c);
        }
        for (i, (t, c)) in s.iter().enumerate() {
            let tag = [Tag::Insert, Tag::Old][i % 2];
            tr.add(t.clone(), tag, c);
        }
        let seq_t = natural_join_tagged_with(&tl, &tr, 1).unwrap();
        assert_eq!(natural_join_tagged_with(&tl, &tr, 4).unwrap(), seq_t);
    }

    #[test]
    fn partitioned_cross_product_stays_correct() {
        // Empty join key: cannot be key-partitioned; must still be right.
        let mut r = Relation::empty(ab());
        let mut s = Relation::empty(Schema::new(["C", "D"]).unwrap());
        for i in 0..1200i64 {
            r.insert(Tuple::from([i, i]), 1).unwrap();
            s.insert(Tuple::from([i, -i]), 1).unwrap();
        }
        let seq = natural_join_with(&r, &s, 1).unwrap();
        assert_eq!(natural_join_with(&r, &s, 4).unwrap(), seq);
    }
}
