//! Selection σ_C.
//!
//! Selection filters tuples by a [`Condition`] and is count- and
//! tag-transparent: a selected tuple keeps its multiplicity counter (§5.2)
//! and its tag (§5.3's unary-operator table).

use crate::delta::DeltaRelation;
use crate::error::Result;
use crate::predicate::Condition;
use crate::relation::Relation;
use crate::tagged::TaggedRelation;

/// σ_C over a plain counted relation.
pub fn select(rel: &Relation, cond: &Condition) -> Result<Relation> {
    let mut out = Relation::empty(rel.schema().clone());
    for (t, c) in rel.iter() {
        if cond.eval(rel.schema(), t)? {
            out.insert(t.clone(), c)?;
        }
    }
    Ok(out)
}

/// σ_C over a signed delta (linear: applies to each signed tuple).
pub fn select_delta(rel: &DeltaRelation, cond: &Condition) -> Result<DeltaRelation> {
    let mut out = DeltaRelation::empty(rel.schema().clone());
    for (t, c) in rel.iter() {
        if cond.eval(rel.schema(), t)? {
            out.add(t.clone(), c);
        }
    }
    Ok(out)
}

/// σ_C over a tagged relation (tags pass through unchanged).
pub fn select_tagged(rel: &TaggedRelation, cond: &Condition) -> Result<TaggedRelation> {
    let mut out = TaggedRelation::empty(rel.schema().clone());
    for (t, tag, c) in rel.iter() {
        if cond.eval(rel.schema(), t)? {
            out.add(t.clone(), tag.through_unary(), c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Atom;
    use crate::schema::Schema;
    use crate::tagged::Tag;
    use crate::tuple::Tuple;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn lt10() -> Condition {
        Atom::lt_const("A", 10).into()
    }

    #[test]
    fn select_filters_and_keeps_counts() {
        let r = Relation::from_rows(ab(), [[1, 2], [1, 2], [12, 9]]).unwrap();
        let s = select(&r, &lt10()).unwrap();
        assert_eq!(s.count(&Tuple::from([1, 2])), 2);
        assert!(!s.contains(&Tuple::from([12, 9])));
    }

    #[test]
    fn select_propagates_eval_errors() {
        let r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let bad: Condition = Atom::lt_const("Z", 10).into();
        assert!(select(&r, &bad).is_err());
    }

    #[test]
    fn select_delta_keeps_signs() {
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([1, 2]), -3);
        d.add(Tuple::from([11, 2]), 5);
        let s = select_delta(&d, &lt10()).unwrap();
        assert_eq!(s.count(&Tuple::from([1, 2])), -3);
        assert_eq!(s.count(&Tuple::from([11, 2])), 0);
    }

    #[test]
    fn select_tagged_keeps_tags() {
        let mut tr = TaggedRelation::empty(ab());
        tr.add(Tuple::from([1, 2]), Tag::Delete, 2);
        tr.add(Tuple::from([11, 2]), Tag::Insert, 1);
        let s = select_tagged(&tr, &lt10()).unwrap();
        assert_eq!(s.count(&Tuple::from([1, 2]), Tag::Delete), 2);
        assert!(s.count(&Tuple::from([11, 2]), Tag::Insert) == 0);
    }

    #[test]
    fn select_true_is_identity() {
        let r = Relation::from_rows(ab(), [[1, 2], [3, 4]]).unwrap();
        assert_eq!(select(&r, &Condition::always_true()).unwrap(), r);
    }

    #[test]
    fn select_false_is_empty() {
        let r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        assert!(select(&r, &Condition::always_false()).unwrap().is_empty());
    }
}
