//! Relational algebra operators, redefined for multiplicity counters (§5.2)
//! and insert/delete tags (§5.3).
//!
//! Every operator comes in three flavours:
//! * over [`crate::relation::Relation`] — plain counted multisets (used by
//!   full re-evaluation and view storage),
//! * over [`crate::delta::DeltaRelation`] — signed counted multisets (used
//!   by the signed-count differential engine; join is bilinear here),
//! * over [`crate::tagged::TaggedRelation`] — the paper-literal tagged
//!   pipeline, where joins combine tags via the §5.3 table and
//!   `insert ⋈ delete` tuples "do not emerge".
//!
//! The §5.2 redefinitions are observed throughout: projection sums the
//! counters of collapsing tuples, and join multiplies the counters of the
//! joined tuples (`t(N) = u(N) * v(N)`), which makes projection distribute
//! over difference and join distribute over union — the identities the
//! differential algorithms depend on.

mod join;
mod product;
mod project;
mod select;
mod setops;

pub use join::{
    join_key_positions, natural_join, natural_join_delta, natural_join_delta_with,
    natural_join_tagged, natural_join_tagged_with, natural_join_with, PARTITION_THRESHOLD,
};
pub use product::{product, product_delta, product_tagged};
pub use project::{project, project_delta, project_tagged};
pub use select::{select, select_delta, select_tagged};
pub use setops::{difference, union};
