//! Cross product ×.
//!
//! The §4 normal form `π_X(σ_C(R₁ × … × R_p))` is built on cross products
//! of relations with *disjoint* schemes. Counters multiply (§5.2's join
//! redefinition restricted to an empty join key), and tags combine via the
//! §5.3 table.

use crate::algebra::join::{mul_counts, mul_signed};
use crate::delta::DeltaRelation;
use crate::error::Result;
use crate::relation::Relation;
use crate::tagged::TaggedRelation;

/// `l × r` over plain counted relations (schemes must be disjoint).
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    let schema = l.schema().product(r.schema())?;
    let mut out = Relation::empty(schema);
    for (lt, lc) in l.iter() {
        for (rt, rc) in r.iter() {
            out.insert(lt.concat(rt), mul_counts(lc, rc)?)?;
        }
    }
    Ok(out)
}

/// `l × r` over signed deltas (signed counts multiply; bilinear).
pub fn product_delta(l: &DeltaRelation, r: &DeltaRelation) -> Result<DeltaRelation> {
    let schema = l.schema().product(r.schema())?;
    let mut out = DeltaRelation::empty(schema);
    for (lt, lc) in l.iter() {
        for (rt, rc) in r.iter() {
            out.add(lt.concat(rt), mul_signed(lc, rc)?);
        }
    }
    Ok(out)
}

/// `l × r` over tagged relations; `insert × delete` pairs are dropped
/// ("do not emerge", §5.3).
pub fn product_tagged(l: &TaggedRelation, r: &TaggedRelation) -> Result<TaggedRelation> {
    let schema = l.schema().product(r.schema())?;
    let mut out = TaggedRelation::empty(schema);
    for (lt, ltag, lc) in l.iter() {
        for (rt, rtag, rc) in r.iter() {
            if let Some(tag) = ltag.combine(rtag) {
                out.add(lt.concat(rt), tag, mul_counts(lc, rc)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tagged::Tag;
    use crate::tuple::Tuple;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn cd() -> Schema {
        Schema::new(["C", "D"]).unwrap()
    }

    #[test]
    fn product_concatenates_and_multiplies_counts() {
        let l = Relation::from_rows(ab(), [[1, 2], [1, 2]]).unwrap(); // count 2
        let r = Relation::from_rows(cd(), [[3, 4], [3, 4], [3, 4]]).unwrap(); // count 3
        let p = product(&l, &r).unwrap();
        assert_eq!(p.count(&Tuple::from([1, 2, 3, 4])), 6);
        assert_eq!(p.schema().attrs().len(), 4);
    }

    #[test]
    fn product_rejects_overlapping_schemes() {
        let l = Relation::empty(ab());
        let r = Relation::empty(Schema::new(["B", "C"]).unwrap());
        assert!(product(&l, &r).is_err());
    }

    #[test]
    fn product_with_empty_is_empty() {
        let l = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let r = Relation::empty(cd());
        assert!(product(&l, &r).unwrap().is_empty());
    }

    #[test]
    fn delta_product_multiplies_signs() {
        let mut l = DeltaRelation::empty(ab());
        l.add(Tuple::from([1, 2]), -2);
        let mut r = DeltaRelation::empty(cd());
        r.add(Tuple::from([3, 4]), 3);
        let p = product_delta(&l, &r).unwrap();
        assert_eq!(p.count(&Tuple::from([1, 2, 3, 4])), -6);
    }

    #[test]
    fn product_counter_overflow_is_an_error() {
        use crate::error::RelError;
        let mut l = Relation::empty(ab());
        l.insert(Tuple::from([1, 2]), u64::MAX / 2 + 1).unwrap();
        let mut r = Relation::empty(cd());
        r.insert(Tuple::from([3, 4]), 2).unwrap();
        assert!(matches!(
            product(&l, &r).unwrap_err(),
            RelError::CounterOverflow(_)
        ));
    }

    #[test]
    fn tagged_product_applies_combination_table() {
        let mut l = TaggedRelation::empty(ab());
        l.add(Tuple::from([1, 2]), Tag::Insert, 1);
        let mut r = TaggedRelation::empty(cd());
        r.add(Tuple::from([3, 4]), Tag::Delete, 1);
        r.add(Tuple::from([5, 6]), Tag::Old, 1);
        let p = product_tagged(&l, &r).unwrap();
        // insert × delete vanished; insert × old survives as insert.
        assert_eq!(p.count(&Tuple::from([1, 2, 3, 4]), Tag::Insert), 0);
        assert_eq!(p.count(&Tuple::from([1, 2, 3, 4]), Tag::Delete), 0);
        assert_eq!(p.count(&Tuple::from([1, 2, 5, 6]), Tag::Insert), 1);
    }
}
