//! Union and difference over counted relations.
//!
//! §5.1 updates a select view by `v ∪ σ_C(i_r) − σ_C(d_r)`; with §5.2's
//! counters, union *adds* and difference *subtracts* multiplicities. A
//! difference that would drive a counter negative is an error — under the
//! paper's assumptions (`d_r ⊆ r`, views consistent with their bases) it
//! cannot happen, so surfacing it loudly catches maintenance bugs.

use crate::error::Result;
use crate::relation::Relation;

/// `l ∪ r` with counter addition.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation> {
    l.schema().require_same(r.schema())?;
    let mut out = l.clone();
    for (t, c) in r.iter() {
        out.insert(t.clone(), c)?;
    }
    Ok(out)
}

/// `l − r` with counter subtraction; errors if any counter would go
/// negative.
pub fn difference(l: &Relation, r: &Relation) -> Result<Relation> {
    l.schema().require_same(r.schema())?;
    let mut out = l.clone();
    for (t, c) in r.iter() {
        out.remove(t, c)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RelError;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    #[test]
    fn union_adds_counters() {
        let l = Relation::from_rows(ab(), [[1, 2], [1, 2]]).unwrap();
        let r = Relation::from_rows(ab(), [[1, 2], [3, 4]]).unwrap();
        let u = union(&l, &r).unwrap();
        assert_eq!(u.count(&Tuple::from([1, 2])), 3);
        assert_eq!(u.count(&Tuple::from([3, 4])), 1);
    }

    #[test]
    fn difference_subtracts_counters() {
        let l = Relation::from_rows(ab(), [[1, 2], [1, 2], [3, 4]]).unwrap();
        let r = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let d = difference(&l, &r).unwrap();
        assert_eq!(d.count(&Tuple::from([1, 2])), 1);
        assert_eq!(d.count(&Tuple::from([3, 4])), 1);
    }

    #[test]
    fn difference_rejects_negative() {
        let l = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let r = Relation::from_rows(ab(), [[1, 2], [1, 2]]).unwrap();
        assert!(matches!(
            difference(&l, &r).unwrap_err(),
            RelError::NegativeCount(_)
        ));
    }

    #[test]
    fn set_ops_require_same_scheme() {
        let l = Relation::empty(ab());
        let r = Relation::empty(Schema::new(["X", "Y"]).unwrap());
        assert!(union(&l, &r).is_err());
        assert!(difference(&l, &r).is_err());
    }

    #[test]
    fn union_with_empty_is_identity() {
        let l = Relation::from_rows(ab(), [[1, 2]]).unwrap();
        let e = Relation::empty(ab());
        assert_eq!(union(&l, &e).unwrap(), l);
        assert_eq!(difference(&l, &e).unwrap(), l);
    }
}
