//! Projection π_X, redefined with multiplicity counters (§5.2).
//!
//! Example 5.1 of the paper shows why set-semantics projection breaks
//! differential maintenance: π does not distribute over difference. The fix
//! (the paper's alternative 1) attaches a counter `N` to every view tuple
//! and redefines π so that collapsing tuples *sum* their counters:
//!
//! > π_X(r) = { t(X′) | X′ = X ∪ {N} and ∃u ∈ r (u(X) = t(X) ∧
//! >            t(N) = Σ_{w∈r, w(X)=t(X)} w(N)) }
//!
//! With that redefinition `π_X(r₁ − r₂) = π_X(r₁) − π_X(r₂)` holds, which
//! `ivm::differential::project` relies on (and which our property tests
//! check).

use crate::attribute::AttrName;
use crate::delta::DeltaRelation;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tagged::TaggedRelation;
use crate::tuple::projection_positions;

fn target_schema(from: &Schema, attrs: &[AttrName]) -> Result<Schema> {
    from.project(attrs.iter())
}

/// π_X over a plain counted relation: counters of collapsing tuples add up.
pub fn project(rel: &Relation, attrs: &[AttrName]) -> Result<Relation> {
    let onto = target_schema(rel.schema(), attrs)?;
    let pos = projection_positions(rel.schema(), &onto)?;
    let mut out = Relation::empty(onto);
    for (t, c) in rel.iter() {
        out.insert(t.project_positions(&pos), c)?;
    }
    Ok(out)
}

/// π_X over a signed delta (linear in the signed counts).
pub fn project_delta(rel: &DeltaRelation, attrs: &[AttrName]) -> Result<DeltaRelation> {
    let onto = target_schema(rel.schema(), attrs)?;
    let pos = projection_positions(rel.schema(), &onto)?;
    let mut out = DeltaRelation::empty(onto);
    for (t, c) in rel.iter() {
        out.add(t.project_positions(&pos), c);
    }
    Ok(out)
}

/// π_X over a tagged relation: tuples collapse *per tag* (§5.3 — a unary
/// operator preserves the operand's tag), counters add within each tag.
pub fn project_tagged(rel: &TaggedRelation, attrs: &[AttrName]) -> Result<TaggedRelation> {
    let onto = target_schema(rel.schema(), attrs)?;
    let pos = projection_positions(rel.schema(), &onto)?;
    let mut out = TaggedRelation::empty(onto);
    for (t, tag, c) in rel.iter() {
        out.add(t.project_positions(&pos), tag.through_unary(), c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::setops::difference;
    use crate::tagged::Tag;
    use crate::tuple::Tuple;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn b() -> Vec<AttrName> {
        vec!["B".into()]
    }

    #[test]
    fn counters_sum_on_collapse() {
        // Example 5.1's relation: {(1,10), (2,10), (3,20)}.
        let r = Relation::from_rows(ab(), [[1, 10], [2, 10], [3, 20]]).unwrap();
        let v = project(&r, &b()).unwrap();
        assert_eq!(v.count(&Tuple::from([10])), 2);
        assert_eq!(v.count(&Tuple::from([20])), 1);
    }

    #[test]
    fn example_51_delete_with_counters() {
        // delete(R, {(1,10)}) must leave 10 in the view (count 2 → 1).
        let r = Relation::from_rows(ab(), [[1, 10], [2, 10], [3, 20]]).unwrap();
        let d = Relation::from_rows(ab(), [[1, 10]]).unwrap();
        let v_before = project(&r, &b()).unwrap();
        let v_delta = project(&d, &b()).unwrap();
        let v_after = difference(&v_before, &v_delta).unwrap();
        assert_eq!(v_after.count(&Tuple::from([10])), 1);
        assert_eq!(v_after.count(&Tuple::from([20])), 1);
    }

    #[test]
    fn distributes_over_difference_with_counters() {
        // π_X(r1 − r2) = π_X(r1) − π_X(r2) under counted semantics.
        let r1 = Relation::from_rows(ab(), [[1, 10], [2, 10], [3, 20], [4, 20]]).unwrap();
        let r2 = Relation::from_rows(ab(), [[2, 10], [3, 20]]).unwrap();
        let lhs = project(&difference(&r1, &r2).unwrap(), &b()).unwrap();
        let rhs = difference(&project(&r1, &b()).unwrap(), &project(&r2, &b()).unwrap()).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn projection_onto_unknown_attr_fails() {
        let r = Relation::from_rows(ab(), [[1, 10]]).unwrap();
        assert!(project(&r, &["Z".into()]).is_err());
    }

    #[test]
    fn projection_reorders() {
        let r = Relation::from_rows(ab(), [[1, 10]]).unwrap();
        let v = project(&r, &["B".into(), "A".into()]).unwrap();
        assert!(v.contains(&Tuple::from([10, 1])));
    }

    #[test]
    fn delta_projection_nets_signed_counts() {
        let mut d = DeltaRelation::empty(ab());
        d.add(Tuple::from([1, 10]), 1);
        d.add(Tuple::from([2, 10]), -1);
        let p = project_delta(&d, &b()).unwrap();
        // +1 and −1 both project to (10): net zero.
        assert!(p.is_empty());
    }

    #[test]
    fn tagged_projection_separates_tags() {
        let mut tr = TaggedRelation::empty(ab());
        tr.add(Tuple::from([1, 10]), Tag::Insert, 1);
        tr.add(Tuple::from([2, 10]), Tag::Delete, 1);
        tr.add(Tuple::from([3, 10]), Tag::Insert, 1);
        let p = project_tagged(&tr, &b()).unwrap();
        assert_eq!(p.count(&Tuple::from([10]), Tag::Insert), 2);
        assert_eq!(p.count(&Tuple::from([10]), Tag::Delete), 1);
    }

    #[test]
    fn project_all_attrs_is_identity_on_counts() {
        let r = Relation::from_rows(ab(), [[1, 10], [1, 10]]).unwrap();
        let v = project(&r, &["A".into(), "B".into()]).unwrap();
        assert_eq!(v, r);
    }
}
