//! Attribute names.
//!
//! The paper treats attributes as globally named variables (`A`, `B`, `C`,
//! …) shared between relation schemes and selection conditions. We model an
//! attribute name as a cheap-to-clone interned string.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// The name of an attribute (a "variable" in the paper's §4 terminology).
///
/// Clones are cheap (`Arc<str>` internally), and names compare by string
/// content, so attribute identity is purely nominal — two relations that
/// mention attribute `B` share that attribute, which is what makes natural
/// joins and cross-scheme selection conditions (`B = C`) work.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Create an attribute name.
    pub fn new(name: impl AsRef<str>) -> Self {
        AttrName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Derive a qualified name, e.g. `qualify("S")` on `B` yields `S.B`.
    ///
    /// Used when renaming apart the shared attributes of a natural join so
    /// the view can be put in the cross-product normal form of §4.
    pub fn qualify(&self, prefix: &str) -> AttrName {
        AttrName(Arc::from(format!("{prefix}.{}", self.0).as_str()))
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::new(s)
    }
}

impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_nominal() {
        assert_eq!(AttrName::new("B"), AttrName::from("B"));
        assert_ne!(AttrName::new("B"), AttrName::new("C"));
    }

    #[test]
    fn borrow_str_lookup() {
        let mut set = HashSet::new();
        set.insert(AttrName::new("price"));
        assert!(set.contains("price"));
        assert!(!set.contains("cost"));
    }

    #[test]
    fn qualify_builds_dotted_name() {
        assert_eq!(AttrName::new("B").qualify("S").as_str(), "S.B");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![AttrName::new("C"), AttrName::new("A"), AttrName::new("B")];
        v.sort();
        assert_eq!(v, vec!["A".into(), "B".into(), "C".into()]);
    }
}
