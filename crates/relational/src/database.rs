//! An in-memory database of named base relations.
//!
//! Base relations are sets (every multiplicity counter is 1 — §5.2: "for
//! base relations this attribute need not be explicitly stored since its
//! value in every tuple is always one"); the database enforces that by
//! validating §3's disjointness conditions when a [`Transaction`] is
//! applied: inserted tuples must be absent, deleted tuples present.
//! Application is atomic — either the whole transaction validates and
//! applies, or nothing changes.

use std::collections::BTreeMap;
use std::fmt;

use crate::attribute::AttrName;
use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::transaction::Transaction;
use crate::tuple::Tuple;

/// A database instance: a set of named base relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create an empty base relation.
    pub fn create(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(RelError::DuplicateRelation(name));
        }
        self.relations.insert(name, Relation::empty(schema));
        Ok(())
    }

    /// Install a fully-built relation under `name`, preserving its
    /// multiplicity counters exactly. This is the recovery path used by the
    /// storage layer when a decoded snapshot is reassembled; unlike
    /// [`Database::load`] it does not force set semantics, so the caller is
    /// trusted to hand over a relation that satisfied the database's
    /// invariants when it was persisted.
    pub fn adopt(&mut self, name: impl Into<String>, relation: Relation) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(RelError::DuplicateRelation(name));
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Bulk-load rows into a base relation (each row must be new — base
    /// relations are sets).
    pub fn load<T: Into<Tuple>>(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = T>,
    ) -> Result<()> {
        let rel = self.relation_mut(name)?;
        for row in rows {
            let t = row.into();
            if rel.contains(&t) {
                return Err(RelError::InsertExists(format!("{t} already in {name}")));
            }
            rel.insert(t, 1)?;
        }
        Ok(())
    }

    /// Look up a base relation.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_owned()))
    }

    fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_owned()))
    }

    /// Scheme of a base relation.
    pub fn schema(&self, name: &str) -> Result<&Schema> {
        Ok(self.relation(name)?.schema())
    }

    /// True when the relation exists.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all base relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Validate a transaction against the current state: for every touched
    /// relation the tuples of `i_r` must be absent and those of `d_r`
    /// present, and arities must match (§3 disjointness of `r`, `i_r`,
    /// `d_r`).
    pub fn validate(&self, txn: &Transaction) -> Result<()> {
        for name in txn.touched() {
            let rel = self.relation(name)?;
            for t in txn.inserted(name) {
                t.check_arity(rel.schema())?;
                if rel.contains(t) {
                    return Err(RelError::InsertExists(format!("{t} already in {name}")));
                }
            }
            for t in txn.deleted(name) {
                t.check_arity(rel.schema())?;
                if !rel.contains(t) {
                    return Err(RelError::DeleteMissing(format!("{t} not in {name}")));
                }
            }
        }
        Ok(())
    }

    /// Apply a transaction atomically: validate everything first, then
    /// mutate (`τ(r) = r ∪ i_r − d_r` for every touched relation).
    pub fn apply(&mut self, txn: &Transaction) -> Result<()> {
        self.validate(txn)?;
        for name in txn.touched() {
            let rel = self
                .relations
                .get_mut(name)
                .expect("validated relation exists");
            for t in txn.inserted(name) {
                rel.insert(t.clone(), 1)?;
            }
            for t in txn.deleted(name) {
                rel.remove(t, 1)?;
            }
        }
        Ok(())
    }

    /// Total number of tuples across all base relations.
    pub fn total_tuples(&self) -> u64 {
        self.relations.values().map(Relation::total_count).sum()
    }

    /// Ensure a join-key hash index exists on `name` over the named
    /// attributes (treated as a set). Returns `true` when a new index was
    /// built, `false` when an equivalent one already existed.
    pub fn ensure_index(&mut self, name: &str, attrs: &[AttrName]) -> Result<bool> {
        let rel = self.relation_mut(name)?;
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| rel.schema().require(a))
            .collect::<Result<_>>()?;
        rel.create_index(&positions)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name} = {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
        db.load("R", [[1, 2], [5, 10]]).unwrap();
        db
    }

    #[test]
    fn create_and_load() {
        let d = db();
        assert!(d.contains_relation("R"));
        assert_eq!(d.relation("R").unwrap().total_count(), 2);
        assert!(d.relation("Z").is_err());
    }

    #[test]
    fn create_duplicate_fails() {
        let mut d = db();
        assert!(matches!(
            d.create("R", Schema::new(["X"]).unwrap()).unwrap_err(),
            RelError::DuplicateRelation(_)
        ));
    }

    #[test]
    fn load_rejects_duplicates() {
        let mut d = db();
        assert!(d.load("R", [[1, 2]]).is_err());
    }

    #[test]
    fn apply_transaction() {
        let mut d = db();
        let mut t = Transaction::new();
        t.insert("R", [9, 9]).unwrap();
        t.delete("R", [1, 2]).unwrap();
        d.apply(&t).unwrap();
        let r = d.relation("R").unwrap();
        assert!(r.contains(&Tuple::from([9, 9])));
        assert!(!r.contains(&Tuple::from([1, 2])));
        assert_eq!(r.total_count(), 2);
    }

    #[test]
    fn apply_validates_disjointness_atomically() {
        let mut d = db();
        let mut t = Transaction::new();
        t.insert("R", [9, 9]).unwrap();
        t.insert("R", [1, 2]).unwrap(); // already present → must fail
        let before = d.relation("R").unwrap().clone();
        assert!(matches!(
            d.apply(&t).unwrap_err(),
            RelError::InsertExists(_)
        ));
        assert_eq!(d.relation("R").unwrap(), &before, "atomic: nothing applied");
    }

    #[test]
    fn apply_rejects_missing_delete() {
        let mut d = db();
        let mut t = Transaction::new();
        t.delete("R", [7, 7]).unwrap();
        assert!(matches!(
            d.apply(&t).unwrap_err(),
            RelError::DeleteMissing(_)
        ));
    }

    #[test]
    fn apply_rejects_bad_arity() {
        let mut d = db();
        let mut t = Transaction::new();
        t.insert("R", [1]).unwrap();
        assert!(matches!(
            d.apply(&t).unwrap_err(),
            RelError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn ensure_index_builds_once_and_apply_maintains() {
        let mut d = db();
        assert!(d.ensure_index("R", &["B".into()]).unwrap());
        assert!(!d.ensure_index("R", &["B".into()]).unwrap());
        assert!(d.ensure_index("Z", &["B".into()]).is_err());
        assert!(d.ensure_index("R", &["Z".into()]).is_err());
        let mut t = Transaction::new();
        t.insert("R", [9, 9]).unwrap();
        t.delete("R", [1, 2]).unwrap();
        d.apply(&t).unwrap();
        let r = d.relation("R").unwrap();
        assert_eq!(r.index_count(), 1);
        r.verify_indexes().unwrap();
    }

    #[test]
    fn multi_relation_transaction() {
        let mut d = db();
        d.create("S", Schema::new(["C"]).unwrap()).unwrap();
        let mut t = Transaction::new();
        t.insert("R", [7, 7]).unwrap();
        t.insert("S", [3]).unwrap();
        d.apply(&t).unwrap();
        assert_eq!(d.total_tuples(), 4);
    }
}
