//! Relation schemes.
//!
//! A scheme is an ordered list of distinct attribute names (the paper's
//! `R = {A, B}`). Order matters only for tuple layout; all set-style
//! operations (intersection with a condition's variables, disjointness for
//! cross products, the `Y₁ = R ∩ Y` split of Definition 4.1) treat the
//! scheme as a set.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::attribute::AttrName;
use crate::error::{RelError, Result};

/// An ordered relation scheme with O(1) attribute lookup.
///
/// Cheap to clone: the attribute list and index are shared behind an `Arc`.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    attrs: Vec<AttrName>,
    index: HashMap<AttrName, usize>,
}

impl Schema {
    /// Build a scheme from attribute names, rejecting duplicates.
    pub fn new<I, A>(attrs: I) -> Result<Self>
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrName>,
    {
        let attrs: Vec<AttrName> = attrs.into_iter().map(Into::into).collect();
        let mut index = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if index.insert(a.clone(), i).is_some() {
                return Err(RelError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner { attrs, index }),
        })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.attrs.len()
    }

    /// True when the scheme has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.attrs.is_empty()
    }

    /// The attributes in declaration order.
    pub fn attrs(&self) -> &[AttrName] {
        &self.inner.attrs
    }

    /// Position of an attribute in the tuple layout.
    pub fn position(&self, attr: &AttrName) -> Option<usize> {
        self.inner.index.get(attr).copied()
    }

    /// Position of an attribute, as an error if absent.
    pub fn require(&self, attr: &AttrName) -> Result<usize> {
        self.position(attr)
            .ok_or_else(|| RelError::UnknownAttribute {
                attr: attr.clone(),
                scheme: self.to_string(),
            })
    }

    /// True when the scheme contains the attribute.
    pub fn contains(&self, attr: &AttrName) -> bool {
        self.inner.index.contains_key(attr)
    }

    /// Attributes shared with another scheme, in this scheme's order.
    pub fn intersection(&self, other: &Schema) -> Vec<AttrName> {
        self.inner
            .attrs
            .iter()
            .filter(|a| other.contains(a))
            .cloned()
            .collect()
    }

    /// True when the two schemes share no attribute.
    pub fn is_disjoint(&self, other: &Schema) -> bool {
        self.inner.attrs.iter().all(|a| !other.contains(a))
    }

    /// Concatenate two disjoint schemes (cross-product scheme, §4 normal
    /// form). Errors with the shared attributes if they overlap.
    pub fn product(&self, other: &Schema) -> Result<Schema> {
        let shared = self.intersection(other);
        if !shared.is_empty() {
            return Err(RelError::SchemesNotDisjoint(shared));
        }
        Schema::new(self.attrs().iter().chain(other.attrs()).cloned())
    }

    /// Scheme of the natural join `R ⋈ S`: `R ∪ S`, with `R`'s attributes
    /// first and `S`'s non-shared attributes appended in order.
    pub fn join(&self, other: &Schema) -> Schema {
        let attrs: Vec<AttrName> = self
            .attrs()
            .iter()
            .chain(other.attrs().iter().filter(|a| !self.contains(a)))
            .cloned()
            .collect();
        Schema::new(attrs).expect("join of valid schemes cannot duplicate attributes")
    }

    /// Sub-scheme for a projection `π_X`; preserves the order given in `X`.
    pub fn project<'a, I>(&self, attrs: I) -> Result<Schema>
    where
        I: IntoIterator<Item = &'a AttrName>,
    {
        let mut picked = Vec::new();
        for a in attrs {
            self.require(a)?;
            picked.push(a.clone());
        }
        Schema::new(picked)
    }

    /// True when both schemes list the same attributes in the same order
    /// (required by union/difference).
    pub fn same_as(&self, other: &Schema) -> bool {
        self.attrs() == other.attrs()
    }

    /// Require identical schemes, for union/difference operands.
    pub fn require_same(&self, other: &Schema) -> Result<()> {
        if self.same_as(other) {
            Ok(())
        } else {
            Err(RelError::SchemeMismatch {
                left: self.to_string(),
                right: other.to_string(),
            })
        }
    }

    /// Rename every attribute through `f`, preserving order.
    pub fn rename(&self, f: impl Fn(&AttrName) -> AttrName) -> Result<Schema> {
        Schema::new(self.attrs().iter().map(f))
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}

impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn bc() -> Schema {
        Schema::new(["B", "C"]).unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Schema::new(["A", "A"]).unwrap_err(),
            RelError::DuplicateAttribute("A".into())
        );
    }

    #[test]
    fn positions_follow_declaration_order() {
        let s = ab();
        assert_eq!(s.position(&"A".into()), Some(0));
        assert_eq!(s.position(&"B".into()), Some(1));
        assert_eq!(s.position(&"Z".into()), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn require_reports_scheme() {
        let err = ab().require(&"Z".into()).unwrap_err();
        assert!(err.to_string().contains("{A, B}"));
    }

    #[test]
    fn intersection_and_disjointness() {
        assert_eq!(ab().intersection(&bc()), vec![AttrName::new("B")]);
        assert!(!ab().is_disjoint(&bc()));
        let cd = Schema::new(["C", "D"]).unwrap();
        assert!(ab().is_disjoint(&cd));
    }

    #[test]
    fn product_requires_disjoint() {
        let cd = Schema::new(["C", "D"]).unwrap();
        let p = ab().product(&cd).unwrap();
        assert_eq!(p.attrs(), &["A".into(), "B".into(), "C".into(), "D".into()]);
        assert!(matches!(
            ab().product(&bc()).unwrap_err(),
            RelError::SchemesNotDisjoint(_)
        ));
    }

    #[test]
    fn join_scheme_unions_attributes() {
        let j = ab().join(&bc());
        assert_eq!(j.attrs(), &["A".into(), "B".into(), "C".into()]);
    }

    #[test]
    fn project_preserves_requested_order() {
        let abc = ab().join(&bc());
        let p = abc.project(&["C".into(), "A".into()]).unwrap();
        assert_eq!(p.attrs(), &["C".into(), "A".into()]);
        assert!(abc.project(&["Z".into()]).is_err());
    }

    #[test]
    fn equality_requires_same_order() {
        let ba = Schema::new(["B", "A"]).unwrap();
        assert_ne!(ab(), ba);
        assert!(ab().require_same(&ba).is_err());
        assert_eq!(ab(), Schema::new(["A", "B"]).unwrap());
    }

    #[test]
    fn rename_qualifies() {
        let s = ab().rename(|a| a.qualify("R")).unwrap();
        assert_eq!(s.attrs(), &["R.A".into(), "R.B".into()]);
    }

    #[test]
    fn display() {
        assert_eq!(ab().to_string(), "{A, B}");
        assert_eq!(
            Schema::new(Vec::<AttrName>::new()).unwrap().to_string(),
            "{}"
        );
    }
}
