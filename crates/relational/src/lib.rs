//! Relational substrate for the reproduction of *Efficiently Updating
//! Materialized Views* (Blakeley, Larson & Tompa, SIGMOD 1986).
//!
//! This crate implements everything the paper assumes from its database
//! environment (§3, §5.2–5.3 redefinitions):
//!
//! * values on discrete ordered domains ([`value::Value`]),
//! * relation schemes and tuples ([`schema::Schema`], [`tuple::Tuple`]),
//! * **counted multiset relations** — every tuple carries a multiplicity
//!   counter as required by the §5.2 redefinition of projection
//!   ([`relation::Relation`]),
//! * signed deltas ([`delta::DeltaRelation`]) and **tagged relations**
//!   implementing the §5.3 insert/delete/old tag algebra
//!   ([`tagged::TaggedRelation`]),
//! * the SPJ algebra with counter- and tag-aware σ, π, ⋈, ×, ∪, −
//!   ([`algebra`]),
//! * selection conditions in the Rosenkrantz–Hunt class
//!   ([`predicate::Condition`]),
//! * SPJ expressions and their normal form `π_X(σ_C(R₁ ⋈ … ⋈ R_p))`
//!   ([`expr::SpjExpr`], [`expr::Expr`]),
//! * net-effect transactions and an atomic in-memory database
//!   ([`transaction::Transaction`], [`database::Database`]).
//!
//! The paper's actual contribution — irrelevant-update detection and
//! differential re-evaluation — lives in the `ivm` crate, built on top of
//! this one.
//!
//! # Example
//!
//! ```
//! use ivm_relational::prelude::*;
//!
//! let mut db = Database::new();
//! db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
//! db.create("S", Schema::new(["B", "C"]).unwrap()).unwrap();
//! db.load("R", [[1, 10], [2, 20]]).unwrap();
//! db.load("S", [[10, 100]]).unwrap();
//!
//! // π_{A,C}(σ_{A<10}(R ⋈ S))
//! let view = SpjExpr::new(
//!     ["R", "S"],
//!     Atom::lt_const("A", 10).into(),
//!     Some(vec!["A".into(), "C".into()]),
//! );
//! let v = view.eval(&db).unwrap();
//! assert_eq!(v.total_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algebra;
pub mod attribute;
pub mod database;
pub mod delta;
pub mod error;
pub mod expr;
pub mod fxhash;
pub mod index;
pub mod parser;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod tagged;
pub mod transaction;
pub mod tuple;
pub mod value;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::attribute::AttrName;
    pub use crate::database::Database;
    pub use crate::delta::DeltaRelation;
    pub use crate::error::{RelError, Result};
    pub use crate::expr::{Expr, SpjExpr};
    pub use crate::index::JoinIndex;
    pub use crate::parser::{parse_atom, parse_condition, parse_schema, parse_tuple};
    pub use crate::predicate::{Atom, CompOp, Condition, Conjunction, Rhs};
    pub use crate::relation::Relation;
    pub use crate::schema::Schema;
    pub use crate::tagged::{Tag, TaggedRelation};
    pub use crate::transaction::Transaction;
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
}
