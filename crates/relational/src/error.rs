//! Error type for the relational substrate.

use std::fmt;

use crate::attribute::AttrName;

/// Errors raised by schema, algebra, transaction and database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// An attribute was mentioned that the scheme does not contain.
    UnknownAttribute {
        /// The offending attribute.
        attr: AttrName,
        /// The scheme it was looked up in, rendered for diagnostics.
        scheme: String,
    },
    /// A scheme declared the same attribute twice.
    DuplicateAttribute(AttrName),
    /// Two operand schemes were required to be disjoint (cross product, §4
    /// normal form) but share attributes.
    SchemesNotDisjoint(Vec<AttrName>),
    /// Two operand schemes were required to be identical (union, difference)
    /// but differ.
    SchemeMismatch {
        /// Left scheme rendered for diagnostics.
        left: String,
        /// Right scheme rendered for diagnostics.
        right: String,
    },
    /// A tuple's arity does not match its scheme.
    ArityMismatch {
        /// Number of attributes in the scheme.
        expected: usize,
        /// Number of values in the tuple.
        got: usize,
    },
    /// A named base relation does not exist in the database.
    UnknownRelation(String),
    /// A relation with this name already exists in the database.
    DuplicateRelation(String),
    /// §3 requires `r`, `i_r`, `d_r` to be mutually disjoint: the inserted
    /// tuple is already present in the relation.
    InsertExists(String),
    /// §3 requires deleted tuples to be present in the relation.
    DeleteMissing(String),
    /// Applying a delta drove a tuple's multiplicity counter negative (§5.2
    /// counters must stay non-negative; this indicates an inconsistent
    /// delta).
    NegativeCount(String),
    /// A §5.2 counter product (`t(N) = u(N) * v(N)`) or a counter
    /// conversion exceeded the machine integer range. Wrapping silently
    /// would corrupt every downstream multiplicity, so the operation is
    /// refused instead.
    CounterOverflow(String),
    /// A join index was requested over an invalid key (empty, or with a
    /// column position outside the relation's scheme).
    InvalidIndexKey(String),
    /// A predicate compared or did arithmetic on incompatible values (e.g.
    /// `x < y + c` over a string attribute).
    TypeError(String),
    /// Text could not be parsed (see `crate::parser`).
    Parse(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownAttribute { attr, scheme } => {
                write!(f, "attribute {attr} not in scheme {scheme}")
            }
            RelError::DuplicateAttribute(a) => write!(f, "duplicate attribute {a} in scheme"),
            RelError::SchemesNotDisjoint(shared) => {
                write!(f, "schemes must be disjoint but share: ")?;
                for (i, a) in shared.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            RelError::SchemeMismatch { left, right } => {
                write!(f, "scheme mismatch: {left} vs {right}")
            }
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match scheme arity {expected}"
                )
            }
            RelError::UnknownRelation(name) => write!(f, "unknown base relation {name}"),
            RelError::DuplicateRelation(name) => write!(f, "base relation {name} already exists"),
            RelError::InsertExists(msg) => {
                write!(
                    f,
                    "inserted tuple already present (violates §3 disjointness): {msg}"
                )
            }
            RelError::DeleteMissing(msg) => {
                write!(
                    f,
                    "deleted tuple not present (violates §3 disjointness): {msg}"
                )
            }
            RelError::NegativeCount(msg) => {
                write!(f, "multiplicity counter went negative: {msg}")
            }
            RelError::CounterOverflow(msg) => {
                write!(f, "multiplicity counter overflow: {msg}")
            }
            RelError::InvalidIndexKey(msg) => write!(f, "invalid index key: {msg}"),
            RelError::TypeError(msg) => write!(f, "type error: {msg}"),
            RelError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience result alias for the relational substrate.
pub type Result<T> = std::result::Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::UnknownAttribute {
            attr: "A".into(),
            scheme: "{B, C}".into(),
        };
        assert!(e.to_string().contains('A'));
        assert!(e.to_string().contains("{B, C}"));

        let e = RelError::SchemesNotDisjoint(vec!["B".into(), "C".into()]);
        let s = e.to_string();
        assert!(s.contains("B, C"), "{s}");

        let e = RelError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));

        let e = RelError::CounterOverflow(format!("{} * 2 exceeds u64", u64::MAX));
        assert!(e.to_string().contains("overflow"), "{e}");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelError::UnknownRelation("r".into()));
        assert!(e.to_string().contains('r'));
    }
}
