//! Tuples.
//!
//! A tuple is an ordered vector of [`Value`]s laid out according to a
//! [`Schema`]. Multiplicity counters (§5.2) and insert/delete tags (§5.3)
//! are *not* part of the tuple itself; they are carried by the containing
//! [`crate::relation::Relation`] / [`crate::tagged::TaggedRelation`], which
//! mirrors the paper's treatment of the count attribute `N` as metadata
//! "that need not be explicitly stored" for base relations.

use std::fmt;

use crate::attribute::AttrName;
use crate::error::{RelError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// An ordered vector of values conforming to some scheme.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values in layout order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at a layout position.
    pub fn at(&self, pos: usize) -> &Value {
        &self.0[pos]
    }

    /// Value of the named attribute under the given scheme
    /// (the paper's `t(A)` notation).
    pub fn get(&self, schema: &Schema, attr: &AttrName) -> Result<&Value> {
        Ok(&self.0[schema.require(attr)?])
    }

    /// Check that the tuple fits the scheme's arity.
    pub fn check_arity(&self, schema: &Schema) -> Result<()> {
        if self.arity() == schema.arity() {
            Ok(())
        } else {
            Err(RelError::ArityMismatch {
                expected: schema.arity(),
                got: self.arity(),
            })
        }
    }

    /// Project the tuple onto positions (precomputed via
    /// [`projection_positions`]).
    pub fn project_positions(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Concatenate two tuples (cross product of tuples).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }
}

impl<V: Into<Value>, const N: usize> From<[V; N]> for Tuple {
    fn from(vs: [V; N]) -> Self {
        Tuple::new(vs)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(vs: Vec<Value>) -> Self {
        Tuple(vs)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Precompute the source positions for projecting `from` onto `onto`.
///
/// Every attribute of `onto` must exist in `from`; evaluating a projection
/// then reduces to an index gather per tuple (hot path of §5.2).
pub fn projection_positions(from: &Schema, onto: &Schema) -> Result<Vec<usize>> {
    onto.attrs().iter().map(|a| from.require(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(["A", "B", "C"]).unwrap()
    }

    #[test]
    fn build_and_access() {
        let t = Tuple::from([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.at(1), &Value::Int(2));
        assert_eq!(t.get(&abc(), &"C".into()).unwrap(), &Value::Int(3));
        assert!(t.get(&abc(), &"Z".into()).is_err());
    }

    #[test]
    fn arity_check() {
        let t = Tuple::from([1, 2]);
        assert!(t.check_arity(&abc()).is_err());
        assert!(t.check_arity(&Schema::new(["A", "B"]).unwrap()).is_ok());
    }

    #[test]
    fn projection_via_positions() {
        let s = abc();
        let onto = s.project(&["C".into(), "A".into()]).unwrap();
        let pos = projection_positions(&s, &onto).unwrap();
        assert_eq!(pos, vec![2, 0]);
        let t = Tuple::from([10, 20, 30]);
        assert_eq!(t.project_positions(&pos), Tuple::from([30, 10]));
    }

    #[test]
    fn projection_positions_rejects_unknown() {
        let onto = Schema::new(["Z"]).unwrap();
        assert!(projection_positions(&abc(), &onto).is_err());
    }

    #[test]
    fn concat() {
        let t = Tuple::from([1, 2]).concat(&Tuple::from([3]));
        assert_eq!(t, Tuple::from([1, 2, 3]));
    }

    #[test]
    fn mixed_values_display() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "(1, x)");
    }
}
