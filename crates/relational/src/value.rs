//! Attribute values.
//!
//! The paper (§3) assumes every attribute is defined on a *discrete and
//! finite domain* that can be mapped onto a subset of the natural numbers,
//! and all of its examples use integers. We therefore make [`Value::Int`]
//! the primary value kind; [`Value::Str`] is provided so that example
//! applications can carry human-readable payload columns. Selection
//! conditions that participate in relevance analysis (§4) are restricted to
//! integer-valued attributes — see `ivm::relevance`.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// Values are totally ordered (integers sort before strings) so relations
/// can be displayed and compared deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer on a discrete, ordered domain (§3 of the paper).
    Int(i64),
    /// An opaque string payload. Cheap to clone; never used in arithmetic.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The integer inside, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// The string inside, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// True when the value is an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        let v = Value::Int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert!(v.is_int());
    }

    #[test]
    fn str_accessors() {
        let v = Value::str("widget");
        assert_eq!(v.as_str(), Some("widget"));
        assert_eq!(v.as_int(), None);
        assert!(!v.is_int());
    }

    #[test]
    fn total_order_ints_before_strings() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(3),
            Value::str("a"),
            Value::Int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(-1),
                Value::Int(3),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("x")), Value::str("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }
}
