//! Join-key hash indexes over counted relations.
//!
//! The §5.3 differential join terms substitute a tiny change set for one
//! operand and the *unchanged* old relation for the others. Without
//! indexes every term hash-builds the unchanged side from scratch, so the
//! differential advantage erodes as the change set grows. A [`JoinIndex`]
//! keeps a persistent hash table from a join-key column set to the tuples
//! (and §5.2 multiplicity counters) carrying that key, maintained
//! incrementally by [`crate::relation::Relation`] on every insert/remove;
//! the engine probes it with the accumulated prefix instead of rebuilding.
//!
//! Invariants:
//!
//! * `positions` is sorted, deduplicated, non-empty, and every position is
//!   within the owning relation's scheme arity (validated at creation by
//!   `Relation::create_index`).
//! * For every tuple `t` with relation count `c > 0`, the bucket for
//!   `t`'s key holds the posting `(t, c)`; no other postings exist, and
//!   empty buckets are erased. `verify` checks this from first principles.

use crate::fxhash::FxHashMap;

use crate::error::{RelError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Rough per-`Value` footprint used by the memory estimate (enum payload
/// plus hash-map overhead amortized per stored value).
const VALUE_BYTES: u64 = 32;
/// Rough fixed bucket overhead (hash-map slot + `Vec` headers).
const BUCKET_BYTES: u64 = 48;
/// Rough fixed posting overhead (inner hash-map slot + counter).
const POSTING_BYTES: u64 = 24;

/// A hash index on one relation, keyed by a sorted set of column
/// positions. Postings mirror the relation's multiplicity counters.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    positions: Vec<usize>,
    buckets: FxHashMap<Vec<Value>, FxHashMap<Tuple, u64>>,
    entries: usize,
}

impl JoinIndex {
    /// An empty index over the given key positions. The caller
    /// (`Relation::create_index`) has already sorted, deduplicated and
    /// range-checked them.
    pub(crate) fn new(positions: Vec<usize>) -> Self {
        JoinIndex {
            positions,
            buckets: FxHashMap::default(),
            entries: 0,
        }
    }

    /// The key column positions, sorted ascending.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// True when this index's key is exactly `key` (compared as a set;
    /// `key` must already be sorted and deduplicated).
    pub fn covers(&self, key: &[usize]) -> bool {
        self.positions == key
    }

    /// Number of distinct key values present.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of postings (distinct tuples) across all buckets.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Extract this index's key from a tuple of the indexed relation.
    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        self.positions
            .iter()
            .map(|&p| tuple.at(p).clone())
            .collect()
    }

    /// Record `count` additional occurrences of `tuple`. The relation has
    /// already checked its own counter with `checked_add`, and postings
    /// mirror relation counters exactly, so the overflow branch here is
    /// unreachable in practice — it is still reported rather than wrapped.
    pub(crate) fn insert(&mut self, tuple: &Tuple, count: u64) -> Result<()> {
        if count == 0 {
            return Ok(());
        }
        let key = self.key_of(tuple);
        let bucket = self.buckets.entry(key).or_default();
        match bucket.get_mut(tuple) {
            Some(c) => {
                *c = c.checked_add(count).ok_or_else(|| {
                    RelError::CounterOverflow(format!("index posting for {tuple} exceeds u64"))
                })?;
            }
            None => {
                bucket.insert(tuple.clone(), count);
                self.entries += 1;
            }
        }
        Ok(())
    }

    /// Remove `count` occurrences of `tuple`; erases the posting at zero
    /// and the bucket when it empties. Errors indicate the index fell out
    /// of sync with its relation (an internal invariant breach).
    pub(crate) fn remove(&mut self, tuple: &Tuple, count: u64) -> Result<()> {
        if count == 0 {
            return Ok(());
        }
        let key = self.key_of(tuple);
        let Some(bucket) = self.buckets.get_mut(&key) else {
            return Err(RelError::NegativeCount(format!(
                "index has no bucket for tuple {tuple}"
            )));
        };
        let Some(c) = bucket.get_mut(tuple) else {
            return Err(RelError::NegativeCount(format!(
                "index has no posting for tuple {tuple}"
            )));
        };
        if *c < count {
            return Err(RelError::NegativeCount(format!(
                "index removes {count} of tuple {tuple} with posting {c}"
            )));
        }
        *c -= count;
        if *c == 0 {
            bucket.remove(tuple);
            self.entries -= 1;
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
        Ok(())
    }

    /// Iterate the `(tuple, count)` postings matching a key value. The
    /// key's values must be ordered by this index's (sorted) positions.
    pub fn probe<'a>(&'a self, key: &[Value]) -> impl Iterator<Item = (&'a Tuple, u64)> + 'a {
        self.buckets
            .get(key)
            .into_iter()
            .flat_map(|b| b.iter().map(|(t, &c)| (t, c)))
    }

    /// Estimated resident bytes, O(1): postings clone their tuples, so an
    /// index costs roughly one extra copy of the relation plus hash-map
    /// overhead.
    pub fn memory_bytes_estimate(&self, arity: usize) -> u64 {
        let key_len = self.positions.len() as u64;
        let buckets = self.buckets.len() as u64;
        let entries = self.entries as u64;
        buckets * (key_len * VALUE_BYTES + BUCKET_BYTES)
            + entries * (arity as u64 * VALUE_BYTES + POSTING_BYTES)
    }

    /// Check this index against the relation's `(tuple, count)` pairs by
    /// rebuilding from scratch; returns a description of the first
    /// divergence. Used by the sim oracle.
    pub fn verify<'a>(
        &self,
        tuples: impl Iterator<Item = (&'a Tuple, u64)>,
    ) -> std::result::Result<(), String> {
        let mut rebuilt = JoinIndex::new(self.positions.clone());
        let mut expected_entries = 0usize;
        for (t, c) in tuples {
            rebuilt
                .insert(t, c)
                .map_err(|e| format!("rebuild failed: {e}"))?;
            expected_entries += 1;
        }
        if self.entries != expected_entries {
            return Err(format!(
                "index on {:?} has {} postings, relation has {} distinct tuples",
                self.positions, self.entries, expected_entries
            ));
        }
        if self.buckets != rebuilt.buckets {
            return Err(format!(
                "index on {:?} diverges from a from-scratch rebuild",
                self.positions
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;

    fn ab() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    fn probe_counts(ix: &JoinIndex, key: &[Value]) -> Vec<(Tuple, u64)> {
        let mut v: Vec<(Tuple, u64)> = ix.probe(key).map(|(t, c)| (t.clone(), c)).collect();
        v.sort();
        v
    }

    #[test]
    fn maintains_postings_through_insert_and_remove() {
        let mut ix = JoinIndex::new(vec![1]);
        let t = Tuple::from([1, 2]);
        ix.insert(&t, 2).unwrap();
        ix.insert(&Tuple::from([7, 2]), 1).unwrap();
        ix.insert(&Tuple::from([1, 3]), 1).unwrap();
        assert_eq!(ix.bucket_count(), 2);
        assert_eq!(ix.entry_count(), 3);
        assert_eq!(
            probe_counts(&ix, &[Value::from(2)]),
            vec![(Tuple::from([1, 2]), 2), (Tuple::from([7, 2]), 1)]
        );
        ix.remove(&t, 1).unwrap();
        assert_eq!(probe_counts(&ix, &[Value::from(2)]).len(), 2);
        ix.remove(&t, 1).unwrap();
        assert_eq!(
            probe_counts(&ix, &[Value::from(2)]),
            vec![(Tuple::from([7, 2]), 1)]
        );
        ix.remove(&Tuple::from([7, 2]), 1).unwrap();
        assert_eq!(ix.bucket_count(), 1, "empty bucket erased");
        assert_eq!(ix.entry_count(), 1);
    }

    #[test]
    fn remove_rejects_out_of_sync_calls() {
        let mut ix = JoinIndex::new(vec![0]);
        let t = Tuple::from([1, 2]);
        assert!(ix.remove(&t, 1).is_err());
        ix.insert(&t, 1).unwrap();
        assert!(ix.remove(&t, 2).is_err());
        assert!(ix.remove(&Tuple::from([1, 9]), 1).is_err());
    }

    #[test]
    fn insert_posting_overflow_is_reported() {
        let mut ix = JoinIndex::new(vec![0]);
        let t = Tuple::from([1, 2]);
        ix.insert(&t, u64::MAX).unwrap();
        assert!(matches!(
            ix.insert(&t, 1).unwrap_err(),
            RelError::CounterOverflow(_)
        ));
    }

    #[test]
    fn covers_compares_position_sets() {
        let ix = JoinIndex::new(vec![0, 2]);
        assert!(ix.covers(&[0, 2]));
        assert!(!ix.covers(&[0]));
        assert!(!ix.covers(&[0, 1]));
    }

    #[test]
    fn verify_detects_divergence() {
        let rel = Relation::from_rows(ab(), [[1, 2], [3, 2], [5, 6]]).unwrap();
        let mut ix = JoinIndex::new(vec![1]);
        for (t, c) in rel.iter() {
            ix.insert(t, c).unwrap();
        }
        assert!(ix.verify(rel.iter()).is_ok());
        ix.insert(&Tuple::from([9, 9]), 1).unwrap();
        assert!(ix.verify(rel.iter()).is_err());
    }

    #[test]
    fn memory_estimate_tracks_growth() {
        let mut ix = JoinIndex::new(vec![0]);
        let empty = ix.memory_bytes_estimate(2);
        ix.insert(&Tuple::from([1, 2]), 1).unwrap();
        assert!(ix.memory_bytes_estimate(2) > empty);
    }
}
