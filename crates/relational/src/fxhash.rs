//! A deterministic, allocation-free hasher for the engine's *transient*
//! structures (delta/tagged multisets, join-index buckets).
//!
//! `std`'s default `RandomState`/SipHash is keyed per process to resist
//! hash-flooding from adversarial inputs. That protection matters for
//! long-lived state fed from the outside world, but the differential
//! engine's intermediates are rebuilt per transaction, live microseconds
//! to milliseconds, and sit squarely on the maintenance hot path — there
//! the fixed-key multiply-rotate scheme below (the well-known "Fx" hash
//! used by rustc) is several times cheaper per small key and, having no
//! random seed, makes hash iteration order a pure function of insertion
//! order — one less source of cross-run nondeterminism for the simulator
//! to chase. Durable, externally-fed state ([`crate::relation::Relation`],
//! [`crate::database::Database`]) deliberately stays on SipHash.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a 64-bit cousin of the golden
/// ratio); spreads low-entropy integer keys across the high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one 64-bit word folded per write.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.fold(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.fold(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.fold(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (no per-map random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic Fx scheme.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let t = crate::tuple::Tuple::from([1i64, -7, 300]);
        assert_eq!(hash_of(&t), hash_of(&t.clone()));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(
            hash_of(&crate::tuple::Tuple::from([1, 2])),
            hash_of(&crate::tuple::Tuple::from([2, 1]))
        );
    }

    #[test]
    fn unaligned_byte_tails_fold_in() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghij"); // 8-byte chunk + 2-byte tail
        let mut b = FxHasher::default();
        b.write(b"abcdefghik");
        assert_ne!(a.finish(), b.finish());
    }
}
