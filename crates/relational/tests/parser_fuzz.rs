//! Parser robustness: round-trips for well-formed inputs, graceful errors
//! (never panics) for arbitrary garbage.

use proptest::prelude::*;

use ivm_relational::parser::{parse_atom, parse_condition, parse_schema, parse_tuple};
use ivm_relational::predicate::{Atom, CompOp, Condition, Conjunction};

fn arb_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Lt),
        Just(CompOp::Gt),
        Just(CompOp::Le),
        Just(CompOp::Ge),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,6}"
}

fn arb_rhs() -> impl Strategy<Value = (Option<String>, i64)> {
    prop_oneof![
        (-999i64..1000).prop_map(|c| (None, c)),
        (arb_ident(), -99i64..100).prop_map(|(v, c)| (Some(v), c)),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_ident(), arb_op(), arb_rhs()).prop_map(|(left, op, rhs)| match rhs {
        (None, c) => Atom::cmp_const(left.as_str(), op, c),
        (Some(v), c) => Atom::cmp_attr(left.as_str(), op, v.as_str(), c),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Display → parse round-trips for atoms.
    #[test]
    fn atom_roundtrip(atom in arb_atom()) {
        let text = atom.to_string();
        let parsed = parse_atom(&text).unwrap();
        prop_assert_eq!(parsed, atom, "{}", text);
    }

    /// Display → parse round-trips for whole DNF conditions.
    #[test]
    fn condition_roundtrip(
        disjuncts in prop::collection::vec(
            prop::collection::vec(arb_atom(), 1..4), 1..4)
    ) {
        let cond = Condition::dnf(disjuncts.into_iter().map(Conjunction::new));
        // Render in the shell's surface syntax.
        let text = cond
            .disjuncts
            .iter()
            .map(|c| {
                c.atoms
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(" and ")
            })
            .collect::<Vec<_>>()
            .join(" or ");
        let parsed = parse_condition(&text).unwrap();
        prop_assert_eq!(parsed, cond, "{}", text);
    }

    /// Arbitrary input never panics any parser.
    #[test]
    fn garbage_never_panics(text in ".{0,64}") {
        let _ = parse_atom(&text);
        let _ = parse_condition(&text);
        let _ = parse_schema(&text);
        let _ = parse_tuple(&text);
    }

    /// Tuples of integers round-trip through Display-style rendering.
    #[test]
    fn tuple_roundtrip(vals in prop::collection::vec(-1000i64..1000, 0..8)) {
        let text = format!(
            "({})",
            vals.iter().map(i64::to_string).collect::<Vec<_>>().join(", ")
        );
        let parsed = parse_tuple(&text).unwrap();
        prop_assert_eq!(parsed, ivm_relational::tuple::Tuple::new(vals));
    }

    /// Schemas round-trip through Display (minus the braces).
    #[test]
    fn schema_roundtrip(attrs in prop::collection::hash_set("[A-Za-z][A-Za-z0-9_]{0,5}", 1..6)) {
        let attrs: Vec<String> = attrs.into_iter().collect();
        let text = attrs.join(", ");
        let parsed = parse_schema(&text).unwrap();
        prop_assert_eq!(
            parsed.attrs().iter().map(|a| a.as_str().to_string()).collect::<Vec<_>>(),
            attrs
        );
    }
}
