//! Deterministic schedule-explored models of the pool's coordination
//! protocols.
//!
//! Real `std::thread::scope` threads cannot be paused and resumed at
//! will, so the concurrency-sensitive invariants of this crate — the
//! *earliest-error-in-input-order* selection of [`crate::Pool::try_map`]
//! and the *join-everything-then-propagate* shutdown of
//! [`crate::Pool::map_chunks`] — are checked against explicit
//! state-machine **models** instead. The exploration machinery itself
//! (the "mini-loom" that used to live here) has been promoted to the
//! standalone [`ivm_race`] crate, which adds DPOR pruning and modeled
//! memory orderings on top; this module re-exports the core so existing
//! `ivm_parallel::model::{Explorer, replay, ...}` callers keep working,
//! and keeps the two pool models next to the pool they describe.
//!
//! This is model checking, not testing-by-execution: a bug like "the
//! error of whichever worker *finished first* wins" passes every real
//! `try_map` stress test almost always, but the explorer finds the one
//! interleaving where a later chunk's error overtakes an earlier one —
//! see `schedule_dependent_selection_is_caught` in the tests.

pub use ivm_race::explore::{
    replay, replay_prefix, Exploration, Explorer, Model, ScheduleBug, Status,
};

// ---------------------------------------------------------------------
// Model 1: try_map's deterministic error selection.
// ---------------------------------------------------------------------

/// Which error-selection protocol the [`FirstErrorModel`] main thread
/// follows when several chunks fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// What [`crate::Pool::try_map`] implements: join handles in input
    /// order, first failing chunk in *input* order wins. Schedule
    /// independent — the property the explorer proves.
    InputOrder,
    /// The classic racy alternative: whichever failing worker *finished
    /// first on the wall clock* wins. Kept as a known-buggy foil so the
    /// harness can demonstrate it catches schedule dependence.
    CompletionOrder,
}

/// State-machine model of [`crate::Pool::try_map`]: `W` workers each
/// fold a contiguous chunk of `Result` items (short-circuiting on the
/// chunk's first error) while a main thread joins them in input order
/// and selects the overall outcome.
#[derive(Debug, Clone)]
pub struct FirstErrorModel {
    /// Per-worker chunks, contiguous in input order.
    pub chunks: Vec<Vec<Result<u64, u64>>>,
    /// Error-selection protocol under test.
    pub selection: Selection,
}

/// Execution state of [`FirstErrorModel`]. Workers are threads
/// `0..W`, the joining main thread is thread `W`.
#[derive(Debug, Clone)]
pub struct FirstErrorState {
    pc: Vec<usize>,
    acc: Vec<Vec<u64>>,
    outcome: Vec<Option<Result<(), u64>>>,
    /// Worker ids in the order their *errors* became visible — the
    /// wall-clock completion order a racy selection would consult.
    error_log: Vec<usize>,
    join_next: usize,
    final_result: Option<Result<Vec<u64>, u64>>,
}

impl FirstErrorModel {
    fn workers(&self) -> usize {
        self.chunks.len()
    }

    /// The schedule-independent oracle: first failing chunk in input
    /// order contributes its first error; otherwise the concatenation.
    pub fn oracle(&self) -> Result<Vec<u64>, u64> {
        let mut all = Vec::new();
        for chunk in &self.chunks {
            for item in chunk {
                match item {
                    Ok(v) => all.push(*v),
                    Err(e) => return Err(*e),
                }
            }
        }
        Ok(all)
    }
}

impl Model for FirstErrorModel {
    type State = FirstErrorState;

    fn init(&self) -> FirstErrorState {
        let w = self.workers();
        FirstErrorState {
            pc: vec![0; w],
            acc: vec![Vec::new(); w],
            outcome: vec![None; w],
            error_log: Vec::new(),
            join_next: 0,
            final_result: None,
        }
    }

    fn threads(&self) -> usize {
        self.workers() + 1
    }

    fn status(&self, s: &FirstErrorState, t: usize) -> Status {
        let w = self.workers();
        if t < w {
            if s.outcome[t].is_some() {
                Status::Finished
            } else {
                Status::Runnable
            }
        } else if s.join_next < w {
            // Joining blocks until the next handle's worker is done.
            if s.outcome[s.join_next].is_some() {
                Status::Runnable
            } else {
                Status::Blocked
            }
        } else if s.final_result.is_none() {
            Status::Runnable
        } else {
            Status::Finished
        }
    }

    fn step(&self, s: &mut FirstErrorState, t: usize) {
        let w = self.workers();
        if t < w {
            // One atomic step = fold one item (or finish an empty chunk).
            match self.chunks[t].get(s.pc[t]) {
                Some(Ok(v)) => {
                    s.acc[t].push(*v);
                    s.pc[t] += 1;
                    if s.pc[t] == self.chunks[t].len() {
                        s.outcome[t] = Some(Ok(()));
                    }
                }
                Some(Err(e)) => {
                    // Chunk-local short-circuit, as in try_map's worker.
                    s.outcome[t] = Some(Err(*e));
                    s.error_log.push(t);
                }
                None => s.outcome[t] = Some(Ok(())),
            }
        } else if s.join_next < w {
            s.join_next += 1;
        } else {
            // All handles joined: select the overall outcome.
            let failing = match self.selection {
                Selection::InputOrder => (0..w).find(|&i| matches!(s.outcome[i], Some(Err(_)))),
                Selection::CompletionOrder => s.error_log.first().copied(),
            };
            s.final_result = Some(match failing {
                Some(i) => match s.outcome[i] {
                    Some(Err(e)) => Err(e),
                    // A worker only enters `failing` via Err outcomes.
                    _ => Err(u64::MAX),
                },
                None => {
                    let mut all = Vec::new();
                    for acc in &s.acc {
                        all.extend_from_slice(acc);
                    }
                    Ok(all)
                }
            });
        }
    }

    fn check(&self, s: &FirstErrorState) -> Result<(), String> {
        let got = match &s.final_result {
            Some(r) => r,
            None => return Err("execution finished without a final result".into()),
        };
        let want = self.oracle();
        if *got != want {
            return Err(format!(
                "schedule-dependent outcome: got {got:?}, oracle says {want:?}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Model 2: scope shutdown with panic propagation.
// ---------------------------------------------------------------------

/// State-machine model of [`crate::Pool::map_chunks`]'s shutdown path:
/// workers run to completion (or panic at a scripted step); the main
/// thread joins every handle in input order, remembers the first panic
/// payload it sees, and only after *all* joins does the scope exit and
/// re-raise. The invariant is the `std::thread::scope` contract: no
/// worker outlives the scope, and the propagated payload is the first
/// panicking handle in join (= input) order.
#[derive(Debug, Clone)]
pub struct ShutdownModel {
    /// Steps each worker runs before finishing cleanly.
    pub steps_per_worker: Vec<usize>,
    /// `(worker, step)` pairs where that worker panics instead.
    pub panics: Vec<(usize, usize)>,
}

/// Execution state of [`ShutdownModel`]. Workers are threads `0..W`,
/// the joining main thread is thread `W`.
#[derive(Debug, Clone)]
pub struct ShutdownState {
    pc: Vec<usize>,
    done: Vec<bool>,
    panicked: Vec<bool>,
    join_next: usize,
    first_panic: Option<usize>,
    /// Workers still running when the scope exited — must stay empty.
    leaked: Vec<usize>,
    exited: bool,
}

impl ShutdownModel {
    fn workers(&self) -> usize {
        self.steps_per_worker.len()
    }

    fn panics_at(&self, worker: usize, step: usize) -> bool {
        self.panics.contains(&(worker, step))
    }

    /// The worker whose panic the scope must re-raise: first panicking
    /// handle in join order, independent of the schedule.
    pub fn expected_panic(&self) -> Option<usize> {
        (0..self.workers()).find(|&w| (0..self.steps_per_worker[w]).any(|s| self.panics_at(w, s)))
    }
}

impl Model for ShutdownModel {
    type State = ShutdownState;

    fn init(&self) -> ShutdownState {
        let w = self.workers();
        ShutdownState {
            pc: vec![0; w],
            done: vec![false; w],
            panicked: vec![false; w],
            join_next: 0,
            first_panic: None,
            leaked: Vec::new(),
            exited: false,
        }
    }

    fn threads(&self) -> usize {
        self.workers() + 1
    }

    fn status(&self, s: &ShutdownState, t: usize) -> Status {
        let w = self.workers();
        if t < w {
            if s.done[t] {
                Status::Finished
            } else {
                Status::Runnable
            }
        } else if s.join_next < w {
            if s.done[s.join_next] {
                Status::Runnable
            } else {
                Status::Blocked
            }
        } else if s.exited {
            Status::Finished
        } else {
            Status::Runnable
        }
    }

    fn step(&self, s: &mut ShutdownState, t: usize) {
        let w = self.workers();
        if t < w {
            if self.panics_at(t, s.pc[t]) {
                s.panicked[t] = true;
                s.done[t] = true;
            } else {
                s.pc[t] += 1;
                if s.pc[t] >= self.steps_per_worker[t] {
                    s.done[t] = true;
                }
            }
        } else if s.join_next < w {
            // Join in input order; remember the first panic payload but
            // keep joining — scope exit must wait for every worker.
            if s.panicked[s.join_next] && s.first_panic.is_none() {
                s.first_panic = Some(s.join_next);
            }
            s.join_next += 1;
        } else {
            // Scope exit: record any worker still running as leaked.
            for worker in 0..w {
                if !s.done[worker] {
                    s.leaked.push(worker);
                }
            }
            s.exited = true;
        }
    }

    fn check(&self, s: &ShutdownState) -> Result<(), String> {
        if !s.exited {
            return Err("execution finished without exiting the scope".into());
        }
        if !s.leaked.is_empty() {
            return Err(format!("workers {:?} outlived the scope", s.leaked));
        }
        if s.first_panic != self.expected_panic() {
            return Err(format!(
                "propagated panic from {:?}, expected {:?}",
                s.first_panic,
                self.expected_panic()
            ));
        }
        for worker in 0..self.workers() {
            if !s.panicked[worker] && s.pc[worker] < self.steps_per_worker[worker] {
                return Err(format!("worker {worker} finished early"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn error_model(selection: Selection) -> FirstErrorModel {
        // Two failing chunks: input order says chunk 0's error (17)
        // wins, but chunk 2's error (63) is reachable *first* under
        // schedules where worker 2 outruns worker 0.
        FirstErrorModel {
            chunks: vec![
                vec![Ok(1), Err(17)],
                vec![Ok(2), Ok(3)],
                vec![Ok(4), Err(63)],
            ],
            selection,
        }
    }

    #[test]
    fn input_order_selection_is_schedule_independent() {
        let model = error_model(Selection::InputOrder);
        let stats = Explorer::default().explore(&model).unwrap();
        assert!(stats.interleavings >= 100, "{stats:?}");
        assert_eq!(model.oracle(), Err(17));
    }

    #[test]
    fn schedule_dependent_selection_is_caught() {
        let model = error_model(Selection::CompletionOrder);
        let bug = Explorer::default().explore(&model).unwrap_err();
        assert!(bug.message.contains("schedule-dependent"), "{bug}");
        // The counterexample replays to the same bad state.
        let state = replay(&model, &bug.schedule).unwrap();
        assert_eq!(state.final_result, Some(Err(63)));
    }

    #[test]
    fn all_ok_model_concatenates_in_input_order() {
        let model = FirstErrorModel {
            chunks: vec![vec![Ok(1), Ok(2)], vec![], vec![Ok(3)]],
            selection: Selection::InputOrder,
        };
        let stats = Explorer::default().explore(&model).unwrap();
        assert!(stats.interleavings > 1);
        assert_eq!(model.oracle(), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn shutdown_model_joins_everyone() {
        let model = ShutdownModel {
            steps_per_worker: vec![2, 2, 2],
            panics: vec![(1, 1)],
        };
        let stats = Explorer::default().explore(&model).unwrap();
        assert!(stats.interleavings >= 100, "{stats:?}");
        assert_eq!(model.expected_panic(), Some(1));
    }

    #[test]
    fn exploration_is_deterministic() {
        let model = error_model(Selection::InputOrder);
        let a = Explorer::default().explore(&model).unwrap();
        let b = Explorer::default().explore(&model).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn replay_rejects_bad_schedules() {
        let model = ShutdownModel {
            steps_per_worker: vec![1],
            panics: vec![],
        };
        assert!(replay(&model, &[7]).is_err(), "no such thread");
        assert!(replay(&model, &[0]).is_err(), "main never ran");
        // Worker, join, scope exit: a complete schedule.
        assert!(replay(&model, &[0, 1, 1]).is_ok());
    }

    #[test]
    fn interleaving_cap_is_an_error_not_a_truncation() {
        let model = error_model(Selection::InputOrder);
        let bug = Explorer {
            max_interleavings: 3,
        }
        .explore(&model)
        .unwrap_err();
        assert!(bug.message.contains("exceeded"), "{bug}");
    }
}
