//! A std-only scoped worker pool with deterministic chunked map/fan-out.
//!
//! The differential maintenance engine has three embarrassingly parallel
//! hot paths — the 2^k − 1 independent truth-table rows of the §5.3
//! expansion, the per-tuple relevance test of Algorithm 4.1 (deliberately
//! independent of every other tuple), and the build+probe phases of large
//! hash joins. This crate gives them one shared primitive without pulling
//! in `rayon` (the build container has no network access to crates.io, so
//! like `crates/compat/*` everything here is plain `std`).
//!
//! Design rules:
//!
//! * **Scoped, not pooled-forever.** Workers are `std::thread::scope`
//!   threads that borrow the caller's data; they live exactly as long as
//!   one `map`/`try_map` call. No global state, no channels, no `unsafe`.
//! * **Deterministic.** Work is split into *contiguous chunks in input
//!   order* and results are reassembled in input order, so the output of
//!   every operation is identical for every thread count — `threads = 1`
//!   is the oracle the property tests compare against.
//! * **Deterministic errors too.** [`Pool::try_map`] returns the error of
//!   the *earliest* failing item in input order, regardless of which
//!   worker hit an error first on the wall clock.
//! * **Panic transparent.** A panicking worker re-raises its payload on
//!   the calling thread via [`std::panic::resume_unwind`].
//! * **Observable on request.** [`Pool::map_chunks_observed`] times each
//!   worker's chunk and its spawn latency through an [`ivm_obs::Obs`]
//!   handle (`pool.chunk_micros`, `pool.queue_wait_micros`,
//!   `pool.chunks` — see `docs/OBSERVABILITY.md`). With the no-op
//!   handle it degenerates to [`Pool::map_chunks`]: one branch, no
//!   clocks read, so the fan-out hot path costs nothing extra when
//!   nobody is watching.
//!
//! # Fan-out example
//!
//! ```
//! use ivm_parallel::Pool;
//!
//! let pool = Pool::new(4);
//! let items: Vec<i64> = (0..100).collect();
//! let squares = pool.map(&items, |x| x * x);
//! assert_eq!(squares[7], 49); // input order, every width
//! ```

#![warn(missing_docs)]

pub mod model;

use std::num::NonZeroUsize;
use std::ops::Range;
use std::time::Instant;

use ivm_obs::{names, Obs};

/// Number of hardware threads, with a conservative fallback of 1 when the
/// platform cannot say.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a requested thread count: `0` means "one worker per available
/// core", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Split `0..n` into at most `parts` contiguous ranges whose lengths
/// differ by at most one. Empty ranges are never produced.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts; // the first `extra` chunks get one more item
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A worker pool of a fixed width. `Copy`-cheap: holds only the resolved
/// thread count; threads are spawned per call inside a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers; `0` resolves to one per available
    /// core.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: resolve_threads(threads).max(1),
        }
    }

    /// The single-threaded pool: every operation degenerates to a plain
    /// sequential loop on the calling thread.
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// Worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool never spawns (all work runs on the caller).
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Fan `0..n` out as contiguous index ranges, one per worker, and
    /// collect each range's result **in range order**. The generic
    /// building block under [`Pool::map`] / [`Pool::try_map`]; callers
    /// with chunk-level state (e.g. a shared join prefix across
    /// truth-table rows) use it directly.
    pub fn map_chunks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(n, self.threads);
        if ranges.len() <= 1 || self.is_sequential() {
            return ranges.into_iter().map(f).collect();
        }
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| s.spawn(move || f(range)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }

    /// [`Pool::map_chunks`] with per-chunk instrumentation: when `obs`
    /// has a recorder installed, each chunk reports its spawn latency
    /// (`pool.queue_wait_micros` — wall time between fan-out start and
    /// the chunk body beginning to run) and its body duration
    /// (`pool.chunk_micros`), plus a `pool.chunks` count. With the
    /// disabled handle this is exactly [`Pool::map_chunks`] — the
    /// `enabled` branch is taken once per call, not per chunk.
    ///
    /// Timings are observational only: chunk boundaries, work order and
    /// results are bit-identical with and without a recorder.
    pub fn map_chunks_observed<R, F>(&self, n: usize, f: F, obs: &Obs) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if !obs.enabled() {
            return self.map_chunks(n, f);
        }
        // ivm-lint: allow(no-ambient-time) — observational timing only, behind obs.enabled(); results are bit-identical with and without it
        let dispatched = Instant::now();
        self.map_chunks(n, |range| {
            // ivm-lint: allow(no-ambient-time) — observational timing only, never influences chunking or results
            let started = Instant::now();
            let wait = started.duration_since(dispatched);
            let out = f(range);
            obs.add(names::POOL_CHUNKS, 1);
            obs.observe(
                names::POOL_QUEUE_WAIT_MICROS,
                wait.as_micros().min(u64::MAX as u128) as u64,
            );
            obs.observe(
                names::POOL_CHUNK_MICROS,
                started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            );
            out
        })
    }

    /// Apply `f` to every item, returning results in input order. Output
    /// is identical for every pool width.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let chunks = self.map_chunks(items.len(), |range| {
            items[range].iter().map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// Fallible [`Pool::map`]: returns results in input order, or the
    /// error of the earliest failing item in input order. Each worker
    /// short-circuits its own chunk on the first error.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let chunks = self.map_chunks(items.len(), |range| {
            let mut out = Vec::with_capacity(range.len());
            for item in &items[range] {
                out.push(f(item)?);
            }
            Ok(out)
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in chunks {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in 0..40usize {
            for parts in 1..10usize {
                let ranges = chunk_ranges(n, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, n, "full coverage for n={n} parts={parts}");
                if n >= parts {
                    let lens: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                    let min = lens.iter().min().unwrap();
                    let max = lens.iter().max().unwrap();
                    assert!(max - min <= 1, "balanced: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn map_preserves_order_at_every_width() {
        let items: Vec<i64> = (0..1000).collect();
        let expected: Vec<i64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).map(&items, |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        Pool::new(4).map(&items, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn try_map_returns_earliest_error() {
        let items: Vec<i64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let r: Result<Vec<i64>, i64> =
                Pool::new(threads).try_map(
                    &items,
                    |&x| {
                        if x == 17 || x == 63 {
                            Err(x)
                        } else {
                            Ok(x)
                        }
                    },
                );
            assert_eq!(r.unwrap_err(), 17, "threads={threads}");
        }
        let ok: Result<Vec<i64>, ()> = Pool::new(8).try_map(&items, |&x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn zero_resolves_to_available_cores() {
        assert_eq!(Pool::new(0).threads(), available_threads());
        assert!(Pool::sequential().is_sequential());
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(8).map(&empty, |x| *x).is_empty());
        let r: Result<Vec<u8>, ()> = Pool::new(8).try_map(&empty, |x| Ok(*x));
        assert!(r.unwrap().is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(&items, |&x| {
                if x == 40 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn map_chunks_observed_matches_plain_and_reports_timings() {
        use std::sync::Arc;
        let pool = Pool::new(3);
        let plain = pool.map_chunks(10, |r| r.len());
        let disabled = pool.map_chunks_observed(10, |r| r.len(), &ivm_obs::Obs::disabled());
        assert_eq!(plain, disabled);
        let rec = Arc::new(ivm_obs::InMemoryRecorder::new());
        let obs = ivm_obs::Obs::new(rec.clone());
        let observed = pool.map_chunks_observed(10, |r| r.len(), &obs);
        assert_eq!(plain, observed);
        assert_eq!(rec.counter(ivm_obs::names::POOL_CHUNKS), 3);
        let chunk = rec.histogram(ivm_obs::names::POOL_CHUNK_MICROS);
        let wait = rec.histogram(ivm_obs::names::POOL_QUEUE_WAIT_MICROS);
        assert_eq!(chunk.count, 3);
        assert_eq!(wait.count, 3);
    }

    #[test]
    fn map_chunks_respects_width() {
        let pool = Pool::new(3);
        let chunks = pool.map_chunks(10, |r| r.len());
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().sum::<usize>(), 10);
    }
}
