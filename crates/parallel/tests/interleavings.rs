//! Exhaustive schedule exploration of the pool's coordination
//! protocols, via the mini-loom model checker in `ivm_parallel::model`.
//!
//! These tests pin the PR's acceptance bar: the error-selection and
//! shutdown models each cover well over 100 distinct interleavings, the
//! exploration is bit-identical across runs, and the harness actually
//! catches a schedule-dependence bug when handed one.

use ivm_parallel::model::{
    replay, Explorer, FirstErrorModel, Model, ScheduleBug, Selection, ShutdownModel, Status,
};

/// try_map's protocol: two failing chunks in different positions, so a
/// racy selection could surface either error depending on the schedule.
fn error_model() -> FirstErrorModel {
    FirstErrorModel {
        chunks: vec![
            vec![Ok(10), Err(17)],
            vec![Ok(20), Ok(21)],
            vec![Ok(30), Err(63)],
        ],
        selection: Selection::InputOrder,
    }
}

/// map_chunks' shutdown: three workers, the middle one panics mid-chunk.
fn shutdown_model() -> ShutdownModel {
    ShutdownModel {
        steps_per_worker: vec![2, 3, 2],
        panics: vec![(1, 1)],
    }
}

#[test]
fn first_error_selection_holds_under_all_interleavings() {
    let model = error_model();
    let stats = Explorer::default()
        .explore(&model)
        .expect("input-order selection must be schedule independent");
    assert!(
        stats.interleavings >= 100,
        "exhaustive coverage too small: {stats:?}"
    );
    assert_eq!(model.oracle(), Err(17), "earliest error in input order");
}

#[test]
fn shutdown_joins_every_worker_under_all_interleavings() {
    let model = shutdown_model();
    let stats = Explorer::default()
        .explore(&model)
        .expect("scope shutdown must never leak a worker or lose a panic");
    assert!(
        stats.interleavings >= 100,
        "exhaustive coverage too small: {stats:?}"
    );
}

#[test]
fn clean_shutdown_without_panics_is_also_covered() {
    let model = ShutdownModel {
        steps_per_worker: vec![2, 2, 2],
        panics: vec![],
    };
    let stats = Explorer::default().explore(&model).expect("clean path");
    assert!(stats.interleavings >= 100, "{stats:?}");
    assert_eq!(model.expected_panic(), None);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    for model in [error_model(), error_model()] {
        let a = Explorer::default().explore(&model).unwrap();
        let b = Explorer::default().explore(&model).unwrap();
        assert_eq!(a, b, "two explorations of the same model must agree");
    }
    let a = Explorer::default().explore(&shutdown_model()).unwrap();
    let b = Explorer::default().explore(&shutdown_model()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn harness_catches_completion_order_bug_with_replayable_counterexample() {
    let model = FirstErrorModel {
        selection: Selection::CompletionOrder,
        ..error_model()
    };
    let ScheduleBug { schedule, message } = Explorer::default()
        .explore(&model)
        .expect_err("completion-order selection is schedule dependent");
    assert!(message.contains("schedule-dependent"), "{message}");
    // The counterexample is a complete, replayable schedule.
    replay(&model, &schedule).expect("counterexample must replay");
}

#[test]
fn model_semantics_match_the_real_pool() {
    // The model's oracle and the real try_map agree on the same inputs,
    // at several widths — tying the abstraction back to the code it
    // models.
    let items: Vec<Result<u64, u64>> = vec![Ok(10), Err(17), Ok(20), Ok(21), Ok(30), Err(63)];
    let expected = error_model().oracle();
    for threads in [1, 2, 3, 8] {
        let got = ivm_parallel::Pool::new(threads).try_map(&items, |item| *item);
        assert_eq!(got, expected, "threads={threads}");
    }
}

#[test]
fn blocked_threads_never_step() {
    // The main thread must be Blocked until worker 0 finishes — the
    // join-order constraint that makes input-order selection sound.
    let model = error_model();
    let state = model.init();
    let main = model.threads() - 1;
    assert_eq!(model.status(&state, main), Status::Blocked);
}
