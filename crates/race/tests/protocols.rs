//! Integration tests for the model checker itself, in two groups:
//!
//! * **Reduction soundness** — on small random register-machine models
//!   (≤ 3 threads, every step always enabled), DPOR exploration must
//!   reach exactly the same set of final-state digests as exhaustive
//!   DFS. Partial-order reduction is only allowed to skip *redundant*
//!   interleavings; if the digest sets ever diverge, the pruning
//!   dropped a reachable outcome.
//! * **Gate acceptance** — the two protocol models explore at least 500
//!   distinct interleavings under DPOR, every seeded foil (epoch-skip,
//!   underdeclared announce, shutdown lost-wakeup) is caught, and each
//!   counterexample replays to the reported violation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivm_race::{
    exhaustive_final_digests, replay, replays_to_deadlock, Access, DporExplorer, DporModel,
    MemMode, Model, ServeFoil, ServeModel, SnapshotFoil, SnapshotModel, Status,
};

// ---------------------------------------------------------------------
// Random register machines: the DPOR ≡ exhaustive-DFS oracle.
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Pure thread-local work.
    Local,
    /// Read a shared cell into the thread's observation log.
    Load(usize),
    /// Overwrite a shared cell.
    Store(usize, u64),
    /// Read-modify-write a shared cell.
    Add(usize, u64),
}

#[derive(Debug, Clone)]
struct RegisterMachine {
    programs: Vec<Vec<Op>>,
    locations: usize,
}

#[derive(Debug, Clone)]
struct RmState {
    pc: Vec<usize>,
    mem: Vec<u64>,
    /// Per-thread log of observed values: makes outcome digests
    /// order-sensitive wherever the memory alone would not be.
    observed: Vec<Vec<u64>>,
}

impl Model for RegisterMachine {
    type State = RmState;

    fn init(&self) -> RmState {
        RmState {
            pc: vec![0; self.programs.len()],
            mem: vec![0; self.locations],
            observed: vec![Vec::new(); self.programs.len()],
        }
    }

    fn threads(&self) -> usize {
        self.programs.len()
    }

    fn status(&self, s: &RmState, t: usize) -> Status {
        if s.pc[t] < self.programs[t].len() {
            Status::Runnable
        } else {
            Status::Finished
        }
    }

    fn step(&self, s: &mut RmState, t: usize) {
        match self.programs[t][s.pc[t]] {
            Op::Local => {}
            Op::Load(loc) => {
                let v = s.mem[loc];
                s.observed[t].push(v);
            }
            Op::Store(loc, v) => s.mem[loc] = v,
            Op::Add(loc, v) => s.mem[loc] = s.mem[loc].wrapping_add(v),
        }
        s.pc[t] += 1;
    }

    fn check(&self, _s: &RmState) -> Result<(), String> {
        Ok(())
    }
}

impl DporModel for RegisterMachine {
    fn access(&self, s: &RmState, t: usize) -> Access {
        match self.programs[t][s.pc[t]] {
            Op::Local => Access::Local,
            Op::Load(loc) => Access::Read(loc),
            Op::Store(loc, _) | Op::Add(loc, _) => Access::Write(loc),
        }
    }

    fn digest(&self, s: &RmState) -> u64 {
        let mut h = FNV_OFFSET;
        for &v in &s.mem {
            h = fnv1a(h, &v.to_le_bytes());
        }
        for log in &s.observed {
            h = fnv1a(h, &(log.len() as u64).to_le_bytes());
            for &v in log {
                h = fnv1a(h, &v.to_le_bytes());
            }
        }
        h
    }
}

fn random_machine(rng: &mut StdRng) -> RegisterMachine {
    let locations = rng.gen_range(1..=2);
    let threads = rng.gen_range(2..=3);
    let programs = (0..threads)
        .map(|_| {
            let len = rng.gen_range(1..=3);
            (0..len)
                .map(|_| {
                    let loc = rng.gen_range(0..locations);
                    match rng.gen_range(0..4) {
                        0 => Op::Local,
                        1 => Op::Load(loc),
                        2 => Op::Store(loc, rng.gen_range(1..=3)),
                        _ => Op::Add(loc, rng.gen_range(1..=3)),
                    }
                })
                .collect()
        })
        .collect();
    RegisterMachine {
        programs,
        locations,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// DPOR must reach exactly the final states exhaustive DFS reaches.
    #[test]
    fn dpor_reaches_the_same_final_states_as_exhaustive_dfs(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let machine = random_machine(&mut rng);
        let truth = exhaustive_final_digests(&machine, 1_000_000)
            .expect("register machines cannot deadlock");
        let dpor = DporExplorer::default()
            .explore(&machine)
            .expect("register machines have no invariant to violate");
        prop_assert_eq!(
            &dpor.final_digests,
            &truth,
            "pruning changed reachable outcomes for {:?}",
            machine
        );
        prop_assert!(dpor.executions <= truth.len() as u64 * 10_000);
    }
}

/// Regression: the machine (found by the property test above) on which
/// naive sleep-set inheritance loses a reachable outcome. Thread 1's
/// `Store(1, 1)` races with thread 2's reads of location 1 *late* in
/// the search, after thread 2 has already been put to sleep at the
/// reordering point; unless the backtrack update wakes sleeping
/// threads, one of the 25 reachable final states (the one where thread
/// 2 observes the flag between thread 1's two stores) is never reached.
#[test]
fn sleep_sets_do_not_suppress_late_discovered_races() {
    let machine = RegisterMachine {
        programs: vec![
            vec![Op::Load(1), Op::Add(0, 2), Op::Store(0, 1)],
            vec![Op::Load(0), Op::Store(0, 3), Op::Store(1, 1)],
            vec![Op::Load(1), Op::Add(1, 3)],
        ],
        locations: 2,
    };
    let truth = exhaustive_final_digests(&machine, 1_000_000).unwrap();
    let dpor = DporExplorer::default().explore(&machine).unwrap();
    assert_eq!(truth.len(), 25);
    assert_eq!(dpor.final_digests, truth);
}

// ---------------------------------------------------------------------
// Gate acceptance: protocol models and their foils.
// ---------------------------------------------------------------------

fn snapshot(readers: usize, foil: SnapshotFoil) -> SnapshotModel {
    SnapshotModel {
        mode: MemMode::Declared,
        publishes: 1,
        readers,
        pins: 1,
        foil,
    }
}

#[test]
fn both_protocol_models_explore_at_least_500_interleavings() {
    let snap = DporExplorer::default()
        .explore(&snapshot(2, SnapshotFoil::None))
        .unwrap();
    assert!(snap.executions >= 500, "{snap:?}");
    let serve = DporExplorer::default()
        .explore(&ServeModel {
            sessions: 2,
            foil: ServeFoil::None,
        })
        .unwrap();
    assert!(serve.executions >= 500, "{serve:?}");
}

#[test]
fn every_snapshot_foil_yields_a_replayable_counterexample() {
    // One reader is the minimal witness for the relaxed-announce race;
    // with two, DFS order buries the violating subtree past the cap.
    for (readers, foil) in [
        (2, SnapshotFoil::SkipAnnounce),
        (1, SnapshotFoil::RelaxedAnnounce),
    ] {
        let model = snapshot(readers, foil);
        let bug = DporExplorer::default()
            .explore(&model)
            .expect_err("foil must be caught");
        assert!(
            bug.message.contains("dereferenced retired"),
            "{foil:?}: {bug}"
        );
        let state = replay(&model, &bug.schedule)
            .unwrap_or_else(|e| panic!("{foil:?}: replay failed: {e}"));
        assert!(model.check(&state).is_err(), "{foil:?}: replay was clean");
    }
}

#[test]
fn the_lost_wakeup_foil_yields_a_replayable_deadlock() {
    let model = ServeModel {
        sessions: 2,
        foil: ServeFoil::SkipSocketShutdown,
    };
    let bug = DporExplorer::default()
        .explore(&model)
        .expect_err("lost wakeup must be caught");
    assert!(bug.message.contains("deadlock"), "{bug}");
    assert!(replays_to_deadlock(&model, &bug.schedule).unwrap());
}

#[test]
fn protocol_exploration_statistics_are_deterministic() {
    let a = DporExplorer::default()
        .explore(&snapshot(2, SnapshotFoil::None))
        .unwrap();
    let b = DporExplorer::default()
        .explore(&snapshot(2, SnapshotFoil::None))
        .unwrap();
    assert_eq!(a, b);
}
