//! A faithful model of `SnapshotHub`'s publish / pin / reclaim protocol
//! (`crates/core/src/snapshot.rs`).
//!
//! The real protocol, step for step:
//!
//! * **Writer** (serialized by the writer mutex): load the current
//!   snapshot pointer, swap in the new one, bump the epoch counter, push
//!   the old pointer onto the retired list tagged with the *new* epoch,
//!   then scan every reader's announce slot and free each retired
//!   snapshot whose retire epoch is ≤ the minimum announced epoch
//!   (`IDLE = u64::MAX` counts as infinity).
//! * **Reader** (`SnapshotHandle::latest`): load the epoch, *announce*
//!   it in the reader's slot, load the current pointer, use the
//!   snapshot, announce `IDLE`.
//!
//! The safety argument is the announce fence: because the announce store
//! is `SeqCst`, a writer's scan either sees the reader's pin (and keeps
//! every snapshot retired after it) or the scan predates the announce —
//! in which case the reader's *later* pointer load can only see the
//! already-swapped new snapshot, never the one being freed. The model
//! asserts exactly that: **no reader ever dereferences a freed
//! snapshot**, and the snapshots each reader observes have **monotone
//! epochs**.
//!
//! Two seeded foils break the fence so the checker can prove it catches
//! them: [`SnapshotFoil::SkipAnnounce`] elides the announce entirely,
//! and [`SnapshotFoil::RelaxedAnnounce`] declares it `Relaxed`, which
//! under [`MemMode::Declared`] buffers the store — the writer's scan can
//! read a stale `IDLE` even though the reader has already pinned. Both
//! must yield a replayable [`crate::ScheduleBug`].

use std::collections::BTreeSet;

use crate::dpor::{Access, DporModel};
use crate::explore::{fnv1a, Model, Status, FNV_OFFSET};
use crate::mem::{DeclaredOrdering, Mem, MemMode};

/// Reader-slot value meaning "not currently pinning" (as in the real
/// protocol).
pub const IDLE: u64 = u64::MAX;

const EPOCH: usize = 0;
const CURRENT: usize = 1;
const ANN_BASE: usize = 2;

/// Seeded protocol mutations the checker must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFoil {
    /// The protocol as written (all `SeqCst`): must verify clean.
    None,
    /// Reader skips the announce store entirely — the writer can reclaim
    /// a snapshot the reader is about to dereference.
    SkipAnnounce,
    /// Reader announces with `Relaxed` instead of `SeqCst` — correct
    /// under SeqCst-only semantics, broken once declared orderings are
    /// modeled (the announce sits in the store buffer while the writer
    /// scans).
    RelaxedAnnounce,
}

/// Model parameters: `publishes` writer rounds against `readers` readers
/// each pinning `pins` times.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotModel {
    /// Memory semantics to explore under.
    pub mode: MemMode,
    /// Writer publish rounds (snapshot `n` is published at epoch `n`).
    pub publishes: usize,
    /// Number of concurrent readers.
    pub readers: usize,
    /// Pins per reader.
    pub pins: usize,
    /// Which (if any) protocol mutation to seed.
    pub foil: SnapshotFoil,
}

/// Execution state of [`SnapshotModel`]. Thread 0 is the writer,
/// threads `1..=readers` are readers, the rest are store-buffer
/// flushers.
#[derive(Debug, Clone)]
pub struct SnapshotState {
    mem: Mem,
    /// Writer program counter within the current round (`0..5+R`).
    wpc: usize,
    /// Completed publish rounds.
    round: usize,
    /// Old pointer loaded at the start of the current round.
    old_ptr: u64,
    /// Running minimum of announced epochs during the scan.
    min_ann: u64,
    /// Retired snapshots: `(retire_epoch, snapshot id)`.
    retired: Vec<(u64, u64)>,
    /// Snapshot ids that have been freed.
    freed: BTreeSet<u64>,
    /// Per-reader program counter within the current pin (`0..5`).
    rpc: Vec<usize>,
    /// Per-reader completed pins.
    done_pins: Vec<usize>,
    /// Per-reader epoch loaded at pin start.
    r_epoch: Vec<u64>,
    /// Per-reader snapshot pointer loaded this pin.
    r_ptr: Vec<u64>,
    /// Per-reader latest dereferenced snapshot id (monotonicity witness).
    last_ptr: Vec<u64>,
    /// Invariant violations observed mid-execution.
    violations: Vec<String>,
}

impl SnapshotModel {
    fn announce_order(&self) -> DeclaredOrdering {
        match self.foil {
            SnapshotFoil::RelaxedAnnounce => DeclaredOrdering::Relaxed,
            _ => DeclaredOrdering::SeqCst,
        }
    }

    fn real_threads(&self) -> usize {
        1 + self.readers
    }

    fn locations(&self) -> usize {
        ANN_BASE + self.readers
    }

    /// Pseudo-object id for the snapshot heap (deref vs. free
    /// dependence) — distinct from every memory location id.
    fn heap_object(&self) -> usize {
        self.locations()
    }

    /// Writer pc layout per round: 0 load old, 1 swap current, 2 bump
    /// epoch, 3 retire, `4..4+R` scan reader slots, `4+R` reclaim.
    fn scan_slot(&self, wpc: usize) -> Option<usize> {
        (wpc >= 4 && wpc < 4 + self.readers).then(|| wpc - 4)
    }
}

impl Model for SnapshotModel {
    type State = SnapshotState;

    fn init(&self) -> SnapshotState {
        let mut mem = Mem::new(self.mode, self.real_threads(), self.locations());
        for r in 0..self.readers {
            mem.poke(ANN_BASE + r, IDLE);
        }
        SnapshotState {
            mem,
            wpc: 0,
            round: 0,
            old_ptr: 0,
            min_ann: IDLE,
            retired: Vec::new(),
            freed: BTreeSet::new(),
            rpc: vec![0; self.readers],
            done_pins: vec![0; self.readers],
            r_epoch: vec![0; self.readers],
            r_ptr: vec![0; self.readers],
            last_ptr: vec![0; self.readers],
            violations: Vec::new(),
        }
    }

    fn threads(&self) -> usize {
        self.real_threads()
            + Mem::new(self.mode, self.real_threads(), self.locations()).flusher_threads()
    }

    fn status(&self, s: &SnapshotState, t: usize) -> Status {
        if t == 0 {
            if s.round < self.publishes {
                Status::Runnable
            } else {
                Status::Finished
            }
        } else if t <= self.readers {
            if s.done_pins[t - 1] < self.pins {
                Status::Runnable
            } else {
                Status::Finished
            }
        } else {
            let idx = t - self.real_threads();
            let owner = s.mem.flusher_owner(idx);
            let owner_finished = if owner == 0 {
                s.round >= self.publishes
            } else {
                s.done_pins[owner - 1] >= self.pins
            };
            s.mem.flusher_status(idx, owner_finished)
        }
    }

    fn step(&self, s: &mut SnapshotState, t: usize) {
        if t == 0 {
            let next_epoch = (s.round + 1) as u64;
            if s.wpc == 0 {
                s.old_ptr = s.mem.load(0, CURRENT);
            } else if s.wpc == 1 {
                s.mem
                    .store(0, CURRENT, next_epoch, DeclaredOrdering::SeqCst);
            } else if s.wpc == 2 {
                s.mem.store(0, EPOCH, next_epoch, DeclaredOrdering::SeqCst);
            } else if s.wpc == 3 {
                s.retired.push((next_epoch, s.old_ptr));
                s.min_ann = IDLE;
            } else if let Some(slot) = self.scan_slot(s.wpc) {
                let announced = s.mem.load(0, ANN_BASE + slot);
                s.min_ann = s.min_ann.min(announced);
            } else {
                // Reclaim: free every retired snapshot no announced pin
                // still protects.
                let min = s.min_ann;
                let mut kept = Vec::new();
                for &(retire_epoch, id) in &s.retired {
                    if min >= retire_epoch {
                        s.freed.insert(id);
                    } else {
                        kept.push((retire_epoch, id));
                    }
                }
                s.retired = kept;
                s.round += 1;
                s.wpc = 0;
                return;
            }
            s.wpc += 1;
        } else if t <= self.readers {
            let r = t - 1;
            let ann = ANN_BASE + r;
            match s.rpc[r] {
                0 => s.r_epoch[r] = s.mem.load(t, EPOCH),
                1 => {
                    if self.foil != SnapshotFoil::SkipAnnounce {
                        let e = s.r_epoch[r];
                        s.mem.store(t, ann, e, self.announce_order());
                    }
                }
                2 => s.r_ptr[r] = s.mem.load(t, CURRENT),
                3 => {
                    let ptr = s.r_ptr[r];
                    if s.freed.contains(&ptr) {
                        s.violations
                            .push(format!("reader {r} dereferenced retired snapshot {ptr}"));
                    }
                    if ptr < s.last_ptr[r] {
                        s.violations.push(format!(
                            "reader {r} epochs not monotone: saw {ptr} after {}",
                            s.last_ptr[r]
                        ));
                    }
                    s.last_ptr[r] = ptr;
                }
                _ => {
                    s.mem.store(t, ann, IDLE, DeclaredOrdering::SeqCst);
                    s.done_pins[r] += 1;
                    s.rpc[r] = 0;
                    return;
                }
            }
            s.rpc[r] += 1;
        } else {
            s.mem.flusher_step(t - self.real_threads());
        }
    }

    fn check(&self, s: &SnapshotState) -> Result<(), String> {
        if let Some(v) = s.violations.first() {
            return Err(v.clone());
        }
        Ok(())
    }
}

impl DporModel for SnapshotModel {
    fn access(&self, s: &SnapshotState, t: usize) -> Access {
        if t == 0 {
            match s.wpc {
                0 => Access::Read(CURRENT),
                1 => s.mem.store_access(0, CURRENT, DeclaredOrdering::SeqCst),
                2 => s.mem.store_access(0, EPOCH, DeclaredOrdering::SeqCst),
                3 => Access::Local,
                wpc => match self.scan_slot(wpc) {
                    Some(slot) => Access::Read(ANN_BASE + slot),
                    None => Access::Write(self.heap_object()),
                },
            }
        } else if t <= self.readers {
            let r = t - 1;
            match s.rpc[r] {
                0 => Access::Read(EPOCH),
                1 => {
                    if self.foil == SnapshotFoil::SkipAnnounce {
                        Access::Local
                    } else {
                        s.mem.store_access(t, ANN_BASE + r, self.announce_order())
                    }
                }
                2 => Access::Read(CURRENT),
                3 => Access::Read(self.heap_object()),
                _ => s
                    .mem
                    .store_access(t, ANN_BASE + r, DeclaredOrdering::SeqCst),
            }
        } else {
            s.mem.flusher_access(t - self.real_threads())
        }
    }

    fn digest(&self, s: &SnapshotState) -> u64 {
        let mut h = s.mem.digest_into(FNV_OFFSET);
        for &id in &s.freed {
            h = fnv1a(h, &id.to_le_bytes());
        }
        for &p in &s.last_ptr {
            h = fnv1a(h, &p.to_le_bytes());
        }
        h = fnv1a(h, &(s.retired.len() as u64).to_le_bytes());
        h = fnv1a(h, &(s.violations.len() as u64).to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpor::DporExplorer;
    use crate::explore::replay;

    fn model(foil: SnapshotFoil) -> SnapshotModel {
        SnapshotModel {
            mode: MemMode::Declared,
            publishes: 1,
            readers: 2,
            pins: 1,
            foil,
        }
    }

    #[test]
    fn protocol_as_written_verifies_clean() {
        let stats = DporExplorer::default()
            .explore(&model(SnapshotFoil::None))
            .unwrap();
        assert!(stats.executions >= 500, "{stats:?}");
    }

    #[test]
    fn skip_announce_foil_is_caught_and_replayable() {
        let m = model(SnapshotFoil::SkipAnnounce);
        let bug = DporExplorer::default().explore(&m).unwrap_err();
        assert!(bug.message.contains("dereferenced retired"), "{bug}");
        // The counterexample replays: same violation, by hand.
        let state = replay(&m, &bug.schedule).unwrap();
        assert!(!state.violations.is_empty());
    }

    #[test]
    fn relaxed_announce_foil_is_caught_under_declared_orderings() {
        // One reader is the minimal witness for this race (announce
        // sitting in the store buffer while the writer scans); the
        // two-reader search space puts the violating subtree millions
        // of executions deep in DFS order, well past the runaway cap.
        let m = SnapshotModel {
            readers: 1,
            ..model(SnapshotFoil::RelaxedAnnounce)
        };
        let bug = DporExplorer::default().explore(&m).unwrap_err();
        assert!(bug.message.contains("dereferenced retired"), "{bug}");
        let state = replay(&m, &bug.schedule).unwrap();
        assert!(!state.violations.is_empty());
    }

    #[test]
    fn relaxed_announce_passes_under_seqcst_only_semantics() {
        // The misdeclared ordering is invisible to SeqCst-only
        // exploration — the reason Declared mode exists.
        let m = SnapshotModel {
            mode: MemMode::SeqCstOnly,
            readers: 1,
            ..model(SnapshotFoil::RelaxedAnnounce)
        };
        DporExplorer::default().explore(&m).unwrap();
    }
}
