//! The `ivm-race` CI gate: model-check the snapshot and serve protocols.
//!
//! Runs under `ci/analyze.sh` as part of the required `analyze` job:
//!
//! 1. DPOR-explores both protocol models *as written* — they must verify
//!    clean with at least [`MIN_EXECUTIONS`] distinct interleavings each.
//! 2. Runs every seeded foil — the checker must catch each one and the
//!    reported schedule must replay to the same violation (self-test:
//!    a gate that cannot catch a planted bug proves nothing).
//! 3. Runs the message-passing litmus in both memory modes,
//!    demonstrating that declared-ordering exploration catches an
//!    underdeclared store that SeqCst-only exploration provably misses.
//!
//! Output is deterministic (counts and digests are pure functions of
//! the models); exit status is non-zero on any unexpected verdict.

use ivm_race::{
    replay, replays_to_deadlock, DeclaredOrdering, DporExplorer, Explorer, MemMode, MessagePassing,
    Model, ScheduleBug, ServeFoil, ServeModel, SnapshotFoil, SnapshotModel,
};

/// Acceptance floor: each protocol model must be exercised by at least
/// this many distinct interleavings.
const MIN_EXECUTIONS: u64 = 500;

fn snapshot_model(readers: usize, foil: SnapshotFoil) -> SnapshotModel {
    SnapshotModel {
        mode: MemMode::Declared,
        publishes: 1,
        readers,
        pins: 1,
        foil,
    }
}

fn serve_model(foil: ServeFoil) -> ServeModel {
    ServeModel { sessions: 2, foil }
}

/// Explore a clean protocol model; fail if it reports a bug or explores
/// fewer than the floor.
fn run_clean<M>(name: &str, model: &M) -> Result<(), String>
where
    M: ivm_race::DporModel,
    M::State: Clone,
{
    let stats = DporExplorer::default()
        .explore(model)
        .map_err(|bug| format!("{name}: unexpected violation: {bug}"))?;
    println!(
        "model {name}: OK — {} executions ({} sleep-pruned), {} steps, max depth {}, digest {:#018x}",
        stats.executions, stats.pruned, stats.steps, stats.max_depth, stats.digest
    );
    if stats.executions < MIN_EXECUTIONS {
        return Err(format!(
            "{name}: only {} executions, need ≥ {MIN_EXECUTIONS}",
            stats.executions
        ));
    }
    Ok(())
}

/// Explore a foiled model; fail unless the checker catches it AND the
/// counterexample replays.
fn run_foil<M, F>(name: &str, model: &M, reproduces: F) -> Result<(), String>
where
    M: ivm_race::DporModel,
    M::State: Clone,
    F: Fn(&M, &ScheduleBug) -> Result<bool, String>,
{
    let bug = match DporExplorer::default().explore(model) {
        Err(bug) => bug,
        Ok(stats) => {
            return Err(format!(
                "foil {name}: NOT caught ({} executions explored)",
                stats.executions
            ))
        }
    };
    if !reproduces(model, &bug).map_err(|e| format!("foil {name}: replay failed: {e}"))? {
        return Err(format!("foil {name}: schedule does not replay: {bug}"));
    }
    println!(
        "foil {name}: caught and replayed — {} (schedule length {})",
        bug.message,
        bug.schedule.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    // 1. The protocols as written.
    run_clean("snapshot-hub", &snapshot_model(2, SnapshotFoil::None))?;
    run_clean("serve-shutdown", &serve_model(ServeFoil::None))?;

    // 2. Seeded foils: violation-replays for the snapshot foils,
    //    deadlock-replay for the lost wakeup. The relaxed-announce foil
    //    runs with one reader — the minimal witness for the race; at
    //    two readers DFS order buries the violating subtree millions of
    //    executions deep.
    let violation_replays = |m: &SnapshotModel, bug: &ScheduleBug| {
        replay(m, &bug.schedule).map(|state| m.check(&state).is_err())
    };
    run_foil(
        "snapshot-hub/skip-announce",
        &snapshot_model(2, SnapshotFoil::SkipAnnounce),
        violation_replays,
    )?;
    run_foil(
        "snapshot-hub/relaxed-announce",
        &snapshot_model(1, SnapshotFoil::RelaxedAnnounce),
        violation_replays,
    )?;
    run_foil(
        "serve-shutdown/skip-socket-shutdown",
        &serve_model(ServeFoil::SkipSocketShutdown),
        |m, bug| replays_to_deadlock(m, &bug.schedule),
    )?;

    // 3. The declared-orderings litmus: an underdeclared flag store is
    //    invisible to SeqCst-only exploration and caught under declared
    //    semantics.
    let mp = |mode| MessagePassing {
        mode,
        flag_order: DeclaredOrdering::Relaxed,
    };
    if let Err(bug) = Explorer::default().explore(&mp(MemMode::SeqCstOnly)) {
        return Err(format!(
            "litmus: SeqCst-only run should be (vacuously) green, got: {bug}"
        ));
    }
    match Explorer::default().explore(&mp(MemMode::Declared)) {
        Err(bug) => println!("litmus message-passing: underdeclared flag caught — {bug}"),
        Ok(_) => {
            return Err("litmus: declared-ordering run missed the underdeclared flag".into());
        }
    }
    Ok(())
}

fn main() {
    match run() {
        Ok(()) => println!("ivm-race: all protocol models verified, all foils caught"),
        Err(msg) => {
            eprintln!("ivm-race: FAILED: {msg}");
            std::process::exit(1);
        }
    }
}
