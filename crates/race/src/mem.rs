//! Modeled atomics with *declared* memory orderings.
//!
// ivm-lint: allow-file(no-unchecked-index) — invariant: `pc` is the
// fixed-size array `[usize; MP_THREADS]` and every literal index in the
// MessagePassing litmus is a thread id < MP_THREADS = 2.
//!
//! The explorer's interleaving semantics is sequentially consistent:
//! every step acts on one coherent shared state. Real `Ordering::Relaxed`
//! stores are weaker — they may become visible to other threads *later*
//! than program order says — so a protocol that is correct under SeqCst
//! exploration can still be wrong as written if one of its atomics is
//! declared weaker than the protocol needs. This module makes that gap
//! explorable: a [`Mem`] cell records each store's **declared** ordering,
//! and in [`MemMode::Declared`] a `Relaxed` store goes into a per-thread,
//! per-location store buffer whose *flush to coherent memory is a
//! separate schedulable step*. Delayed visibility becomes one more
//! scheduling choice, so the same DFS/DPOR machinery enumerates it and a
//! counterexample is still a plain replayable schedule.
//!
//! Modeling rules (a pragmatic store-buffer semantics, close to
//! C11-release/acquire for the patterns this repo uses):
//!
//! * `Relaxed` store → buffered. Per-(thread, location) FIFO: two
//!   relaxed stores by one thread to one location stay ordered
//!   (coherence), but stores to *different* locations may flush in
//!   either order (store–store reordering — the thing x86-TSO forbids
//!   but Arm allows and C11 relaxed permits).
//! * `Release` / `SeqCst` store → flushes **all** of the storing
//!   thread's buffered entries first, then writes coherent memory
//!   directly. Everything the thread did before a release store is
//!   visible to any thread that sees the stored value.
//! * Loads read the thread's own latest buffered value for the location
//!   if any (store forwarding), else coherent memory. Loads never read
//!   *stale* coherent values — a documented simplification: we model
//!   delayed store visibility, not load-side reordering, which is
//!   enough to catch every underdeclared-*store* protocol bug and keeps
//!   the state space explorable.
//! * Each (thread, location) pair gets a companion **flusher thread**
//!   (see [`Mem::flusher_threads`]): runnable iff its buffer is
//!   non-empty, each step publishing the oldest buffered store. Flush
//!   timing is thereby a first-class scheduling choice, and schedules
//!   stay plain `Vec<usize>` — no second nondeterminism axis.
//!
//! In [`MemMode::SeqCstOnly`] every store is applied directly, which is
//! exactly the old explorer semantics; the message-passing litmus test
//! below shows a bug that mode provably cannot find.

use crate::dpor::Access;
use crate::explore::Status;

/// How strongly a store is declared, mirroring the subset of
/// `std::sync::atomic::Ordering` the workspace uses for stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclaredOrdering {
    /// May become visible late; only per-location coherence is kept.
    Relaxed,
    /// Publishes every earlier store by this thread before itself.
    Release,
    /// As `Release` here (the model has no load-side reordering for a
    /// total order to constrain further).
    SeqCst,
}

/// Which semantics [`Mem`] runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMode {
    /// Every store is immediately visible — the classic explorer
    /// semantics. Underdeclared orderings are invisible in this mode.
    SeqCstOnly,
    /// Stores obey their declared orderings via store buffers.
    Declared,
}

/// Shared memory of a model: `locations` coherent cells plus one store
/// buffer per (real thread, location). Embed one in the model's state
/// (it is `Clone`) and route every shared load/store through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mem {
    mode: MemMode,
    threads: usize,
    locations: usize,
    vals: Vec<u64>,
    /// `buf[t * locations + loc]` = FIFO of not-yet-visible stores.
    buf: Vec<Vec<u64>>,
}

impl Mem {
    /// Fresh memory, all locations zero, all buffers empty.
    pub fn new(mode: MemMode, threads: usize, locations: usize) -> Mem {
        Mem {
            mode,
            threads,
            locations,
            vals: vec![0; locations],
            buf: vec![Vec::new(); threads * locations],
        }
    }

    fn slot(&self, thread: usize, loc: usize) -> usize {
        thread * self.locations + loc
    }

    /// Set a location's *initial* value (a direct coherent write, no
    /// buffering) — for protocols whose slots do not start at zero,
    /// e.g. announce slots starting `IDLE`.
    pub fn poke(&mut self, loc: usize, val: u64) {
        if let Some(v) = self.vals.get_mut(loc) {
            *v = val;
        }
    }

    /// Store `val` to `loc` as `thread`, with the ordering the real code
    /// declares at that site.
    pub fn store(&mut self, thread: usize, loc: usize, val: u64, ord: DeclaredOrdering) {
        match (self.mode, ord) {
            (MemMode::SeqCstOnly, _)
            | (MemMode::Declared, DeclaredOrdering::Release)
            | (MemMode::Declared, DeclaredOrdering::SeqCst) => {
                self.flush_all(thread);
                if let Some(v) = self.vals.get_mut(loc) {
                    *v = val;
                }
            }
            (MemMode::Declared, DeclaredOrdering::Relaxed) => {
                let slot = self.slot(thread, loc);
                if let Some(q) = self.buf.get_mut(slot) {
                    q.push(val);
                }
            }
        }
    }

    /// Load `loc` as `thread`: own buffered value if any (store
    /// forwarding), else coherent memory.
    pub fn load(&self, thread: usize, loc: usize) -> u64 {
        let slot = self.slot(thread, loc);
        if let Some(&v) = self.buf.get(slot).and_then(|q| q.last()) {
            return v;
        }
        self.vals.get(loc).copied().unwrap_or(0)
    }

    /// Publish every buffered store of `thread`, oldest-first per
    /// location (what a release/SeqCst store does before writing).
    pub fn flush_all(&mut self, thread: usize) {
        for loc in 0..self.locations {
            let slot = self.slot(thread, loc);
            let drained: Vec<u64> = match self.buf.get_mut(slot) {
                Some(q) => std::mem::take(q),
                None => continue,
            };
            if let (Some(v), Some(last)) = (self.vals.get_mut(loc), drained.last()) {
                *v = *last;
            }
        }
    }

    /// Number of companion flusher threads a model embedding this memory
    /// must add to its own thread count.
    pub fn flusher_threads(&self) -> usize {
        match self.mode {
            MemMode::SeqCstOnly => 0,
            MemMode::Declared => self.threads * self.locations,
        }
    }

    /// Scheduling status of flusher `idx` (`0..flusher_threads()`), given
    /// whether its owning real thread has finished: runnable while its
    /// buffer holds stores, finished once the owner is done and the
    /// buffer is drained (stores are always *eventually* visible).
    pub fn flusher_status(&self, idx: usize, owner_finished: bool) -> Status {
        match self.buf.get(idx) {
            Some(q) if !q.is_empty() => Status::Runnable,
            _ if owner_finished => Status::Finished,
            _ => Status::Blocked,
        }
    }

    /// The real thread owning flusher `idx`.
    pub fn flusher_owner(&self, idx: usize) -> usize {
        idx.checked_div(self.locations).unwrap_or(0)
    }

    /// The location flusher `idx` publishes to.
    pub fn flusher_location(&self, idx: usize) -> usize {
        idx.checked_rem(self.locations).unwrap_or(0)
    }

    /// One step of flusher `idx`: publish its oldest buffered store.
    pub fn flusher_step(&mut self, idx: usize) {
        let loc = self.flusher_location(idx);
        let published = match self.buf.get_mut(idx) {
            Some(q) if !q.is_empty() => Some(q.remove(0)),
            _ => None,
        };
        if let (Some(v), Some(p)) = (self.vals.get_mut(loc), published) {
            *v = p;
        }
    }

    /// DPOR access of one flusher step: it writes exactly one coherent
    /// location.
    pub fn flusher_access(&self, idx: usize) -> Access {
        Access::Write(self.flusher_location(idx))
    }

    /// DPOR access of a store by `thread` with the given declared
    /// ordering. A release-class store flushes the thread's whole buffer
    /// (several locations), so it is conservatively [`Access::Global`] —
    /// but only when there is actually something to flush. With empty
    /// buffers the flush is a no-op and the store touches exactly one
    /// location; declaring that precisely is what lets DPOR prune an
    /// all-`SeqCst` protocol as aggressively as under
    /// [`MemMode::SeqCstOnly`].
    pub fn store_access(&self, thread: usize, loc: usize, ord: DeclaredOrdering) -> Access {
        match (self.mode, ord) {
            (MemMode::Declared, DeclaredOrdering::Release)
            | (MemMode::Declared, DeclaredOrdering::SeqCst)
                if !self.quiescent(thread) =>
            {
                Access::Global
            }
            _ => Access::Write(loc),
        }
    }

    /// True when `thread` has no pending buffered stores.
    pub fn quiescent(&self, thread: usize) -> bool {
        (0..self.locations).all(|loc| {
            self.buf
                .get(self.slot(thread, loc))
                .map(|q| q.is_empty())
                .unwrap_or(true)
        })
    }

    /// Fold the coherent memory into a digest accumulator (for
    /// [`crate::dpor::DporModel::digest`] implementations).
    pub fn digest_into(&self, mut hash: u64) -> u64 {
        for &v in &self.vals {
            hash = crate::explore::fnv1a(hash, &v.to_le_bytes());
        }
        hash
    }
}

// ---------------------------------------------------------------------
// Message-passing litmus: the canonical underdeclared-store bug.
// ---------------------------------------------------------------------

/// The classic message-passing litmus test, as a model: thread 0 stores
/// `DATA = 1` (Relaxed — fine *if* the flag carries the release) and
/// then `FLAG = 1` with [`MessagePassing::flag_order`]; thread 1 loads
/// the flag once and, if set, loads the data, which must then be 1.
///
/// With `flag_order = Release` the protocol is correct in every mode.
/// With `flag_order = Relaxed` — the underdeclared foil — the flag can
/// become visible before the data, and only [`MemMode::Declared`]
/// exploration finds it: the run under SeqCst-only semantics stays
/// green, which is precisely why the declared-ordering mode exists.
#[derive(Debug, Clone, Copy)]
pub struct MessagePassing {
    /// Semantics to explore under.
    pub mode: MemMode,
    /// The declared ordering of the flag store in the "code".
    pub flag_order: DeclaredOrdering,
}

const DATA: usize = 0;
const FLAG: usize = 1;
const MP_THREADS: usize = 2;
const MP_LOCS: usize = 2;

/// Execution state of [`MessagePassing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpState {
    mem: Mem,
    pc: [usize; MP_THREADS],
    /// What the reader observed: `(flag, data)` if it got that far.
    observed: Option<(u64, u64)>,
}

impl crate::explore::Model for MessagePassing {
    type State = MpState;

    fn init(&self) -> MpState {
        MpState {
            mem: Mem::new(self.mode, MP_THREADS, MP_LOCS),
            pc: [0; MP_THREADS],
            observed: None,
        }
    }

    fn threads(&self) -> usize {
        MP_THREADS + Mem::new(self.mode, MP_THREADS, MP_LOCS).flusher_threads()
    }

    fn status(&self, s: &MpState, t: usize) -> Status {
        match t {
            0 => {
                if s.pc[0] < 2 {
                    Status::Runnable
                } else {
                    Status::Finished
                }
            }
            1 => {
                if s.pc[1] < 2 && s.observed.is_none() {
                    Status::Runnable
                } else {
                    Status::Finished
                }
            }
            _ => {
                let idx = t - MP_THREADS;
                let owner = s.mem.flusher_owner(idx);
                let owner_finished = match owner {
                    0 => s.pc[0] >= 2,
                    _ => s.pc[1] >= 2 || s.observed.is_some(),
                };
                s.mem.flusher_status(idx, owner_finished)
            }
        }
    }

    fn step(&self, s: &mut MpState, t: usize) {
        match t {
            0 => {
                if s.pc[0] == 0 {
                    s.mem.store(0, DATA, 1, DeclaredOrdering::Relaxed);
                } else {
                    s.mem.store(0, FLAG, 1, self.flag_order);
                }
                s.pc[0] += 1;
            }
            1 => {
                if s.pc[1] == 0 {
                    let flag = s.mem.load(1, FLAG);
                    if flag == 0 {
                        // Not ready: the reader gives up (one probe keeps
                        // the model finite) with nothing to assert.
                        s.observed = Some((0, 0));
                    }
                    s.pc[1] += 1;
                } else {
                    let data = s.mem.load(1, DATA);
                    s.observed = Some((1, data));
                    s.pc[1] += 1;
                }
            }
            _ => s.mem.flusher_step(t - MP_THREADS),
        }
    }

    fn check(&self, s: &MpState) -> Result<(), String> {
        match s.observed {
            Some((1, data)) if data != 1 => Err(format!(
                "message passing violated: flag visible but data = {data}"
            )),
            _ => Ok(()),
        }
    }
}

impl crate::dpor::DporModel for MessagePassing {
    fn access(&self, s: &MpState, t: usize) -> Access {
        match t {
            0 => {
                if s.pc[0] == 0 {
                    s.mem.store_access(0, DATA, DeclaredOrdering::Relaxed)
                } else {
                    s.mem.store_access(0, FLAG, self.flag_order)
                }
            }
            1 => {
                if s.pc[1] == 0 {
                    Access::Read(FLAG)
                } else {
                    Access::Read(DATA)
                }
            }
            _ => s.mem.flusher_access(t - MP_THREADS),
        }
    }

    fn digest(&self, s: &MpState) -> u64 {
        let seed = match s.observed {
            Some((f, d)) => 1 + f * 2 + d,
            None => 0,
        };
        s.mem.digest_into(crate::explore::fnv1a(
            crate::explore::FNV_OFFSET,
            &seed.to_le_bytes(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer};

    #[test]
    fn buffered_store_is_invisible_until_flushed() {
        let mut mem = Mem::new(MemMode::Declared, 2, 1);
        mem.store(0, 0, 7, DeclaredOrdering::Relaxed);
        assert_eq!(mem.load(0, 0), 7, "store forwarding");
        assert_eq!(mem.load(1, 0), 0, "other thread sees old value");
        mem.flusher_step(0);
        assert_eq!(mem.load(1, 0), 7);
    }

    #[test]
    fn release_store_flushes_earlier_relaxed_stores() {
        let mut mem = Mem::new(MemMode::Declared, 2, 2);
        mem.store(0, 0, 5, DeclaredOrdering::Relaxed);
        mem.store(0, 1, 9, DeclaredOrdering::Release);
        assert_eq!(mem.load(1, 0), 5);
        assert_eq!(mem.load(1, 1), 9);
    }

    #[test]
    fn per_location_fifo_coherence() {
        let mut mem = Mem::new(MemMode::Declared, 1, 1);
        mem.store(0, 0, 1, DeclaredOrdering::Relaxed);
        mem.store(0, 0, 2, DeclaredOrdering::Relaxed);
        mem.flusher_step(0);
        assert_eq!(mem.vals[0], 1, "oldest first");
        mem.flusher_step(0);
        assert_eq!(mem.vals[0], 2);
    }

    #[test]
    fn correct_release_flag_passes_in_every_mode() {
        for mode in [MemMode::SeqCstOnly, MemMode::Declared] {
            let model = MessagePassing {
                mode,
                flag_order: DeclaredOrdering::Release,
            };
            Explorer::default()
                .explore(&model)
                .unwrap_or_else(|bug| panic!("{mode:?}: {bug}"));
        }
    }

    #[test]
    fn underdeclared_flag_is_caught_only_in_declared_mode() {
        let relaxed_flag = |mode| MessagePassing {
            mode,
            flag_order: DeclaredOrdering::Relaxed,
        };
        // SeqCst-only exploration is blind to the misdeclaration…
        Explorer::default()
            .explore(&relaxed_flag(MemMode::SeqCstOnly))
            .expect("SeqCst-only semantics cannot see the reordering");
        // …declared-ordering exploration catches it with a replayable
        // counterexample.
        let model = relaxed_flag(MemMode::Declared);
        let bug = Explorer::default().explore(&model).unwrap_err();
        assert!(bug.message.contains("flag visible but data"), "{bug}");
        let state = replay(&model, &bug.schedule).unwrap();
        assert_eq!(state.observed, Some((1, 0)));
    }
}
