//! Dynamic partial-order reduction (DPOR) with sleep sets.
//!
//! Exhaustive enumeration ([`crate::explore::Explorer`]) revisits every
//! permutation of *independent* steps — steps touching different
//! objects — even though all such permutations reach the same state.
//! DPOR (Flanagan & Godefroid, POPL 2005) prunes them: it explores one
//! interleaving, then *backtracks only where two dependent transitions
//! could have been reordered*. Sleep sets remove a further class of
//! redundant re-explorations.
//!
//! Sleep sets interact subtly with DPOR's *lazy* backtrack sets: a
//! thread put to sleep at a state can later turn out to be the exact
//! reordering a newly discovered race requires there — classic sleep
//! sets assume the persistent set was fixed up front, DPOR grows it
//! during the search. Naive combination drops reachable outcomes (the
//! property test in `tests/protocols.rs` found a 3-thread
//! register-machine counterexample, kept there as a regression). The
//! fix: whenever the backtrack update schedules a thread at an earlier
//! state, it also *wakes* it (removes it from that state's sleep set),
//! so late-discovered races always win over sleep-set pruning.
//!
//! The contract with the model is one extra method pair
//! ([`DporModel::access`] / [`DporModel::digest`]) on top of
//! [`Model`]: each thread's next step declares what it touches, and the
//! checker treats two steps as dependent when their accesses conflict.
//! Declaring accesses too coarsely ([`Access::Global`]) is always
//! *sound* — it only costs pruning — so protocol models lean
//! conservative: any step that touches several objects (a
//! release-store flushing a buffer, a reclaim scan) is `Global`.
//!
//! Soundness note on enabledness: a transition that *unblocks* another
//! thread must be dependent with that thread's next step. The models in
//! this crate guarantee it by making every blocking-condition consumer
//! read the object its producer writes (or `Global`), and the backtrack
//! update falls back to a persistent set (all enabled threads) whenever
//! the candidate thread is not enabled at the reordering point — the
//! classic conservative fallback.
//!
//! `tests/protocols.rs` property-tests the reduction against ground
//! truth: on small random models, the set of distinct final-state
//! digests reached by DPOR equals the set reached by exhaustive DFS.

use std::collections::BTreeSet;

use crate::explore::{fnv1a, Model, ScheduleBug, Status, FNV_OFFSET};

/// What one atomic step touches, for the dependence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Thread-local only: independent with everything.
    Local,
    /// Reads shared object `id` (ids are model-chosen, arbitrary).
    Read(usize),
    /// Writes shared object `id`.
    Write(usize),
    /// Touches several shared objects (or unblocks other threads in a
    /// way no single id captures): conservatively dependent with every
    /// non-local access.
    Global,
}

impl Access {
    /// The (symmetric) dependence relation: can reordering two adjacent
    /// steps with these accesses change the outcome?
    pub fn depends(self, other: Access) -> bool {
        match (self, other) {
            (Access::Local, _) | (_, Access::Local) => false,
            (Access::Global, _) | (_, Access::Global) => true,
            (Access::Read(_), Access::Read(_)) => false,
            (Access::Read(a), Access::Write(b))
            | (Access::Write(a), Access::Read(b))
            | (Access::Write(a), Access::Write(b)) => a == b,
        }
    }
}

/// A [`Model`] that additionally declares per-step accesses and can
/// digest a final state, enabling partial-order reduction. The state
/// must be cloneable: DPOR snapshots states along the stack instead of
/// replaying from scratch.
pub trait DporModel: Model
where
    Self::State: Clone,
{
    /// The access the *next* step of `thread` would perform in `state`.
    /// Called only for runnable threads.
    fn access(&self, state: &Self::State, thread: usize) -> Access;

    /// Digest of a final state, used to compare the set of reachable
    /// outcomes against exhaustive exploration. States that differ in
    /// ways the protocol cares about must digest differently.
    fn digest(&self, state: &Self::State) -> u64;
}

/// Statistics of one DPOR exploration. Deterministic for a fixed model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DporExploration {
    /// Complete executions actually run (after pruning).
    pub executions: u64,
    /// Executions cut short by sleep sets (reached a state where every
    /// enabled thread was sleeping).
    pub pruned: u64,
    /// Total atomic steps taken.
    pub steps: u64,
    /// Length of the longest execution.
    pub max_depth: usize,
    /// FNV-1a digest over every (depth, thread) choice in visit order.
    pub digest: u64,
    /// Digests of every distinct final state reached.
    pub final_digests: BTreeSet<u64>,
}

/// One stack entry of the DPOR depth-first search.
struct Frame<S> {
    /// State *before* any transition is taken from this frame.
    state: S,
    /// Runnable threads in `state`, ascending.
    enabled: Vec<usize>,
    /// `access(state, t)` for each entry of `enabled` (same order).
    accesses: Vec<Access>,
    /// Threads that must (still) be explored from this state.
    backtrack: BTreeSet<usize>,
    /// Threads already explored from this state.
    done: BTreeSet<usize>,
    /// Threads whose exploration here is provably redundant.
    sleep: BTreeSet<usize>,
    /// The transition currently taken out of this frame (thread,
    /// access) — valid for every frame below the top of the stack.
    taken: Option<(usize, Access)>,
}

/// Depth-first DPOR explorer. Like [`crate::explore::Explorer`], the
/// execution cap is a runaway backstop: exceeding it is an error, never
/// a silent truncation.
#[derive(Debug, Clone, Copy)]
pub struct DporExplorer {
    /// Abort with an error beyond this many complete executions.
    pub max_executions: u64,
}

impl Default for DporExplorer {
    fn default() -> Self {
        DporExplorer {
            max_executions: 1_000_000,
        }
    }
}

impl DporExplorer {
    /// Explore a representative subset of interleavings covering every
    /// Mazurkiewicz trace (dependence-equivalence class) of `model`,
    /// checking the invariant at the end of each complete execution.
    pub fn explore<M>(&self, model: &M) -> Result<DporExploration, ScheduleBug>
    where
        M: DporModel,
        M::State: Clone,
    {
        let mut stats = DporExploration {
            executions: 0,
            pruned: 0,
            steps: 0,
            max_depth: 0,
            digest: FNV_OFFSET,
            final_digests: BTreeSet::new(),
        };
        let mut stack: Vec<Frame<M::State>> = Vec::new();
        let first = self.make_frame(model, model.init(), BTreeSet::new());
        stack.push(first);
        self.update_backtracks(model, &mut stack);

        while let Some(top) = stack.last() {
            if top.enabled.is_empty() {
                let schedule = trace_of(&stack);
                let stuck: Vec<usize> = (0..model.threads())
                    .filter(|&t| model.status(&top.state, t) == Status::Blocked)
                    .collect();
                if !stuck.is_empty() {
                    return Err(ScheduleBug {
                        schedule,
                        message: format!("deadlock: threads {stuck:?} blocked forever"),
                    });
                }
                stats.executions += 1;
                if stats.executions > self.max_executions {
                    return Err(ScheduleBug {
                        schedule: Vec::new(),
                        message: format!(
                            "DPOR exploration exceeded {} executions — model too large",
                            self.max_executions
                        ),
                    });
                }
                stats.max_depth = stats.max_depth.max(stack.len() - 1);
                stats.final_digests.insert(model.digest(&top.state));
                if let Err(message) = model.check(&top.state) {
                    return Err(ScheduleBug { schedule, message });
                }
                stack.pop();
                continue;
            }

            // Next candidate: in the backtrack set, not yet done, not
            // sleeping. Sleeping members are provably redundant here.
            let candidate = top
                .backtrack
                .iter()
                .copied()
                .find(|t| !top.done.contains(t) && !top.sleep.contains(t));
            let Some(t) = candidate else {
                if top.done.is_empty() {
                    // Every enabled thread was asleep: this whole branch
                    // is equivalent to one already explored.
                    stats.pruned += 1;
                }
                stack.pop();
                continue;
            };

            let depth = stack.len() - 1;
            // ivm-lint: allow(no-panic) — invariant: the pop branch above ran, so the stack is non-empty
            let top = stack.last_mut().expect("non-empty stack");
            top.done.insert(t);
            let idx = top
                .enabled
                .iter()
                .position(|&e| e == t)
                // ivm-lint: allow(no-panic) — invariant: pick_thread only returns members of `enabled`
                .expect("backtrack sets only hold enabled threads");
            let access = top.accesses[idx];
            top.taken = Some((t, access));

            // Sleep set inheritance: anything asleep here (or already
            // explored here) stays asleep in the child iff its step is
            // independent with the one we are taking.
            let mut child_sleep = BTreeSet::new();
            for (i, &q) in top.enabled.iter().enumerate() {
                if q == t {
                    continue;
                }
                if (top.sleep.contains(&q) || top.done.contains(&q))
                    && !top.accesses[i].depends(access)
                {
                    child_sleep.insert(q);
                }
            }

            let mut child_state = top.state.clone();
            model.step(&mut child_state, t);
            stats.steps += 1;
            stats.digest = fnv1a(stats.digest, &[depth as u8, t as u8]);

            let child = self.make_frame(model, child_state, child_sleep);
            stack.push(child);
            self.update_backtracks(model, &mut stack);
        }
        Ok(stats)
    }

    fn make_frame<M>(&self, model: &M, state: M::State, sleep: BTreeSet<usize>) -> Frame<M::State>
    where
        M: DporModel,
        M::State: Clone,
    {
        let enabled: Vec<usize> = (0..model.threads())
            .filter(|&t| model.status(&state, t) == Status::Runnable)
            .collect();
        let accesses: Vec<Access> = enabled.iter().map(|&t| model.access(&state, t)).collect();
        let mut backtrack = BTreeSet::new();
        if let Some(&first) = enabled.iter().find(|t| !sleep.contains(t)) {
            backtrack.insert(first);
        }
        Frame {
            state,
            enabled,
            accesses,
            backtrack,
            done: BTreeSet::new(),
            sleep,
            taken: None,
        }
    }

    /// The DPOR backtrack update, run whenever a new frame is pushed:
    /// for every thread enabled at the new frontier, find the *last*
    /// earlier transition dependent with that thread's next step and
    /// make sure the reordering will be explored from just before it.
    fn update_backtracks<M>(&self, _model: &M, stack: &mut [Frame<M::State>])
    where
        M: DporModel,
        M::State: Clone,
    {
        let Some((frontier, below)) = stack.split_last_mut() else {
            return;
        };
        for (i, &p) in frontier.enabled.iter().enumerate() {
            let a = frontier.accesses[i];
            if a == Access::Local {
                continue;
            }
            // Last j with a transition dependent with (p, a), by a
            // different thread.
            let Some(j) = (0..below.len()).rev().find(|&j| {
                below[j]
                    .taken
                    .map(|(t, ta)| t != p && ta.depends(a))
                    .unwrap_or(false)
            }) else {
                continue;
            };
            if below[j].enabled.contains(&p) {
                below[j].backtrack.insert(p);
                // Wake the thread if it was asleep at j. A sleeping
                // thread is redundant only as long as no *new* race
                // demands its exploration; this race was discovered
                // after j's sleep set was computed, so keeping p asleep
                // there would suppress the very reordering DPOR just
                // scheduled (the classic sleep-set/lazy-backtrack
                // interaction — see the module docs).
                below[j].sleep.remove(&p);
            } else {
                // Persistent-set fallback: p was not yet enabled at j,
                // so schedule everything that was.
                for &e in &below[j].enabled {
                    below[j].backtrack.insert(e);
                    below[j].sleep.remove(&e);
                }
            }
        }
    }
}

/// The schedule currently on the stack: one taken transition per frame
/// below the top.
fn trace_of<S>(stack: &[Frame<S>]) -> Vec<usize> {
    stack
        .iter()
        .filter_map(|f| f.taken.map(|(t, _)| t))
        .collect()
}

/// Ground truth for the equivalence property test: exhaustive DFS (no
/// reduction) collecting the digest of every final state. Errors if the
/// model deadlocks, fails its check, or exceeds `max_executions`.
pub fn exhaustive_final_digests<M>(
    model: &M,
    max_executions: u64,
) -> Result<BTreeSet<u64>, ScheduleBug>
where
    M: DporModel,
    M::State: Clone,
{
    struct Node<S> {
        state: S,
        enabled: Vec<usize>,
        next: usize,
        taken: Option<usize>,
    }
    fn make_node<M: DporModel>(model: &M, state: M::State) -> Node<M::State>
    where
        M::State: Clone,
    {
        let enabled = (0..model.threads())
            .filter(|&t| model.status(&state, t) == Status::Runnable)
            .collect();
        Node {
            state,
            enabled,
            next: 0,
            taken: None,
        }
    }
    let mut digests = BTreeSet::new();
    let mut executions = 0u64;
    let mut stack = vec![make_node(model, model.init())];
    while let Some(top) = stack.last_mut() {
        if top.enabled.is_empty() {
            let stuck =
                (0..model.threads()).any(|t| model.status(&top.state, t) == Status::Blocked);
            let digest = model.digest(&top.state);
            let checked = model.check(&top.state);
            let schedule: Vec<usize> = stack.iter().filter_map(|n| n.taken).collect();
            if stuck {
                return Err(ScheduleBug {
                    schedule,
                    message: "deadlock in exhaustive exploration".into(),
                });
            }
            executions += 1;
            if executions > max_executions {
                return Err(ScheduleBug {
                    schedule: Vec::new(),
                    message: format!("exhaustive exploration exceeded {max_executions} executions"),
                });
            }
            digests.insert(digest);
            if let Err(message) = checked {
                return Err(ScheduleBug { schedule, message });
            }
            stack.pop();
            continue;
        }
        if top.next >= top.enabled.len() {
            stack.pop();
            continue;
        }
        let t = top.enabled[top.next];
        top.next += 1;
        top.taken = Some(t);
        let mut state = top.state.clone();
        model.step(&mut state, t);
        let node = make_node(model, state);
        stack.push(node);
    }
    Ok(digests)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: N threads each increment a private counter `steps`
    /// times (all Local), then one shared cell once (Write). Final state
    /// is always the same; DPOR should explore far fewer interleavings
    /// than the exhaustive count.
    #[derive(Clone)]
    struct Counters {
        threads: usize,
        local_steps: usize,
    }

    #[derive(Clone)]
    struct CountersState {
        pc: Vec<usize>,
        shared: u64,
    }

    impl Model for Counters {
        type State = CountersState;
        fn init(&self) -> CountersState {
            CountersState {
                pc: vec![0; self.threads],
                shared: 0,
            }
        }
        fn threads(&self) -> usize {
            self.threads
        }
        fn status(&self, s: &CountersState, t: usize) -> Status {
            if s.pc[t] <= self.local_steps {
                Status::Runnable
            } else {
                Status::Finished
            }
        }
        fn step(&self, s: &mut CountersState, t: usize) {
            if s.pc[t] == self.local_steps {
                s.shared += 1;
            }
            s.pc[t] += 1;
        }
        fn check(&self, s: &CountersState) -> Result<(), String> {
            if s.shared == self.threads as u64 {
                Ok(())
            } else {
                Err(format!("shared = {}, want {}", s.shared, self.threads))
            }
        }
    }

    impl DporModel for Counters {
        fn access(&self, s: &CountersState, t: usize) -> Access {
            if s.pc[t] == self.local_steps {
                Access::Write(0)
            } else {
                Access::Local
            }
        }
        fn digest(&self, s: &CountersState) -> u64 {
            s.shared
        }
    }

    #[test]
    fn dpor_prunes_independent_interleavings() {
        let model = Counters {
            threads: 3,
            local_steps: 3,
        };
        let dpor = DporExplorer::default().explore(&model).unwrap();
        let exhaustive = crate::explore::Explorer::default().explore(&model).unwrap();
        assert!(
            dpor.executions < exhaustive.interleavings / 10,
            "dpor {} vs exhaustive {}",
            dpor.executions,
            exhaustive.interleavings
        );
        let truth = exhaustive_final_digests(&model, 1_000_000).unwrap();
        assert_eq!(dpor.final_digests, truth);
    }

    #[test]
    fn dpor_is_deterministic() {
        let model = Counters {
            threads: 3,
            local_steps: 2,
        };
        let a = DporExplorer::default().explore(&model).unwrap();
        let b = DporExplorer::default().explore(&model).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn access_dependence_table() {
        use Access::*;
        assert!(!Local.depends(Global));
        assert!(Global.depends(Read(3)));
        assert!(!Read(1).depends(Read(1)));
        assert!(Read(1).depends(Write(1)));
        assert!(!Read(1).depends(Write(2)));
        assert!(Write(4).depends(Write(4)));
    }

    /// A model whose check fails on one specific reordering: two threads
    /// write distinct values to one cell; check requires thread 1's
    /// value to... lose. DPOR must still find the violating order.
    #[derive(Clone)]
    struct LastWriteWins;

    #[derive(Clone)]
    struct LwwState {
        pc: [usize; 2],
        cell: u64,
    }

    impl Model for LastWriteWins {
        type State = LwwState;
        fn init(&self) -> LwwState {
            LwwState {
                pc: [0; 2],
                cell: 0,
            }
        }
        fn threads(&self) -> usize {
            2
        }
        fn status(&self, s: &LwwState, t: usize) -> Status {
            if s.pc[t] == 0 {
                Status::Runnable
            } else {
                Status::Finished
            }
        }
        fn step(&self, s: &mut LwwState, t: usize) {
            s.cell = t as u64 + 1;
            s.pc[t] = 1;
        }
        fn check(&self, s: &LwwState) -> Result<(), String> {
            if s.cell == 2 {
                Ok(())
            } else {
                Err(format!("cell = {}", s.cell))
            }
        }
    }

    impl DporModel for LastWriteWins {
        fn access(&self, _s: &LwwState, _t: usize) -> Access {
            Access::Write(0)
        }
        fn digest(&self, s: &LwwState) -> u64 {
            s.cell
        }
    }

    #[test]
    fn dpor_finds_the_dependent_reordering() {
        let bug = DporExplorer::default().explore(&LastWriteWins).unwrap_err();
        assert!(bug.message.contains("cell"), "{bug}");
        let state = crate::explore::replay(&LastWriteWins, &bug.schedule).unwrap();
        assert_eq!(state.cell, 1);
    }
}
