//! A model of the serving layer's writer/session handoff and graceful
//! shutdown (`crates/serve/src/server.rs`).
//!
//! The real protocol: every session thread sends `WriteReq` messages to
//! the single writer over an mpsc channel and blocks on a rendezvous
//! reply channel; `Server::stop` flips the `stopping` flag, **shuts down
//! every session's TCP socket** (the wakeup that unblocks sessions
//! parked in `read`), joins the sessions, drops the main writer sender,
//! and joins the writer — which exits its `recv` loop only once *all*
//! senders are gone. The load-bearing invariants:
//!
//! * **No lost wakeup**: every session is eventually unblocked by the
//!   socket shutdown and every in-flight request still gets its reply
//!   (the writer drains the queue before exiting, because blocked
//!   sessions still hold their sender clones).
//! * **Shutdown unblocks all sessions**: the join loop terminates.
//!
//! In the model, each session sends one request, consumes its reply,
//! then parks "reading the socket" until its socket is closed; the
//! stopper closes sockets one by one, joins sessions, drops the main
//! sender, joins the writer. The seeded foil
//! [`ServeFoil::SkipSocketShutdown`] elides the socket-close steps —
//! the exact lost-wakeup bug `begin_stop` exists to prevent — and the
//! checker reports it as a deadlock with a replayable schedule
//! (sessions parked forever, stopper parked in join, writer parked in
//! `recv`).
//!
//! This model is plain interleaving semantics (no [`crate::mem`]): the
//! real implementation synchronizes through mutexes and channels, not
//! hand-rolled orderings, so SeqCst-equivalent exploration is faithful.

use std::collections::VecDeque;

use crate::dpor::{Access, DporModel};
use crate::explore::{fnv1a, Model, Status, FNV_OFFSET};

/// Seeded protocol mutation the checker must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFoil {
    /// The protocol as written: must verify clean.
    None,
    /// `stop` flips the flag but never shuts the session sockets down —
    /// the lost wakeup the real `begin_stop` exists to prevent.
    SkipSocketShutdown,
}

/// Model parameters: `sessions` concurrent sessions, each with one
/// in-flight request at shutdown time.
#[derive(Debug, Clone, Copy)]
pub struct ServeModel {
    /// Number of session threads.
    pub sessions: usize,
    /// Which (if any) protocol mutation to seed.
    pub foil: ServeFoil,
}

/// Session progress: send request → await reply → park on socket →
/// finished (sender dropped).
const SENT: usize = 1;
const REPLIED: usize = 2;
const EXITED: usize = 3;

/// Execution state of [`ServeModel`]. Threads `0..S` are sessions,
/// thread `S` is the writer, thread `S + 1` is the stopper.
#[derive(Debug, Clone)]
pub struct ServeState {
    /// Per-session program counter (`0..=EXITED`).
    spc: Vec<usize>,
    /// The mpsc request queue (session ids).
    queue: VecDeque<usize>,
    /// Per-session delivered-reply flag (the rendezvous channel).
    replied: Vec<bool>,
    /// Per-session socket state (closed ⇒ a parked read returns).
    socket_closed: Vec<bool>,
    /// Live `writer_tx` clones: one per unfinished session, plus main's.
    senders: usize,
    /// The `stopping` flag (modeled for fidelity; sessions learn of
    /// shutdown through their socket, as in the real code).
    stopping: bool,
    /// Requests the writer has processed.
    processed: usize,
    /// Writer exited its recv loop.
    writer_done: bool,
    /// Stopper program counter.
    stpc: usize,
}

impl ServeModel {
    fn writer(&self) -> usize {
        self.sessions
    }

    /// Stopper pc layout: 0 set flag, `1..=S` close socket `pc-1` (the
    /// foil skips straight past these), `S+1` join sessions, `S+2` drop
    /// main sender, `S+3` join writer.
    fn close_slot(&self, stpc: usize) -> Option<usize> {
        (stpc >= 1 && stpc <= self.sessions).then(|| stpc - 1)
    }

    // DPOR object ids.
    fn obj_queue(&self) -> usize {
        0
    }
    fn obj_reply(&self, s: usize) -> usize {
        1 + s
    }
    fn obj_stopping(&self) -> usize {
        1 + self.sessions
    }
    fn obj_writer_done(&self) -> usize {
        2 + self.sessions
    }
}

impl Model for ServeModel {
    type State = ServeState;

    fn init(&self) -> ServeState {
        ServeState {
            spc: vec![0; self.sessions],
            queue: VecDeque::new(),
            replied: vec![false; self.sessions],
            socket_closed: vec![false; self.sessions],
            senders: self.sessions + 1,
            stopping: false,
            processed: 0,
            writer_done: false,
            stpc: 0,
        }
    }

    fn threads(&self) -> usize {
        self.sessions + 2
    }

    fn status(&self, s: &ServeState, t: usize) -> Status {
        if t < self.sessions {
            match s.spc[t] {
                0 => Status::Runnable,
                SENT => {
                    if s.replied[t] {
                        Status::Runnable
                    } else {
                        Status::Blocked
                    }
                }
                REPLIED => {
                    if s.socket_closed[t] {
                        Status::Runnable
                    } else {
                        Status::Blocked
                    }
                }
                _ => Status::Finished,
            }
        } else if t == self.writer() {
            if s.writer_done {
                Status::Finished
            } else if !s.queue.is_empty() || s.senders == 0 {
                Status::Runnable
            } else {
                Status::Blocked
            }
        } else {
            let after_close = 1 + self.sessions;
            if s.stpc == after_close {
                // Join sessions: blocked until every session exited.
                if s.spc.iter().all(|&pc| pc == EXITED) {
                    Status::Runnable
                } else {
                    Status::Blocked
                }
            } else if s.stpc == after_close + 2 {
                // Join writer.
                if s.writer_done {
                    Status::Runnable
                } else {
                    Status::Blocked
                }
            } else if s.stpc > after_close + 2 {
                Status::Finished
            } else {
                Status::Runnable
            }
        }
    }

    fn step(&self, s: &mut ServeState, t: usize) {
        if t < self.sessions {
            match s.spc[t] {
                0 => s.queue.push_back(t),
                SENT => {}           // reply consumed; fall through to socket read
                _ => s.senders -= 1, // socket closed: exit, dropping sender
            }
            s.spc[t] += 1;
        } else if t == self.writer() {
            if let Some(session) = s.queue.pop_front() {
                if let Some(r) = s.replied.get_mut(session) {
                    *r = true;
                }
                s.processed += 1;
            } else {
                // All senders gone and the queue is drained: recv fails,
                // the writer loop exits.
                s.writer_done = true;
            }
        } else {
            if s.stpc == 0 {
                s.stopping = true;
                if self.foil == ServeFoil::SkipSocketShutdown {
                    // The foil forgets the wakeup entirely.
                    s.stpc = 1 + self.sessions;
                    return;
                }
            } else if let Some(session) = self.close_slot(s.stpc) {
                if let Some(c) = s.socket_closed.get_mut(session) {
                    *c = true;
                }
            } else if s.stpc == 2 + self.sessions {
                s.senders -= 1; // drop main writer_tx
            }
            s.stpc += 1;
        }
    }

    fn check(&self, s: &ServeState) -> Result<(), String> {
        if !s.writer_done {
            return Err("writer never exited its recv loop".into());
        }
        if s.processed != self.sessions || !s.queue.is_empty() {
            return Err(format!(
                "writer processed {} of {} requests ({} still queued)",
                s.processed,
                self.sessions,
                s.queue.len()
            ));
        }
        if let Some(sess) = s.replied.iter().position(|&r| !r) {
            return Err(format!("session {sess} never received its reply"));
        }
        if s.senders != 0 {
            return Err(format!("{} sender clone(s) leaked", s.senders));
        }
        if !s.stopping {
            return Err("execution finished without stopping".into());
        }
        Ok(())
    }
}

impl DporModel for ServeModel {
    fn access(&self, s: &ServeState, t: usize) -> Access {
        if t < self.sessions {
            match s.spc[t] {
                0 => Access::Write(self.obj_queue()),
                SENT => Access::Read(self.obj_reply(t)),
                // Exiting decrements the shared sender count (which can
                // enable the writer's final step) after a socket read.
                _ => Access::Global,
            }
        } else if t == self.writer() {
            // Pops the queue and delivers a reply (or consumes the
            // senders-gone condition): several objects, keep it Global.
            Access::Global
        } else {
            let after_close = 1 + self.sessions;
            if s.stpc == 0 {
                Access::Write(self.obj_stopping())
            } else if self.close_slot(s.stpc).is_some() {
                // Closing a socket unblocks that session.
                Access::Global
            } else if s.stpc == after_close || s.stpc == after_close + 1 {
                Access::Global
            } else {
                Access::Read(self.obj_writer_done())
            }
        }
    }

    fn digest(&self, s: &ServeState) -> u64 {
        let mut h = FNV_OFFSET;
        for &pc in &s.spc {
            h = fnv1a(h, &[pc as u8]);
        }
        for &r in &s.replied {
            h = fnv1a(h, &[r as u8]);
        }
        h = fnv1a(h, &(s.processed as u64).to_le_bytes());
        h = fnv1a(h, &[s.writer_done as u8, s.stopping as u8, s.senders as u8]);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpor::DporExplorer;
    use crate::explore::replays_to_deadlock;

    #[test]
    fn shutdown_protocol_verifies_clean() {
        let m = ServeModel {
            sessions: 2,
            foil: ServeFoil::None,
        };
        let stats = DporExplorer::default().explore(&m).unwrap();
        assert!(stats.executions >= 500, "{stats:?}");
    }

    #[test]
    fn skipped_socket_shutdown_is_a_caught_lost_wakeup() {
        let m = ServeModel {
            sessions: 2,
            foil: ServeFoil::SkipSocketShutdown,
        };
        let bug = DporExplorer::default().explore(&m).unwrap_err();
        assert!(bug.message.contains("deadlock"), "{bug}");
        // The schedule replays to the stuck state: nothing runnable,
        // sessions parked on their sockets forever.
        assert!(replays_to_deadlock(&m, &bug.schedule).unwrap());
    }

    #[test]
    fn exploration_is_deterministic() {
        let m = ServeModel {
            sessions: 2,
            foil: ServeFoil::None,
        };
        let a = DporExplorer::default().explore(&m).unwrap();
        let b = DporExplorer::default().explore(&m).unwrap();
        assert_eq!(a, b);
    }
}
