//! `ivm-race` — a deterministic model checker for the engine's
//! concurrency protocols.
//!
//! The static lints of `ivm-lint` check *tokens*; this crate checks
//! *interleavings*. A protocol is written as an explicit state machine
//! ([`Model`]): threads of atomic steps over shared state, an invariant
//! checked at the end of every complete execution. Three layers make
//! that checkable at protocol scale:
//!
//! 1. [`explore`] — the exhaustive depth-first scheduler promoted from
//!    `crates/parallel/src/model.rs` (the pool's "mini-loom"), with
//!    replayable [`ScheduleBug`] counterexamples.
//! 2. [`dpor`] — dynamic partial-order reduction with sleep sets:
//!    models declare per-step accesses, and only interleavings that
//!    reorder *dependent* steps are explored. Property-tested against
//!    exhaustive exploration for final-state equivalence.
//! 3. [`mem`] — modeled atomics with **declared** memory orderings: a
//!    `Relaxed` store's visibility becomes a schedulable store-buffer
//!    flush, so a protocol whose declared orderings are weaker than it
//!    needs fails a model run even though SeqCst-only exploration stays
//!    green.
//!
//! On top sit faithful models of the two real protocols this repo
//! ships: [`snapshot_model`] (`SnapshotHub` publish/pin/reclaim —
//! no reader ever dereferences a freed snapshot, epochs are monotone)
//! and [`serve_model`] (the serve writer/session handoff and graceful
//! shutdown — no lost wakeups, shutdown unblocks every session). Each
//! carries seeded *foils* (deliberately broken variants: skipped or
//! underdeclared announce fence, skipped socket shutdown) that the
//! checker must catch; the `ivm-race` binary runs models and foils as a
//! CI gate (`ci/analyze.sh`).
//!
//! The exploration is a pure function of the model — no clocks, no
//! ambient randomness, no real threads — so every statistic is
//! bit-reproducible and every counterexample replays.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dpor;
pub mod explore;
pub mod mem;
pub mod serve_model;
pub mod snapshot_model;

pub use dpor::{exhaustive_final_digests, Access, DporExploration, DporExplorer, DporModel};
pub use explore::{
    replay, replay_prefix, replays_to_deadlock, Exploration, Explorer, Model, ScheduleBug, Status,
};
pub use mem::{DeclaredOrdering, Mem, MemMode, MessagePassing};
pub use serve_model::{ServeFoil, ServeModel};
pub use snapshot_model::{SnapshotFoil, SnapshotModel, IDLE};
