//! The exhaustive schedule explorer: models, schedules, replay.
//!
//! This is the core that started life as `crates/parallel/src/model.rs`
//! (the pool's "mini-loom"): a concurrent protocol is written as an
//! explicit state machine of threads taking atomic steps over shared
//! state, and the [`Explorer`] enumerates **every** interleaving of those
//! steps with a scripted scheduler (depth-first, replay-based: each
//! execution restarts from the initial state and follows a recorded
//! schedule prefix), running the model's invariant check at the end of
//! each complete execution.
//!
//! The exploration is a pure function of the model: no clocks, no
//! ambient randomness, no real threads. Two runs produce bit-identical
//! statistics and trace digests, and a reported counterexample is a
//! replayable schedule (`run with threads [1, 0, 2, ...]`).
//!
//! Exhaustive enumeration is the ground truth but scales as the
//! factorial of the step count; [`crate::dpor`] layers partial-order
//! reduction on top for the protocol-sized models, and
//! [`crate::mem`] supplies modeled atomics with *declared* memory
//! orderings so weaker-than-`SeqCst` behaviours become scheduling
//! choices this same explorer can enumerate.

use std::fmt;

/// Scheduling status of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Has an enabled atomic step.
    Runnable,
    /// Waiting on another thread (e.g. a join on an unfinished worker).
    Blocked,
    /// No steps left.
    Finished,
}

/// A concurrent protocol expressed as threads of atomic steps over
/// shared state. The explorer owns the schedule; the model owns the
/// semantics.
pub trait Model {
    /// Shared state mutated by the threads.
    type State;

    /// Fresh state for one execution.
    fn init(&self) -> Self::State;

    /// Number of model threads (fixed for all executions).
    fn threads(&self) -> usize;

    /// Scheduling status of `thread` in `state`.
    fn status(&self, state: &Self::State, thread: usize) -> Status;

    /// Execute one atomic step of `thread`. Called only when
    /// [`Model::status`] says `Runnable`.
    fn step(&self, state: &mut Self::State, thread: usize);

    /// Invariant check at the end of a complete execution (every thread
    /// `Finished`). Return a description of the violation, if any.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// A schedule that violated the model's invariants, with enough detail
/// to replay it by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleBug {
    /// Thread ids in execution order — feed to [`replay`] (or
    /// [`replay_prefix`] for deadlock schedules) to reproduce.
    pub schedule: Vec<usize>,
    /// What went wrong: the model's check message, or a deadlock report.
    pub message: String,
}

impl fmt::Display for ScheduleBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} under schedule {:?}", self.message, self.schedule)
    }
}

/// Aggregate statistics of an exhaustive exploration. Deterministic:
/// identical across runs for the same model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Number of distinct complete interleavings executed.
    pub interleavings: u64,
    /// Total atomic steps across all interleavings.
    pub steps: u64,
    /// Length of the longest execution.
    pub max_depth: usize,
    /// FNV-1a digest of every (depth, thread) choice in visit order —
    /// the determinism witness two runs are compared by.
    pub digest: u64,
}

/// Exhaustive depth-first schedule exploration with a bounded number of
/// interleavings (a runaway backstop, not a sampling knob — hitting it
/// is an error, never a silent truncation).
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Abort with an error beyond this many interleavings.
    pub max_interleavings: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_interleavings: 1_000_000,
        }
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl Explorer {
    /// Run every interleaving of `model`, checking invariants at the end
    /// of each. Returns aggregate statistics, or the first violating
    /// schedule (including deadlocks: no thread runnable while some are
    /// unfinished).
    pub fn explore<M: Model>(&self, model: &M) -> Result<Exploration, ScheduleBug> {
        // DFS over choice points by replay: `picks[d]` is the index into
        // the runnable set chosen at depth `d`. After each complete
        // execution, backtrack to the deepest choice point with an
        // untried alternative and replay from scratch.
        let mut picks: Vec<usize> = Vec::new();
        let mut stats = Exploration {
            interleavings: 0,
            steps: 0,
            max_depth: 0,
            digest: FNV_OFFSET,
        };
        loop {
            if stats.interleavings >= self.max_interleavings {
                return Err(ScheduleBug {
                    schedule: Vec::new(),
                    message: format!(
                        "exploration exceeded {} interleavings — model too large",
                        self.max_interleavings
                    ),
                });
            }
            let mut state = model.init();
            // (chosen index, runnable count) per depth of this execution.
            let mut frames: Vec<(usize, usize)> = Vec::new();
            let mut trace: Vec<usize> = Vec::new();
            loop {
                let runnable: Vec<usize> = (0..model.threads())
                    .filter(|&t| model.status(&state, t) == Status::Runnable)
                    .collect();
                if runnable.is_empty() {
                    let stuck: Vec<usize> = (0..model.threads())
                        .filter(|&t| model.status(&state, t) == Status::Blocked)
                        .collect();
                    if !stuck.is_empty() {
                        return Err(ScheduleBug {
                            schedule: trace,
                            message: format!("deadlock: threads {stuck:?} blocked forever"),
                        });
                    }
                    break; // all finished: complete execution
                }
                let depth = frames.len();
                let pick = if depth < picks.len() { picks[depth] } else { 0 };
                frames.push((pick, runnable.len()));
                let thread = runnable[pick];
                trace.push(thread);
                stats.digest = fnv1a(stats.digest, &[depth as u8, thread as u8]);
                model.step(&mut state, thread);
                stats.steps += 1;
            }
            stats.interleavings += 1;
            stats.max_depth = stats.max_depth.max(frames.len());
            if let Err(message) = model.check(&state) {
                return Err(ScheduleBug {
                    schedule: trace,
                    message,
                });
            }
            // Backtrack to the deepest untried alternative.
            picks = frames.iter().map(|&(p, _)| p).collect();
            let mut advanced = false;
            while let Some((pick, n)) = frames.pop() {
                picks.truncate(frames.len());
                if pick + 1 < n {
                    picks.push(pick + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(stats);
            }
        }
    }
}

/// Replay one explicit schedule (thread ids in execution order) against
/// a model, returning the final state — the debugging companion to a
/// [`ScheduleBug`]. Fails if the schedule names a non-runnable thread or
/// stops before every thread finishes.
pub fn replay<M: Model>(model: &M, schedule: &[usize]) -> Result<M::State, String> {
    let state = replay_prefix(model, schedule)?;
    for t in 0..model.threads() {
        if model.status(&state, t) != Status::Finished {
            return Err(format!("schedule ended with thread {t} unfinished"));
        }
    }
    Ok(state)
}

/// Replay a schedule *prefix*, returning the state it leads to without
/// requiring every thread to have finished. This is how deadlock
/// counterexamples are reproduced: the schedule of a deadlock
/// [`ScheduleBug`] ends at the stuck state, where no thread is runnable
/// but some are blocked.
pub fn replay_prefix<M: Model>(model: &M, schedule: &[usize]) -> Result<M::State, String> {
    let mut state = model.init();
    for (i, &thread) in schedule.iter().enumerate() {
        if thread >= model.threads() {
            return Err(format!("step {i}: no such thread {thread}"));
        }
        match model.status(&state, thread) {
            Status::Runnable => model.step(&mut state, thread),
            s => return Err(format!("step {i}: thread {thread} is {s:?}, not runnable")),
        }
    }
    Ok(state)
}

/// True when `schedule` leads the model to a deadlock: no thread
/// runnable, at least one blocked. Used to confirm that a deadlock
/// counterexample actually reproduces.
pub fn replays_to_deadlock<M: Model>(model: &M, schedule: &[usize]) -> Result<bool, String> {
    let state = replay_prefix(model, schedule)?;
    let mut blocked = false;
    for t in 0..model.threads() {
        match model.status(&state, t) {
            Status::Runnable => return Ok(false),
            Status::Blocked => blocked = true,
            Status::Finished => {}
        }
    }
    Ok(blocked)
}
