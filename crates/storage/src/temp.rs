//! Scratch directories for tests, benches and examples.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Create a fresh empty directory under the system temp dir, namespaced by
/// `label`, the process id and a per-process counter so concurrent test
/// binaries never collide. The directory is **not** removed automatically —
/// callers that care clean up themselves (the OS temp dir is the backstop).
pub fn scratch_dir(label: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ivm-storage-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_distinct_and_exist() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
    }
}
