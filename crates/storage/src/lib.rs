//! Durability subsystem for the SIGMOD 1986 IVM reproduction.
//!
//! The paper's differential maintenance machinery (`ivm` crate) operates on
//! purely in-memory state. This crate makes that state durable without
//! changing its semantics:
//!
//! * [`codec`] — a deterministic, total binary codec for every persistent
//!   relational structure, multiplicity counters included;
//! * [`frame`] — length-prefixed, CRC-32-checksummed frames, the unit of
//!   corruption detection;
//! * [`wal`] — an append-only write-ahead log with explicit sync points and
//!   strictly monotonic LSNs, logging transactions *and* DDL;
//! * [`checkpoint`] — atomic (write-temp-then-rename) snapshots of the full
//!   database plus every view's counted materialization and the last
//!   applied LSN;
//! * [`fault`] — fault injection for crash and corruption tests: raw
//!   helpers (torn writes, flipped bits/bytes, zeroed ranges) plus
//!   declarative [`FailpointPlan`]s (named failpoints, trigger counts,
//!   corrupt-then-crash actions) shared by the recovery tests and the
//!   deterministic simulator;
//! * [`temp`] — collision-free scratch directories for tests and examples.
//!
//! Recovery policy is split across layers: this crate finds the newest
//! checkpoint that passes validation and the valid WAL prefix; the `ivm`
//! crate replays the WAL tail through its differential engine (see
//! `ivm::durability`), so recovered views are *rolled forward*, not
//! re-evaluated from scratch.
//!
//! Every failure mode of the on-disk formats is a typed [`StorageError`];
//! reading corrupt bytes never panics.
//!
//! # Log discipline and cost accounting
//!
//! The WAL follows *log before apply*: the maintenance layer appends and
//! syncs a record describing an operation before mutating in-memory
//! state, so the sync is the commit point. Every handle keeps
//! [`WalStats`] — records/bytes appended, sync points, compaction passes
//! and bytes reclaimed — which the `ivm` crate re-emits through its
//! observability layer as the `wal.*` counters documented in
//! `docs/OBSERVABILITY.md`. Note the stats are cumulative per handle;
//! the *live* file size after compaction comes from [`Wal::len_bytes`].
//!
//! # Example: a WAL round trip
//!
//! ```
//! use ivm_storage::{Wal, WalRecord};
//! use ivm_relational::prelude::*;
//!
//! let dir = ivm_storage::temp::scratch_dir("wal-doc");
//! let path = dir.join("wal.log");
//! let mut wal = Wal::create(&path, 1).unwrap();
//! let mut txn = Transaction::new();
//! txn.insert("R", [1, 2]).unwrap();
//! wal.append(&WalRecord::Txn(txn)).unwrap();
//! wal.sync().unwrap(); // commit point
//!
//! let scan = Wal::scan(&path).unwrap();
//! assert_eq!(scan.records.len(), 1);
//! assert!(scan.truncated_by.is_none());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod fault;
pub mod frame;
pub mod temp;
pub mod wal;

pub use checkpoint::{CheckpointData, StoredView, StoredViewKind};
pub use codec::{ByteReader, Codec};
pub use error::{Result, StorageError};
pub use fault::{CorruptSpec, FailpointAction, FailpointPlan, FaultPos};
pub use wal::{Wal, WalRecord, WalScan, WalStats, FORMAT_VERSION, WAL_FILE};
