//! Append-only write-ahead log.
//!
//! The WAL is a single file of [`frame`](crate::frame)-wrapped records.
//! Each record carries a format version byte, a kind tag, a monotonically
//! increasing log sequence number (LSN), and a [`Codec`]-encoded body:
//!
//! ```text
//! payload ::= [version u8][kind u8][lsn u64][body]
//! ```
//!
//! Log discipline is *log before apply*: the caller appends (and syncs) a
//! record describing an operation before mutating in-memory state, so a
//! crash at any instant loses at most work that was never acknowledged.
//!
//! Reading is tolerant at the tail and strict everywhere else: a torn or
//! corrupt final frame is the expected signature of a crash mid-append, so
//! [`Wal::scan`] stops there and reports the prefix length that survived;
//! the caller truncates and resumes appending. Corruption *followed by more
//! valid-looking frames* cannot be distinguished from tail corruption
//! without a second checksum chain, so it is treated the same way —
//! everything from the first bad frame on is discarded.

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ivm_relational::prelude::*;

use crate::checkpoint::sync_dir;
use crate::codec::{ByteReader, Codec};
use crate::error::{Result, StorageError};
use crate::frame::{framed_len, read_frame, write_frame};

/// On-disk format version understood by this build.
///
/// v2: checkpoint `StoredViewKind::Spj` carries the user expression next
/// to the effective plan (view-over-view DAG support).
pub const FORMAT_VERSION: u8 = 2;

/// Conventional WAL file name inside a storage directory.
pub const WAL_FILE: &str = "wal.log";

const KIND_TXN: u8 = 0x01;
const KIND_CREATE_RELATION: u8 = 0x02;
const KIND_REGISTER_VIEW: u8 = 0x03;
const KIND_REGISTER_TREE_VIEW: u8 = 0x04;

/// One logged operation. Everything that mutates a
/// [`Database`]-plus-views system goes through the log — DDL included, so
/// recovery can rebuild a system whose relations and views were created
/// after the last checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A net-effect transaction against base relations.
    Txn(Transaction),
    /// Creation of an empty base relation.
    CreateRelation {
        /// Relation name.
        name: String,
        /// Its scheme.
        schema: Schema,
    },
    /// Registration of an SPJ view.
    RegisterView {
        /// View name.
        name: String,
        /// Defining expression in SPJ normal form.
        expr: SpjExpr,
        /// Refresh policy, encoded by the maintenance layer (opaque here).
        policy: u8,
    },
    /// Registration of a general-algebra (tree) view.
    RegisterTreeView {
        /// View name.
        name: String,
        /// Defining expression tree.
        expr: Expr,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Txn(_) => KIND_TXN,
            WalRecord::CreateRelation { .. } => KIND_CREATE_RELATION,
            WalRecord::RegisterView { .. } => KIND_REGISTER_VIEW,
            WalRecord::RegisterTreeView { .. } => KIND_REGISTER_TREE_VIEW,
        }
    }

    fn encode_payload(&self, lsn: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(FORMAT_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&lsn.to_le_bytes());
        match self {
            WalRecord::Txn(txn) => txn.encode_into(&mut out),
            WalRecord::CreateRelation { name, schema } => {
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                schema.encode_into(&mut out);
            }
            WalRecord::RegisterView { name, expr, policy } => {
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                expr.encode_into(&mut out);
                out.push(*policy);
            }
            WalRecord::RegisterTreeView { name, expr } => {
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                expr.encode_into(&mut out);
            }
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord)> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let kind = r.u8()?;
        let lsn = r.u64()?;
        let record = match kind {
            KIND_TXN => WalRecord::Txn(Transaction::decode_from(&mut r)?),
            KIND_CREATE_RELATION => WalRecord::CreateRelation {
                name: r.str()?,
                schema: Schema::decode_from(&mut r)?,
            },
            KIND_REGISTER_VIEW => WalRecord::RegisterView {
                name: r.str()?,
                expr: SpjExpr::decode_from(&mut r)?,
                policy: r.u8()?,
            },
            KIND_REGISTER_TREE_VIEW => WalRecord::RegisterTreeView {
                name: r.str()?,
                expr: Expr::decode_from(&mut r)?,
            },
            tag => return Err(StorageError::UnknownRecordKind(tag)),
        };
        if r.remaining() > 0 {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after wal record",
                r.remaining()
            )));
        }
        Ok((lsn, record))
    }
}

/// Running counters for one open WAL handle, surfaced by the shell's
/// `\wal-stats` command, the observability layer and the benches.
///
/// These are *cumulative for the handle's lifetime*: compaction rewrites
/// the file smaller but does not roll any of them back. The live file
/// size is a property of the file, not the handle — use
/// [`Wal::len_bytes`] (or `fs::metadata`) for that, and
/// [`WalStats::bytes_reclaimed`] for how much compaction has saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub records_appended: u64,
    /// Payload + frame-header bytes appended through this handle.
    pub bytes_appended: u64,
    /// Explicit sync points issued.
    pub syncs: u64,
    /// Compaction passes that actually rewrote the log (no-op passes with
    /// nothing to drop are not counted).
    pub compactions: u64,
    /// Total bytes removed from the log file by compaction.
    pub bytes_reclaimed: u64,
}

/// The outcome of scanning a WAL file from the start.
#[derive(Debug)]
pub struct WalScan {
    /// Every `(lsn, record)` in the valid prefix, in log order.
    pub records: Vec<(u64, WalRecord)>,
    /// Length in bytes of the valid prefix.
    pub valid_len: u64,
    /// The error that terminated the scan, if the file did not end
    /// cleanly. `None` means every frame was intact.
    pub truncated_by: Option<StorageError>,
}

impl WalScan {
    /// Highest LSN in the valid prefix, if any record survived.
    pub fn last_lsn(&self) -> Option<u64> {
        self.records.last().map(|(lsn, _)| *lsn)
    }
}

/// An open, append-only log handle.
#[derive(Debug)]
pub struct Wal {
    file: BufWriter<File>,
    path: PathBuf,
    next_lsn: u64,
    end_offset: u64,
    stats: WalStats,
}

impl Wal {
    /// Create a fresh, empty log (truncating any existing file). The first
    /// appended record gets LSN `first_lsn`.
    pub fn create(path: impl AsRef<Path>, first_lsn: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("create wal {}", path.display()), e))?;
        Ok(Wal {
            file: BufWriter::new(file),
            path,
            next_lsn: first_lsn,
            end_offset: 0,
            stats: WalStats::default(),
        })
    }

    /// Open an existing log for appending after its valid prefix, which the
    /// caller obtained from [`Wal::scan`] (typically followed by
    /// [`Wal::truncate_to`] when the scan found a torn tail).
    pub fn open(path: impl AsRef<Path>, valid_len: u64, next_lsn: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StorageError::io(format!("open wal {}", path.display()), e))?;
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| StorageError::io("seek wal to valid prefix", e))?;
        Ok(Wal {
            file: BufWriter::new(file),
            path,
            next_lsn,
            end_offset: valid_len,
            stats: WalStats::default(),
        })
    }

    /// Drop everything past the valid prefix of a damaged log. Separate
    /// from [`Wal::open`] so callers can decide (and log/report) before any
    /// destructive action.
    pub fn truncate_to(path: impl AsRef<Path>, valid_len: u64) -> Result<()> {
        let path = path.as_ref();
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("open wal {}", path.display()), e))?;
        file.set_len(valid_len)
            .map_err(|e| StorageError::io("truncate wal", e))?;
        file.sync_data()
            .map_err(|e| StorageError::io("sync truncated wal", e))?;
        Ok(())
    }

    /// Append one record; returns its assigned LSN. The record is framed
    /// and buffered — call [`Wal::sync`] to make it durable.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.next_lsn;
        let payload = record.encode_payload(lsn);
        write_frame(&mut self.file, &payload)?;
        self.next_lsn += 1;
        self.end_offset += framed_len(payload.len());
        self.stats.records_appended += 1;
        self.stats.bytes_appended += framed_len(payload.len());
        Ok(lsn)
    }

    /// Explicit sync point: flush buffered frames and `fdatasync` the file.
    /// After this returns, every appended record survives a crash.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| StorageError::io("flush wal", e))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| StorageError::io("sync wal", e))?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// LSN the next appended record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Current file length in bytes (including unsynced buffered frames).
    pub fn len_bytes(&self) -> u64 {
        self.end_offset
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Counters for this handle.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Drop every record with LSN `<= up_to_lsn` by rewriting the log to a
    /// temp file and atomically renaming it into place. Returns the new
    /// file length in bytes.
    ///
    /// The caller is responsible for only passing LSNs that are covered by
    /// a durable checkpoint that recovery is guaranteed to find — records
    /// below that point can never be replayed again, so removing them loses
    /// nothing. Compaction preserves the handle's LSN counter and stats; a
    /// crash at any instant leaves either the old complete log or the new
    /// complete log, never a mix.
    pub fn compact_through(&mut self, up_to_lsn: u64) -> Result<u64> {
        // Make sure the scan below sees every buffered frame.
        self.sync()?;
        let scan = Wal::scan(&self.path)?;
        if scan
            .records
            .first()
            .map(|(lsn, _)| *lsn > up_to_lsn)
            .unwrap_or(true)
        {
            return Ok(self.end_offset); // nothing to drop
        }

        let tmp_path = self.path.with_extension("compact");
        let tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| StorageError::io(format!("create {}", tmp_path.display()), e))?;
        let mut writer = BufWriter::new(tmp);
        let mut new_len = 0u64;
        for (lsn, record) in &scan.records {
            if *lsn > up_to_lsn {
                let payload = record.encode_payload(*lsn);
                write_frame(&mut writer, &payload)?;
                new_len += framed_len(payload.len());
            }
        }
        writer
            .flush()
            .map_err(|e| StorageError::io("flush compacted wal", e))?;
        writer
            .get_ref()
            .sync_data()
            .map_err(|e| StorageError::io("sync compacted wal", e))?;
        drop(writer);
        fs::rename(&tmp_path, &self.path)
            .map_err(|e| StorageError::io(format!("rename into {}", self.path.display()), e))?;
        if let Some(parent) = self.path.parent() {
            sync_dir(parent)?;
        }

        // Swap the handle onto the new file, seeked to its end; the LSN
        // counter and per-handle stats carry over untouched.
        let mut file = OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| StorageError::io(format!("reopen wal {}", self.path.display()), e))?;
        file.seek(SeekFrom::Start(new_len))
            .map_err(|e| StorageError::io("seek compacted wal to end", e))?;
        self.file = BufWriter::new(file);
        self.stats.compactions += 1;
        self.stats.bytes_reclaimed += self.end_offset.saturating_sub(new_len);
        self.end_offset = new_len;
        Ok(new_len)
    }

    /// Scan a log file from the beginning, collecting every record in the
    /// valid prefix. A missing file scans as empty — a system that crashed
    /// before its first append is indistinguishable from a fresh one.
    ///
    /// Corruption does **not** return `Err`: it ends the valid prefix and
    /// is reported in [`WalScan::truncated_by`]. `Err` is reserved for
    /// environmental failures (permissions, I/O errors) where truncating
    /// would destroy data that might be readable later. LSNs must increase
    /// strictly; a regression marks the offending frame as corrupt.
    pub fn scan(path: impl AsRef<Path>) -> Result<WalScan> {
        let path = path.as_ref();
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalScan {
                    records: Vec::new(),
                    valid_len: 0,
                    truncated_by: None,
                })
            }
            Err(e) => return Err(StorageError::io(format!("open wal {}", path.display()), e)),
        };
        let mut reader = BufReader::new(file);
        let mut records = Vec::new();
        let mut offset = 0u64;
        let mut last_lsn: Option<u64> = None;
        loop {
            match read_frame(&mut reader, offset) {
                Ok(None) => {
                    return Ok(WalScan {
                        records,
                        valid_len: offset,
                        truncated_by: None,
                    })
                }
                Ok(Some(payload)) => {
                    let frame_len = framed_len(payload.len());
                    match WalRecord::decode_payload(&payload) {
                        Ok((lsn, record)) => {
                            if let Some(prev) = last_lsn {
                                if lsn <= prev {
                                    return Ok(WalScan {
                                        records,
                                        valid_len: offset,
                                        truncated_by: Some(StorageError::LsnOutOfOrder {
                                            previous: prev,
                                            found: lsn,
                                        }),
                                    });
                                }
                            }
                            last_lsn = Some(lsn);
                            records.push((lsn, record));
                            offset += frame_len;
                        }
                        Err(e) => {
                            return Ok(WalScan {
                                records,
                                valid_len: offset,
                                truncated_by: Some(e),
                            })
                        }
                    }
                }
                Err(e) if e.is_corruption() => {
                    return Ok(WalScan {
                        records,
                        valid_len: offset,
                        truncated_by: Some(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::scratch_dir;

    fn sample_txn() -> Transaction {
        let mut txn = Transaction::new();
        txn.insert("R", [1, 2]).unwrap();
        txn.delete("R", [3, 4]).unwrap();
        txn.insert("S", [5]).unwrap();
        txn
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = scratch_dir("wal-roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path, 1).unwrap();
        let records = vec![
            WalRecord::CreateRelation {
                name: "R".into(),
                schema: Schema::new(["A", "B"]).unwrap(),
            },
            WalRecord::Txn(sample_txn()),
            WalRecord::RegisterView {
                name: "V".into(),
                expr: SpjExpr::new(["R"], Condition::always_true(), None),
                policy: 2,
            },
            WalRecord::RegisterTreeView {
                name: "T".into(),
                expr: Expr::base("R").union(Expr::base("R")),
            },
        ];
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(wal.append(rec).unwrap(), 1 + i as u64);
        }
        wal.sync().unwrap();
        assert_eq!(wal.stats().records_appended, 4);
        assert_eq!(wal.stats().syncs, 1);

        let scan = Wal::scan(&path).unwrap();
        assert!(scan.truncated_by.is_none());
        assert_eq!(scan.last_lsn(), Some(4));
        assert_eq!(scan.valid_len, wal.len_bytes());
        let replayed: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(replayed, records);
    }

    #[test]
    fn missing_file_scans_empty() {
        let dir = scratch_dir("wal-missing");
        let scan = Wal::scan(dir.join("nonexistent.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.truncated_by.is_none());
    }

    #[test]
    fn torn_tail_truncates_and_resumes() {
        let dir = scratch_dir("wal-torn");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(&WalRecord::Txn(sample_txn())).unwrap();
        wal.append(&WalRecord::Txn(sample_txn())).unwrap();
        wal.sync().unwrap();
        let full = wal.len_bytes();
        drop(wal);

        // Tear the last frame.
        crate::fault::truncate_file(&path, full - 3).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(
            scan.truncated_by,
            Some(StorageError::TornFrame { .. })
        ));

        // Truncate and resume appending where the valid prefix ended.
        Wal::truncate_to(&path, scan.valid_len).unwrap();
        let next = scan.last_lsn().unwrap() + 1;
        let mut wal = Wal::open(&path, scan.valid_len, next).unwrap();
        wal.append(&WalRecord::Txn(sample_txn())).unwrap();
        wal.sync().unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.truncated_by.is_none());
        assert_eq!(scan.last_lsn(), Some(next));
    }

    #[test]
    fn compact_drops_prefix_and_keeps_appending() {
        let dir = scratch_dir("wal-compact");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path, 1).unwrap();
        for _ in 0..5 {
            wal.append(&WalRecord::Txn(sample_txn())).unwrap();
        }
        wal.sync().unwrap();
        let full_len = wal.len_bytes();

        // Dropping LSNs 1..=3 shrinks the file and keeps exactly 4 and 5.
        let new_len = wal.compact_through(3).unwrap();
        assert!(new_len < full_len, "compaction did not shrink the log");
        assert_eq!(wal.len_bytes(), new_len);
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.truncated_by.is_none());
        assert_eq!(
            scan.records.iter().map(|(lsn, _)| *lsn).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(scan.valid_len, new_len);

        // The handle stays live: the next append continues at LSN 6.
        assert_eq!(wal.append(&WalRecord::Txn(sample_txn())).unwrap(), 6);
        wal.sync().unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.truncated_by.is_none());
        assert_eq!(scan.last_lsn(), Some(6));
        assert_eq!(scan.valid_len, wal.len_bytes());

        // Compacting below the first surviving LSN is a no-op.
        let len_before = wal.len_bytes();
        assert_eq!(wal.compact_through(3).unwrap(), len_before);

        // Compacting through everything empties the file.
        assert_eq!(wal.compact_through(6).unwrap(), 0);
        assert_eq!(wal.append(&WalRecord::Txn(sample_txn())).unwrap(), 7);
        wal.sync().unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.truncated_by.is_none());
        assert_eq!(scan.last_lsn(), Some(7));
    }

    #[test]
    fn lsn_regression_is_corruption() {
        let dir = scratch_dir("wal-lsn");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path, 5).unwrap();
        wal.append(&WalRecord::Txn(sample_txn())).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // A second handle started with a stale LSN writes a regressing
        // record; the scan must cut before it.
        let scan = Wal::scan(&path).unwrap();
        let mut stale = Wal::open(&path, scan.valid_len, 5).unwrap();
        stale.append(&WalRecord::Txn(sample_txn())).unwrap();
        stale.sync().unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(
            scan.truncated_by,
            Some(StorageError::LsnOutOfOrder { .. })
        ));
    }
}
