//! Binary codec for the relational substrate.
//!
//! Every persistent structure — values, tuples, schemas, counted relations
//! (§5.2 multiplicity counters included), signed deltas, transactions,
//! whole databases and view-defining expressions — encodes to a flat
//! little-endian byte string and decodes back without loss. Encoding is
//! **deterministic**: hash-ordered containers are sorted first, so equal
//! states produce identical bytes (which makes checksums and tests
//! meaningful).
//!
//! Decoding is **total**: arbitrary input bytes either produce a valid
//! structure or a typed [`StorageError`] — never a panic and never an
//! unbounded allocation. Length prefixes are checked against the bytes
//! actually remaining before any buffer is reserved, and recursive
//! expression trees are depth-limited.
//!
//! # Wire shapes
//!
//! ```text
//! Value        ::= 0x00 i64 | 0x01 str
//! str          ::= u32 len, len × utf-8 byte
//! Tuple        ::= u32 arity, arity × Value
//! Schema       ::= u32 n, n × str
//! Relation     ::= Schema, u64 distinct, distinct × (Tuple, u64 count)
//! Delta        ::= Schema, u64 distinct, distinct × (Tuple, i64 count)
//! Transaction  ::= u32 nrel, nrel × (str, u32 ni, ni × Tuple,
//!                                          u32 nd, nd × Tuple)
//! Database     ::= u32 nrel, nrel × (str, Relation)
//! CompOp       ::= u8 ∈ {0 '=', 1 '<', 2 '>', 3 '≤', 4 '≥'}
//! Rhs          ::= 0x00 i64 | 0x01 str i64
//! Atom         ::= str CompOp Rhs
//! Conjunction  ::= u32 n, n × Atom
//! Condition    ::= u32 m, m × Conjunction
//! SpjExpr      ::= u32 p, p × str, Condition, (0x00 | 0x01 u32 k, k × str)
//! Expr         ::= 0x00 str | 0x01 Expr Condition | 0x02 Expr u32 k, k × str
//!                | 0x03 Expr Expr | 0x04 Expr Expr | 0x05 Expr Expr
//! ```
//!
//! All integers are little-endian; counts of zero are rejected on decode
//! (the in-memory containers never hold them).

use ivm_relational::prelude::*;

use crate::error::{Result, StorageError};

/// Maximum nesting depth accepted when decoding an [`Expr`] tree. Corrupt
/// length prefixes could otherwise drive the recursive decoder into a stack
/// overflow, which is a panic — and decoding must never panic. The bound is
/// deliberately conservative: it must hold on a 2 MiB test-thread stack in
/// unoptimized builds, and real view expressions are a handful of nodes.
pub const MAX_EXPR_DEPTH: usize = 64;

/// A bounds-checked cursor over an encoded byte string.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset, for error reporting.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt(format!(
                "need {n} bytes at offset {} but only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt(format!("invalid utf-8 string at {}", self.pos)))
    }

    /// Validate a declared element count against the bytes remaining:
    /// every element occupies at least `min_elem_bytes`, so a count the
    /// buffer cannot possibly hold is corruption — detected *before* any
    /// allocation is sized from it.
    pub fn check_count(&self, count: usize, min_elem_bytes: usize) -> Result<()> {
        if count
            .checked_mul(min_elem_bytes.max(1))
            .map(|need| need > self.remaining())
            .unwrap_or(true)
        {
            return Err(StorageError::Corrupt(format!(
                "declared count {count} cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Lossless binary encoding/decoding.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one value starting at the reader's position.
    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode from a complete buffer; trailing bytes are corruption.
    fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        if r.remaining() > 0 {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after a complete value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

const VALUE_INT: u8 = 0x00;
const VALUE_STR: u8 = 0x01;

impl Codec for Value {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(VALUE_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(VALUE_STR);
                put_str(out, s);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            VALUE_INT => Ok(Value::Int(r.i64()?)),
            VALUE_STR => Ok(Value::str(r.str()?)),
            tag => Err(StorageError::Corrupt(format!("bad value tag {tag:#04x}"))),
        }
    }
}

impl Codec for Tuple {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.arity() as u32).to_le_bytes());
        for v in self.values() {
            v.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let arity = r.u32()? as usize;
        r.check_count(arity, 2)?; // tag byte + at least one payload byte
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode_from(r)?);
        }
        Ok(Tuple::new(values))
    }
}

impl Codec for Schema {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.arity() as u32).to_le_bytes());
        for attr in self.attrs() {
            put_str(out, attr.as_str());
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let n = r.u32()? as usize;
        r.check_count(n, 4)?;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            attrs.push(r.str()?);
        }
        Ok(Schema::new(attrs)?)
    }
}

impl Codec for Relation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.schema().encode_into(out);
        let rows = self.sorted();
        out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for (tuple, count) in rows {
            tuple.encode_into(out);
            out.extend_from_slice(&count.to_le_bytes());
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let schema = Schema::decode_from(r)?;
        let n = r.u64()? as usize;
        r.check_count(n, 12)?; // empty tuple (4) + count (8)
        let mut rel = Relation::empty(schema);
        for _ in 0..n {
            let tuple = Tuple::decode_from(r)?;
            let count = r.u64()?;
            if count == 0 {
                return Err(StorageError::Corrupt(format!(
                    "zero multiplicity for tuple {tuple}"
                )));
            }
            rel.insert(tuple, count)?;
        }
        Ok(rel)
    }
}

impl Codec for DeltaRelation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.schema().encode_into(out);
        let rows = self.sorted();
        out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for (tuple, count) in rows {
            tuple.encode_into(out);
            out.extend_from_slice(&count.to_le_bytes());
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let schema = Schema::decode_from(r)?;
        let n = r.u64()? as usize;
        r.check_count(n, 12)?;
        let mut delta = DeltaRelation::empty(schema);
        for _ in 0..n {
            let tuple = Tuple::decode_from(r)?;
            let count = r.i64()?;
            if count == 0 {
                return Err(StorageError::Corrupt(format!(
                    "zero signed count for tuple {tuple}"
                )));
            }
            tuple.check_arity(delta.schema())?;
            delta.add(tuple, count);
        }
        Ok(delta)
    }
}

impl Codec for Transaction {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let touched = self.touched();
        out.extend_from_slice(&(touched.len() as u32).to_le_bytes());
        for relation in touched {
            put_str(out, relation);
            let mut inserts: Vec<&Tuple> = self.inserted(relation).collect();
            let mut deletes: Vec<&Tuple> = self.deleted(relation).collect();
            inserts.sort();
            deletes.sort();
            out.extend_from_slice(&(inserts.len() as u32).to_le_bytes());
            for t in inserts {
                t.encode_into(out);
            }
            out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
            for t in deletes {
                t.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let nrel = r.u32()? as usize;
        r.check_count(nrel, 12)?;
        let mut txn = Transaction::new();
        for _ in 0..nrel {
            let relation = r.str()?;
            let ni = r.u32()? as usize;
            r.check_count(ni, 4)?;
            for _ in 0..ni {
                txn.insert(&relation, Tuple::decode_from(r)?)?;
            }
            let nd = r.u32()? as usize;
            r.check_count(nd, 4)?;
            for _ in 0..nd {
                txn.delete(&relation, Tuple::decode_from(r)?)?;
            }
        }
        Ok(txn)
    }
}

impl Codec for Database {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let names: Vec<&str> = self.relation_names().collect();
        out.extend_from_slice(&(names.len() as u32).to_le_bytes());
        for name in names {
            put_str(out, name);
            self.relation(name)
                .expect("relation_names yields existing relations")
                .encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let nrel = r.u32()? as usize;
        r.check_count(nrel, 16)?;
        let mut db = Database::new();
        for _ in 0..nrel {
            let name = r.str()?;
            let rel = Relation::decode_from(r)?;
            db.adopt(name, rel)?;
        }
        Ok(db)
    }
}

impl Codec for CompOp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CompOp::Eq => 0,
            CompOp::Lt => 1,
            CompOp::Gt => 2,
            CompOp::Le => 3,
            CompOp::Ge => 4,
        });
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(CompOp::Eq),
            1 => Ok(CompOp::Lt),
            2 => Ok(CompOp::Gt),
            3 => Ok(CompOp::Le),
            4 => Ok(CompOp::Ge),
            tag => Err(StorageError::Corrupt(format!(
                "bad comparison operator tag {tag:#04x}"
            ))),
        }
    }
}

const RHS_CONST: u8 = 0x00;
const RHS_ATTR_PLUS: u8 = 0x01;

impl Codec for Rhs {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Rhs::Const(c) => {
                out.push(RHS_CONST);
                out.extend_from_slice(&c.to_le_bytes());
            }
            Rhs::AttrPlus(attr, c) => {
                out.push(RHS_ATTR_PLUS);
                put_str(out, attr.as_str());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            RHS_CONST => Ok(Rhs::Const(r.i64()?)),
            RHS_ATTR_PLUS => {
                let attr = AttrName::new(r.str()?);
                Ok(Rhs::AttrPlus(attr, r.i64()?))
            }
            tag => Err(StorageError::Corrupt(format!("bad rhs tag {tag:#04x}"))),
        }
    }
}

impl Codec for Atom {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_str(out, self.left.as_str());
        self.op.encode_into(out);
        self.rhs.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let left = AttrName::new(r.str()?);
        let op = CompOp::decode_from(r)?;
        let rhs = Rhs::decode_from(r)?;
        Ok(Atom { left, op, rhs })
    }
}

impl Codec for Conjunction {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.atoms.len() as u32).to_le_bytes());
        for atom in &self.atoms {
            atom.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let n = r.u32()? as usize;
        r.check_count(n, 14)?; // str(4) + op(1) + rhs(9)
        let mut atoms = Vec::with_capacity(n);
        for _ in 0..n {
            atoms.push(Atom::decode_from(r)?);
        }
        Ok(Conjunction { atoms })
    }
}

impl Codec for Condition {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.disjuncts.len() as u32).to_le_bytes());
        for conj in &self.disjuncts {
            conj.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let m = r.u32()? as usize;
        r.check_count(m, 4)?;
        let mut disjuncts = Vec::with_capacity(m);
        for _ in 0..m {
            disjuncts.push(Conjunction::decode_from(r)?);
        }
        Ok(Condition { disjuncts })
    }
}

const PROJECTION_NONE: u8 = 0x00;
const PROJECTION_SOME: u8 = 0x01;

impl Codec for SpjExpr {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.relations.len() as u32).to_le_bytes());
        for relation in &self.relations {
            put_str(out, relation);
        }
        self.condition.encode_into(out);
        match &self.projection {
            None => out.push(PROJECTION_NONE),
            Some(attrs) => {
                out.push(PROJECTION_SOME);
                out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
                for attr in attrs {
                    put_str(out, attr.as_str());
                }
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let p = r.u32()? as usize;
        r.check_count(p, 4)?;
        let mut relations = Vec::with_capacity(p);
        for _ in 0..p {
            relations.push(r.str()?);
        }
        let condition = Condition::decode_from(r)?;
        let projection = match r.u8()? {
            PROJECTION_NONE => None,
            PROJECTION_SOME => {
                let k = r.u32()? as usize;
                r.check_count(k, 4)?;
                let mut attrs = Vec::with_capacity(k);
                for _ in 0..k {
                    attrs.push(AttrName::new(r.str()?));
                }
                Some(attrs)
            }
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "bad projection tag {tag:#04x}"
                )))
            }
        };
        Ok(SpjExpr {
            relations,
            condition,
            projection,
        })
    }
}

const EXPR_BASE: u8 = 0x00;
const EXPR_SELECT: u8 = 0x01;
const EXPR_PROJECT: u8 = 0x02;
const EXPR_JOIN: u8 = 0x03;
const EXPR_UNION: u8 = 0x04;
const EXPR_DIFFERENCE: u8 = 0x05;

fn decode_expr(r: &mut ByteReader<'_>, depth: usize) -> Result<Expr> {
    if depth > MAX_EXPR_DEPTH {
        return Err(StorageError::Corrupt(format!(
            "expression tree deeper than {MAX_EXPR_DEPTH}"
        )));
    }
    match r.u8()? {
        EXPR_BASE => Ok(Expr::base(r.str()?)),
        EXPR_SELECT => {
            let input = decode_expr(r, depth + 1)?;
            let cond = Condition::decode_from(r)?;
            Ok(input.select(cond))
        }
        EXPR_PROJECT => {
            let input = decode_expr(r, depth + 1)?;
            let k = r.u32()? as usize;
            r.check_count(k, 4)?;
            let mut attrs = Vec::with_capacity(k);
            for _ in 0..k {
                attrs.push(AttrName::new(r.str()?));
            }
            Ok(input.project(attrs))
        }
        EXPR_JOIN => Ok(decode_expr(r, depth + 1)?.join(decode_expr(r, depth + 1)?)),
        EXPR_UNION => Ok(decode_expr(r, depth + 1)?.union(decode_expr(r, depth + 1)?)),
        EXPR_DIFFERENCE => Ok(decode_expr(r, depth + 1)?.difference(decode_expr(r, depth + 1)?)),
        tag => Err(StorageError::Corrupt(format!(
            "bad expression tag {tag:#04x}"
        ))),
    }
}

impl Codec for Expr {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Base(name) => {
                out.push(EXPR_BASE);
                put_str(out, name);
            }
            Expr::Select { input, cond } => {
                out.push(EXPR_SELECT);
                input.encode_into(out);
                cond.encode_into(out);
            }
            Expr::Project { input, attrs } => {
                out.push(EXPR_PROJECT);
                input.encode_into(out);
                out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
                for attr in attrs {
                    put_str(out, attr.as_str());
                }
            }
            Expr::Join(l, r) => {
                out.push(EXPR_JOIN);
                l.encode_into(out);
                r.encode_into(out);
            }
            Expr::Union(l, r) => {
                out.push(EXPR_UNION);
                l.encode_into(out);
                r.encode_into(out);
            }
            Expr::Difference(l, r) => {
                out.push(EXPR_DIFFERENCE);
                l.encode_into(out);
                r.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        decode_expr(r, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode();
        let back = T::decode(&bytes).expect("decode");
        assert_eq!(&back, v);
        // Determinism: encoding the decoded value reproduces the bytes.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Value::Int(-42));
        roundtrip(&Value::str("héllo"));
        roundtrip(&Tuple::new([Value::Int(1), Value::str("x")]));
        roundtrip(&Schema::new(["A", "B", "C"]).unwrap());
        roundtrip(&CompOp::Le);
        roundtrip(&Rhs::AttrPlus("B".into(), -3));
        roundtrip(&Atom::lt_const("A", 10));
        roundtrip(&Condition::always_true());
        roundtrip(&Condition::always_false());
    }

    #[test]
    fn relation_roundtrip_preserves_counts() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let mut rel = Relation::empty(schema);
        rel.insert(Tuple::from([1, 2]), 3).unwrap();
        rel.insert(Tuple::from([4, 5]), 1).unwrap();
        let back = Relation::decode(&rel.encode()).unwrap();
        assert!(back.same_contents(&rel));
        assert_eq!(back.count(&Tuple::from([1, 2])), 3);
    }

    #[test]
    fn expr_roundtrip() {
        let e = Expr::base("R")
            .select(Atom::gt_const("A", 2))
            .join(Expr::base("S"))
            .union(Expr::base("T").project(["A"]))
            .difference(Expr::base("U"));
        roundtrip(&e);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = Value::Int(7).encode();
        bytes.push(0xFF);
        assert!(matches!(
            Value::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_implausible_counts() {
        // A schema claiming u32::MAX attributes in a 10-byte buffer.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 6]);
        assert!(matches!(
            Schema::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_bounds_expression_depth() {
        // A run of SELECT tags with no terminal: recursion must stop with
        // a typed error, not a stack overflow.
        let bytes = vec![EXPR_SELECT; MAX_EXPR_DEPTH + 8];
        assert!(matches!(
            Expr::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }
}
