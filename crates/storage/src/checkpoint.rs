//! Checkpoint snapshots.
//!
//! A checkpoint is one frame-wrapped, [`Codec`]-encoded image of the whole
//! system at an instant: the base database with every multiplicity counter,
//! each view's materialization (and, for deferred views, its accumulated
//! pending deltas), and the LSN of the last WAL record folded in. Recovery
//! loads the newest checkpoint that passes its checksum and replays only
//! WAL records with higher LSNs.
//!
//! Durability of the write itself uses the classic temp-and-rename dance:
//! the image is written to `checkpoint-<seq>.tmp`, synced, renamed to
//! `checkpoint-<seq>.ckpt`, and the directory is synced. A crash at any
//! point leaves either the previous checkpoint set intact or the new file
//! fully in place — never a half-written `.ckpt`.

use std::fs::{self, File, OpenOptions};
use std::io::BufReader;
use std::path::{Path, PathBuf};

use ivm_relational::prelude::*;

use crate::codec::{ByteReader, Codec};
use crate::error::{Result, StorageError};
use crate::frame::{read_frame, write_frame};
use crate::wal::FORMAT_VERSION;

/// Record-kind tag distinguishing checkpoint payloads from WAL records if
/// the files are ever confused for one another.
const KIND_CHECKPOINT: u8 = 0x10;

const CKPT_PREFIX: &str = "checkpoint-";
const CKPT_SUFFIX: &str = ".ckpt";
const TMP_SUFFIX: &str = ".tmp";

/// How a stored view is maintained, with the state each kind needs.
#[derive(Debug, Clone)]
pub enum StoredViewKind {
    /// An SPJ view in the paper's normal form.
    Spj {
        /// Effective (plan) expression actually maintained. Operands may
        /// be other stored views (the registry is a dependency DAG).
        expr: SpjExpr,
        /// The expression as registered by the user; differs from `expr`
        /// when the maintenance layer rewrote the plan over a shared
        /// common-subexpression node.
        user_expr: SpjExpr,
        /// Refresh policy, encoded by the maintenance layer (opaque here).
        policy: u8,
        /// Accumulated, relevance-filtered operand deltas not yet folded
        /// in (deferred / on-demand policies), keyed by operand name.
        pending: Vec<(String, DeltaRelation)>,
    },
    /// A general-algebra view maintained by tree deltas.
    Tree {
        /// Defining expression tree.
        expr: Expr,
    },
}

/// One view's persistent state inside a checkpoint.
#[derive(Debug, Clone)]
pub struct StoredView {
    /// View name.
    pub name: String,
    /// Maintenance kind and definition.
    pub kind: StoredViewKind,
    /// The materialization at checkpoint time, counters included. Stored so
    /// recovery reinstalls views **without re-evaluating them**.
    pub data: Relation,
}

/// A complete system image.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    /// LSN of the last WAL record reflected in this image; replay resumes
    /// strictly after it.
    pub last_lsn: u64,
    /// The base database.
    pub db: Database,
    /// Every registered view.
    pub views: Vec<StoredView>,
}

const VIEW_SPJ: u8 = 0x00;
const VIEW_TREE: u8 = 0x01;

impl Codec for StoredView {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        self.data.encode_into(out);
        match &self.kind {
            StoredViewKind::Spj {
                expr,
                user_expr,
                policy,
                pending,
            } => {
                out.push(VIEW_SPJ);
                expr.encode_into(out);
                user_expr.encode_into(out);
                out.push(*policy);
                out.extend_from_slice(&(pending.len() as u32).to_le_bytes());
                for (relation, delta) in pending {
                    out.extend_from_slice(&(relation.len() as u32).to_le_bytes());
                    out.extend_from_slice(relation.as_bytes());
                    delta.encode_into(out);
                }
            }
            StoredViewKind::Tree { expr } => {
                out.push(VIEW_TREE);
                expr.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let name = r.str()?;
        let data = Relation::decode_from(r)?;
        let kind = match r.u8()? {
            VIEW_SPJ => {
                let expr = SpjExpr::decode_from(r)?;
                let user_expr = SpjExpr::decode_from(r)?;
                let policy = r.u8()?;
                let n = r.u32()? as usize;
                r.check_count(n, 16)?;
                let mut pending = Vec::with_capacity(n);
                for _ in 0..n {
                    let relation = r.str()?;
                    let delta = DeltaRelation::decode_from(r)?;
                    pending.push((relation, delta));
                }
                StoredViewKind::Spj {
                    expr,
                    user_expr,
                    policy,
                    pending,
                }
            }
            VIEW_TREE => StoredViewKind::Tree {
                expr: Expr::decode_from(r)?,
            },
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "bad stored-view tag {tag:#04x}"
                )))
            }
        };
        Ok(StoredView { name, kind, data })
    }
}

impl Codec for CheckpointData {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.last_lsn.to_le_bytes());
        self.db.encode_into(out);
        out.extend_from_slice(&(self.views.len() as u32).to_le_bytes());
        for view in &self.views {
            view.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let last_lsn = r.u64()?;
        let db = Database::decode_from(r)?;
        let n = r.u32()? as usize;
        r.check_count(n, 24)?;
        let mut views = Vec::with_capacity(n);
        for _ in 0..n {
            views.push(StoredView::decode_from(r)?);
        }
        Ok(CheckpointData {
            last_lsn,
            db,
            views,
        })
    }
}

fn ckpt_file_name(seq: u64) -> String {
    format!("{CKPT_PREFIX}{seq:016}{CKPT_SUFFIX}")
}

/// Path of checkpoint `seq` inside `dir`, whether or not the file exists.
pub fn checkpoint_path(dir: impl AsRef<Path>, seq: u64) -> PathBuf {
    dir.as_ref().join(ckpt_file_name(seq))
}

fn parse_seq(file_name: &str) -> Option<u64> {
    file_name
        .strip_prefix(CKPT_PREFIX)?
        .strip_suffix(CKPT_SUFFIX)?
        .parse()
        .ok()
}

/// Atomically persist a checkpoint as `checkpoint-<seq>.ckpt` in `dir`.
/// Write-to-temp, sync, rename, sync-directory: a crash anywhere leaves the
/// directory with either the old set of checkpoints or the old set plus a
/// complete new one.
pub fn write_checkpoint(dir: impl AsRef<Path>, seq: u64, data: &CheckpointData) -> Result<PathBuf> {
    let dir = dir.as_ref();
    let mut payload = vec![FORMAT_VERSION, KIND_CHECKPOINT];
    data.encode_into(&mut payload);

    let tmp_path = dir.join(format!("{CKPT_PREFIX}{seq:016}{TMP_SUFFIX}"));
    let final_path = dir.join(ckpt_file_name(seq));
    let mut tmp = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(|e| StorageError::io(format!("create {}", tmp_path.display()), e))?;
    write_frame(&mut tmp, &payload)?;
    tmp.sync_all()
        .map_err(|e| StorageError::io("sync checkpoint temp file", e))?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| StorageError::io(format!("rename into {}", final_path.display()), e))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// `fsync` a directory so a rename within it is durable. Directories cannot
/// be fsynced everywhere; `NotSupported`-style failures are ignored.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(f) => match f.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotSeekable => Ok(()),
            Err(e) if e.raw_os_error() == Some(22) => Ok(()), // EINVAL
            Err(e) => Err(StorageError::io("sync directory", e)),
        },
        Err(e) => Err(StorageError::io(format!("open dir {}", dir.display()), e)),
    }
}

/// Read and validate one checkpoint file.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointData> {
    let path = path.as_ref();
    let file = File::open(path)
        .map_err(|e| StorageError::io(format!("open checkpoint {}", path.display()), e))?;
    let mut reader = BufReader::new(file);
    let payload = read_frame(&mut reader, 0)?
        .ok_or_else(|| StorageError::Corrupt(format!("checkpoint {} is empty", path.display())))?;
    let mut r = ByteReader::new(&payload);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    if kind != KIND_CHECKPOINT {
        return Err(StorageError::UnknownRecordKind(kind));
    }
    let data = CheckpointData::decode_from(&mut r)?;
    if r.remaining() > 0 {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after checkpoint image",
            r.remaining()
        )));
    }
    Ok(data)
}

/// Checkpoint sequence numbers present in `dir`, descending (newest first).
/// Leftover `.tmp` files are ignored — an interrupted write never counts.
pub fn list_checkpoints(dir: impl AsRef<Path>) -> Result<Vec<u64>> {
    let dir = dir.as_ref();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StorageError::io(format!("list {}", dir.display()), e)),
    };
    let mut seqs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io("read dir entry", e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_seq(name) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Load the newest checkpoint in `dir` that decodes cleanly, falling back
/// over corrupt ones (each recorded with its error). Returns `None` when no
/// readable checkpoint exists.
///
/// The returned `(seq, data, skipped)` reports which corrupt files were
/// passed over so the caller can surface or clean them up.
#[allow(clippy::type_complexity)]
pub fn latest_checkpoint(
    dir: impl AsRef<Path>,
) -> Result<Option<(u64, CheckpointData, Vec<(u64, StorageError)>)>> {
    let dir = dir.as_ref();
    let mut skipped = Vec::new();
    for seq in list_checkpoints(dir)? {
        match read_checkpoint(dir.join(ckpt_file_name(seq))) {
            Ok(data) => return Ok(Some((seq, data, skipped))),
            Err(e) if e.is_corruption() => skipped.push((seq, e)),
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Delete checkpoints older than `keep_newest` sequence numbers. Returns
/// the sequence numbers removed.
pub fn prune_checkpoints(dir: impl AsRef<Path>, keep_newest: usize) -> Result<Vec<u64>> {
    let dir = dir.as_ref();
    let seqs = list_checkpoints(dir)?;
    let mut removed = Vec::new();
    for &seq in seqs.iter().skip(keep_newest) {
        fs::remove_file(dir.join(ckpt_file_name(seq)))
            .map_err(|e| StorageError::io("remove old checkpoint", e))?;
        removed.push(seq);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::scratch_dir;

    fn sample_checkpoint() -> CheckpointData {
        let mut db = Database::new();
        db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
        db.load("R", [[1, 10], [2, 20]]).unwrap();
        let mut view_data = Relation::empty(Schema::new(["A"]).unwrap());
        view_data.insert(Tuple::from([1]), 2).unwrap();
        let mut pending = DeltaRelation::empty(Schema::new(["A", "B"]).unwrap());
        pending.add(Tuple::from([3, 30]), 1);
        CheckpointData {
            last_lsn: 17,
            db,
            views: vec![
                StoredView {
                    name: "V".into(),
                    kind: StoredViewKind::Spj {
                        expr: SpjExpr::new(["R"], Condition::always_true(), None),
                        user_expr: SpjExpr::new(["R"], Condition::always_true(), None),
                        policy: 1,
                        pending: vec![("R".into(), pending)],
                    },
                    data: view_data.clone(),
                },
                StoredView {
                    name: "T".into(),
                    kind: StoredViewKind::Tree {
                        expr: Expr::base("R").project(["A"]),
                    },
                    data: view_data,
                },
            ],
        }
    }

    fn same_checkpoint(a: &CheckpointData, b: &CheckpointData) -> bool {
        // Relation/DeltaRelation have no PartialEq; compare via encoding,
        // which is deterministic.
        a.encode() == b.encode()
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = scratch_dir("ckpt-roundtrip");
        let data = sample_checkpoint();
        write_checkpoint(&dir, 1, &data).unwrap();
        let (seq, back, skipped) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 1);
        assert!(skipped.is_empty());
        assert!(same_checkpoint(&back, &data));
    }

    #[test]
    fn falls_back_over_corrupt_newest() {
        let dir = scratch_dir("ckpt-fallback");
        let data = sample_checkpoint();
        write_checkpoint(&dir, 1, &data).unwrap();
        let newest = write_checkpoint(&dir, 2, &data).unwrap();
        crate::fault::flip_byte(&newest, 20, 0xFF).unwrap();
        let (seq, back, skipped) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 1);
        assert!(same_checkpoint(&back, &data));
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, 2);
    }

    #[test]
    fn ignores_tmp_leftovers_and_prunes() {
        let dir = scratch_dir("ckpt-prune");
        let data = sample_checkpoint();
        for seq in 1..=4 {
            write_checkpoint(&dir, seq, &data).unwrap();
        }
        // A torn temp file from an interrupted checkpoint.
        std::fs::write(dir.join("checkpoint-0000000000000005.tmp"), b"junk").unwrap();
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![4, 3, 2, 1]);
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed, vec![2, 1]);
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![4, 3]);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = scratch_dir("ckpt-empty");
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        assert!(latest_checkpoint(dir.join("missing")).unwrap().is_none());
    }
}
