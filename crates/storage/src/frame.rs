//! Checksummed, length-prefixed frames.
//!
//! Every durable byte string (a WAL record, a checkpoint image) is wrapped
//! in a frame before it touches disk:
//!
//! ```text
//! ┌──────────┬──────────┬─────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload: len bytes          │
//! │  (LE)    │  (LE)    │ [version u8][kind u8][body] │
//! └──────────┴──────────┴─────────────────────────────┘
//! ```
//!
//! `crc` is CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over the
//! payload only. The frame layer detects exactly two failure shapes and
//! reports them as distinct typed errors:
//!
//! * **torn frame** — the file ends before `len` payload bytes (or even the
//!   8-byte header) are present: an append was interrupted mid-write;
//! * **checksum mismatch** — all bytes are present but the payload does not
//!   hash to `crc`: bit rot or an overwrite.
//!
//! A `len` beyond [`MAX_FRAME_LEN`] is reported as a corrupt length prefix
//! before any allocation is attempted.

use std::io::{Read, Write};

use crate::error::{Result, StorageError};

/// Upper bound on a single frame's payload (64 MiB). Real frames are far
/// smaller; anything larger means the length prefix itself is garbage.
pub const MAX_FRAME_LEN: u64 = 64 << 20;

/// Size of the `[len][crc]` header preceding every payload.
pub const FRAME_HEADER_LEN: u64 = 8;

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Write one frame. The caller decides when to sync.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let header_err = |e| StorageError::io("write frame", e);
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(header_err)?;
    w.write_all(&crc32(payload).to_le_bytes())
        .map_err(|e| StorageError::io("write frame", e))?;
    w.write_all(payload)
        .map_err(|e| StorageError::io("write frame", e))?;
    Ok(())
}

/// Bytes one frame with this payload occupies on disk.
pub fn framed_len(payload_len: usize) -> u64 {
    FRAME_HEADER_LEN + payload_len as u64
}

/// Read the next frame from `r`, which is positioned at byte `offset` of
/// the underlying file (used only for error reporting).
///
/// Returns `Ok(None)` at a clean end of file (zero bytes remaining) and a
/// typed corruption error for a torn header, torn payload, implausible
/// length, or checksum mismatch.
pub fn read_frame(r: &mut impl Read, offset: u64) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_LEN as usize];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None) // clean EOF between frames
                } else {
                    Err(StorageError::TornFrame {
                        offset,
                        needed: FRAME_HEADER_LEN,
                        available: got as u64,
                    })
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StorageError::io("read frame header", e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
    let expected = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(StorageError::FrameTooLarge {
            offset,
            declared: len,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(StorageError::TornFrame {
                    offset,
                    needed: FRAME_HEADER_LEN + len,
                    available: FRAME_HEADER_LEN + got as u64,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StorageError::io("read frame payload", e)),
        }
    }
    let actual = crc32(&payload);
    if actual != expected {
        return Err(StorageError::ChecksumMismatch {
            offset,
            expected,
            actual,
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 0).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 13).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 21).unwrap().is_none());
    }

    #[test]
    fn torn_and_flipped_frames_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Torn payload.
        let torn = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut &torn[..], 0),
            Err(StorageError::TornFrame { .. })
        ));
        // Torn header.
        let torn = &buf[..4];
        assert!(matches!(
            read_frame(&mut &torn[..], 0),
            Err(StorageError::TornFrame { .. })
        ));
        // Flipped payload byte.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut &flipped[..], 0),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        // Garbage length prefix.
        let mut huge = buf;
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..], 0),
            Err(StorageError::FrameTooLarge { .. })
        ));
    }
}
