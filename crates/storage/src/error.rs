//! Error type for the durability subsystem.

use std::fmt;
use std::io;

use ivm_relational::error::RelError;

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the codec, write-ahead log, checkpointing and recovery.
///
/// Corruption of on-disk state is always surfaced as a typed variant —
/// recovery never panics on torn or bit-flipped frames, it truncates (WAL
/// tail) or falls back (checkpoints) instead.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the storage layer was doing (e.g. "append wal frame").
        context: String,
        /// The operating-system error.
        source: io::Error,
    },
    /// A frame's CRC32 did not match its payload: the bytes were altered
    /// after they were written (bit rot, torn write overlapping the body).
    ChecksumMismatch {
        /// Byte offset of the frame header within the file.
        offset: u64,
        /// Checksum recorded in the frame header.
        expected: u32,
        /// Checksum recomputed over the payload actually on disk.
        actual: u32,
    },
    /// The file ends in the middle of a frame: an interrupted append.
    TornFrame {
        /// Byte offset of the incomplete frame header.
        offset: u64,
        /// Bytes the frame claimed to need.
        needed: u64,
        /// Bytes actually remaining in the file.
        available: u64,
    },
    /// A frame declared a payload larger than the sanity bound, which means
    /// the length prefix itself is garbage.
    FrameTooLarge {
        /// Byte offset of the frame header within the file.
        offset: u64,
        /// The declared payload length.
        declared: u64,
    },
    /// The payload began with a format version this build does not speak.
    UnsupportedVersion(u8),
    /// A record tag byte was not one of the known kinds.
    UnknownRecordKind(u8),
    /// The payload was structurally malformed (ran out of bytes mid-field,
    /// invalid UTF-8 in a string, impossible enum discriminant, ...).
    Corrupt(String),
    /// Decoded data violated a relational invariant when reassembled
    /// (duplicate attribute, arity mismatch, ...).
    Rel(RelError),
    /// WAL replay produced an LSN sequence that is not strictly
    /// monotonically increasing.
    LsnOutOfOrder {
        /// LSN of the previous record.
        previous: u64,
        /// LSN of the offending record.
        found: u64,
    },
    /// A durability operation (checkpoint, WAL stats, ...) was invoked on a
    /// manager with no durable state attached; the payload says what was
    /// required.
    NoDurableState(String),
    /// A fault-injection failpoint fired (see [`crate::fault`]): the
    /// simulated process died at the named point. Only ever produced when
    /// a [`crate::fault::FailpointPlan`] is installed; the payload is the
    /// failpoint name.
    Injected(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => {
                write!(f, "i/o failure while trying to {context}: {source}")
            }
            StorageError::ChecksumMismatch {
                offset,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in frame at offset {offset}: header says \
                 {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            StorageError::TornFrame {
                offset,
                needed,
                available,
            } => write!(
                f,
                "torn frame at offset {offset}: needs {needed} bytes but only \
                 {available} remain in the file"
            ),
            StorageError::FrameTooLarge { offset, declared } => write!(
                f,
                "frame at offset {offset} declares an implausible payload of \
                 {declared} bytes; length prefix is corrupt"
            ),
            StorageError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "storage format version {v} is not supported by this build"
                )
            }
            StorageError::UnknownRecordKind(k) => {
                write!(f, "unknown record kind tag {k:#04x}")
            }
            StorageError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            StorageError::Rel(e) => write!(f, "decoded state is relationally invalid: {e}"),
            StorageError::LsnOutOfOrder { previous, found } => write!(
                f,
                "wal record lsn {found} does not follow previous lsn {previous}"
            ),
            StorageError::NoDurableState(what) => {
                write!(f, "no durable state: {what}")
            }
            StorageError::Injected(point) => {
                write!(f, "injected crash at failpoint {point}")
            }
        }
    }
}

/// Diagnostic equality: two errors are equal when they render identically.
/// ([`std::io::Error`] is not `PartialEq`, so structural equality is not an
/// option; callers match on variants, tests compare renderings.)
impl PartialEq for StorageError {
    fn eq(&self, other: &Self) -> bool {
        self.to_string() == other.to_string()
    }
}

impl Eq for StorageError {}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for StorageError {
    fn from(e: RelError) -> Self {
        StorageError::Rel(e)
    }
}

impl StorageError {
    /// Wrap an [`io::Error`] with a description of the attempted operation.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }

    /// True when this error is an injected failpoint crash (the simulated
    /// process died; the manager that raised it must be discarded and the
    /// storage directory re-opened, exactly as after a real crash).
    pub fn is_injected(&self) -> bool {
        matches!(self, StorageError::Injected(_))
    }

    /// True when this error denotes on-disk corruption (as opposed to an
    /// environmental i/o failure or a caller mistake). Recovery uses this to
    /// decide between "truncate and continue" and "propagate".
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StorageError::ChecksumMismatch { .. }
                | StorageError::TornFrame { .. }
                | StorageError::FrameTooLarge { .. }
                | StorageError::UnsupportedVersion(_)
                | StorageError::UnknownRecordKind(_)
                | StorageError::Corrupt(_)
                | StorageError::LsnOutOfOrder { .. }
        )
    }
}
