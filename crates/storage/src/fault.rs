//! Fault injection for crash and corruption testing.
//!
//! These helpers damage durable files the way real failures do: a torn
//! write (the file simply ends early), a flipped bit or byte somewhere in
//! the middle (bit rot, bad sector), or a zeroed range (a block that never
//! made it out of the drive cache). Recovery tests drive them at arbitrary
//! offsets and assert that the storage layer answers with typed
//! [`StorageError`]s — never a panic.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{Result, StorageError};

/// Cut the file to `new_len` bytes, simulating an append torn by a crash.
pub fn truncate_file(path: impl AsRef<Path>, new_len: u64) -> Result<()> {
    let path = path.as_ref();
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(format!("open {} for fault", path.display()), e))?;
    file.set_len(new_len)
        .map_err(|e| StorageError::io("truncate for fault", e))?;
    Ok(())
}

/// XOR the byte at `offset` with `mask` (a zero mask is rejected — it would
/// inject no fault). Simulates in-place bit rot.
pub fn flip_byte(path: impl AsRef<Path>, offset: u64, mask: u8) -> Result<()> {
    assert_ne!(mask, 0, "a zero mask flips nothing");
    let path = path.as_ref();
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(format!("open {} for fault", path.display()), e))?;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StorageError::io("seek for fault", e))?;
    file.read_exact(&mut byte)
        .map_err(|e| StorageError::io("read byte for fault", e))?;
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StorageError::io("seek for fault", e))?;
    file.write_all(&byte)
        .map_err(|e| StorageError::io("write flipped byte", e))?;
    file.sync_data()
        .map_err(|e| StorageError::io("sync fault", e))?;
    Ok(())
}

/// Flip a single bit (`bit` in `0..8`) at `offset`.
pub fn flip_bit(path: impl AsRef<Path>, offset: u64, bit: u8) -> Result<()> {
    assert!(bit < 8, "bit index out of range");
    flip_byte(path, offset, 1 << bit)
}

/// Overwrite `len` bytes starting at `offset` with zeros, simulating a
/// block that was never written.
pub fn zero_range(path: impl AsRef<Path>, offset: u64, len: u64) -> Result<()> {
    let path = path.as_ref();
    let mut file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(format!("open {} for fault", path.display()), e))?;
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StorageError::io("seek for fault", e))?;
    file.write_all(&vec![0u8; len as usize])
        .map_err(|e| StorageError::io("zero range", e))?;
    file.sync_data()
        .map_err(|e| StorageError::io("sync fault", e))?;
    Ok(())
}

/// Length of a file, for computing fault offsets.
pub fn file_len(path: impl AsRef<Path>) -> Result<u64> {
    let path = path.as_ref();
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| StorageError::io(format!("stat {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::scratch_dir;

    #[test]
    fn faults_change_bytes_as_described() {
        let dir = scratch_dir("fault");
        let path = dir.join("f");
        std::fs::write(&path, [0xAAu8; 16]).unwrap();

        truncate_file(&path, 10).unwrap();
        assert_eq!(file_len(&path).unwrap(), 10);

        flip_byte(&path, 3, 0xFF).unwrap();
        flip_bit(&path, 4, 0).unwrap();
        zero_range(&path, 7, 2).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[3], 0x55);
        assert_eq!(bytes[4], 0xAB);
        assert_eq!(&bytes[7..9], &[0, 0]);
        assert_eq!(bytes[0], 0xAA);
    }
}
