//! Fault injection for crash and corruption testing.
//!
//! Two layers live here:
//!
//! * **Raw helpers** ([`truncate_file`], [`flip_byte`], [`flip_bit`],
//!   [`zero_range`]) damage durable files the way real failures do: a torn
//!   write (the file simply ends early), a flipped bit or byte somewhere in
//!   the middle (bit rot, bad sector), or a zeroed range (a block that
//!   never made it out of the drive cache).
//! * **Declarative plans** ([`FailpointPlan`]) name *where* in the
//!   execution a failure strikes (the maintenance layer evaluates named
//!   failpoints at its commit-critical points) and *what* happens there
//!   ([`FailpointAction`]): a plain crash, or file corruption described by
//!   a [`CorruptSpec`] followed by a crash. Recovery tests and the
//!   deterministic simulator (`crates/sim`) share this one mechanism
//!   instead of duplicating truncate/flip logic.
//!
//! Recovery tests drive both layers at arbitrary offsets and assert that
//! the storage layer answers with typed [`StorageError`]s — never a panic.

use std::collections::HashMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::error::{Result, StorageError};

/// Cut the file to `new_len` bytes, simulating an append torn by a crash.
pub fn truncate_file(path: impl AsRef<Path>, new_len: u64) -> Result<()> {
    let path = path.as_ref();
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(format!("open {} for fault", path.display()), e))?;
    file.set_len(new_len)
        .map_err(|e| StorageError::io("truncate for fault", e))?;
    Ok(())
}

/// XOR the byte at `offset` with `mask` (a zero mask is rejected — it would
/// inject no fault). Simulates in-place bit rot.
pub fn flip_byte(path: impl AsRef<Path>, offset: u64, mask: u8) -> Result<()> {
    assert_ne!(mask, 0, "a zero mask flips nothing");
    let path = path.as_ref();
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(format!("open {} for fault", path.display()), e))?;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StorageError::io("seek for fault", e))?;
    file.read_exact(&mut byte)
        .map_err(|e| StorageError::io("read byte for fault", e))?;
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StorageError::io("seek for fault", e))?;
    file.write_all(&byte)
        .map_err(|e| StorageError::io("write flipped byte", e))?;
    file.sync_data()
        .map_err(|e| StorageError::io("sync fault", e))?;
    Ok(())
}

/// Flip a single bit (`bit` in `0..8`) at `offset`.
pub fn flip_bit(path: impl AsRef<Path>, offset: u64, bit: u8) -> Result<()> {
    assert!(bit < 8, "bit index out of range");
    flip_byte(path, offset, 1 << bit)
}

/// Overwrite `len` bytes starting at `offset` with zeros, simulating a
/// block that was never written.
pub fn zero_range(path: impl AsRef<Path>, offset: u64, len: u64) -> Result<()> {
    let path = path.as_ref();
    let mut file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(format!("open {} for fault", path.display()), e))?;
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StorageError::io("seek for fault", e))?;
    file.write_all(&vec![0u8; len as usize])
        .map_err(|e| StorageError::io("zero range", e))?;
    file.sync_data()
        .map_err(|e| StorageError::io("sync fault", e))?;
    Ok(())
}

/// Length of a file, for computing fault offsets.
pub fn file_len(path: impl AsRef<Path>) -> Result<u64> {
    let path = path.as_ref();
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| StorageError::io(format!("stat {}", path.display()), e))
}

/// Where within a file a corruption lands, resolved against the file's
/// length at strike time (so a plan armed before the file reaches its
/// final size still hits the intended region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPos {
    /// Absolute offset from the start of the file.
    FromStart(u64),
    /// Offset counted back from the end of the file (`FromEnd(1)` is the
    /// last byte).
    FromEnd(u64),
    /// `len * num / den`, clamped to the last byte — e.g. `Fraction(1, 2)`
    /// is the middle of the file.
    Fraction(u32, u32),
}

impl FaultPos {
    /// Resolve to an absolute offset for a file of `len` bytes.
    pub fn resolve(self, len: u64) -> u64 {
        match self {
            FaultPos::FromStart(o) => o.min(len.saturating_sub(1)),
            FaultPos::FromEnd(back) => len.saturating_sub(back),
            FaultPos::Fraction(num, den) => {
                let den = den.max(1) as u128;
                ((len as u128 * num as u128 / den) as u64).min(len.saturating_sub(1))
            }
        }
    }
}

/// One declarative corruption: a position plus what to do there. The
/// recovery tests, the crash-boundary sweep and the simulator all express
/// damage this way and apply it through [`corrupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptSpec {
    /// Cut the file so it ends at the resolved position (torn write).
    TruncateAt(FaultPos),
    /// Flip one bit (`0..8`) of the byte at the resolved position.
    FlipBit(FaultPos, u8),
    /// XOR the byte at the resolved position with a non-zero mask.
    FlipByte(FaultPos, u8),
    /// Zero `len` bytes starting at the resolved position.
    ZeroRange(FaultPos, u64),
}

impl fmt::Display for CorruptSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptSpec::TruncateAt(p) => write!(f, "truncate at {p:?}"),
            CorruptSpec::FlipBit(p, b) => write!(f, "flip bit {b} at {p:?}"),
            CorruptSpec::FlipByte(p, m) => write!(f, "flip byte (mask {m:#04x}) at {p:?}"),
            CorruptSpec::ZeroRange(p, n) => write!(f, "zero {n} bytes at {p:?}"),
        }
    }
}

/// Apply a [`CorruptSpec`] to a file, resolving its position against the
/// current file length. A no-op (and `Ok`) on an empty file — there is
/// nothing left to damage.
pub fn corrupt(path: impl AsRef<Path>, spec: CorruptSpec) -> Result<()> {
    let path = path.as_ref();
    let len = file_len(path)?;
    if len == 0 {
        return Ok(());
    }
    match spec {
        CorruptSpec::TruncateAt(pos) => {
            // For truncation the position is a *length*, not a byte index:
            // FromEnd(3) keeps len-3 bytes, FromStart(n) keeps n bytes.
            let keep = match pos {
                FaultPos::FromStart(o) => o.min(len),
                FaultPos::FromEnd(back) => len.saturating_sub(back),
                FaultPos::Fraction(num, den) => {
                    (len as u128 * num as u128 / den.max(1) as u128) as u64
                }
            };
            truncate_file(path, keep)
        }
        CorruptSpec::FlipBit(pos, bit) => flip_bit(path, pos.resolve(len), bit),
        CorruptSpec::FlipByte(pos, mask) => flip_byte(path, pos.resolve(len), mask),
        CorruptSpec::ZeroRange(pos, n) => {
            let off = pos.resolve(len);
            zero_range(path, off, n.min(len - off))
        }
    }
}

/// What happens when an armed failpoint triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailpointAction {
    /// Stop the process at this point: the evaluating layer returns
    /// [`StorageError::Injected`] without touching any file. Everything
    /// synced before the point survives; everything after is lost.
    Crash,
    /// Damage the durable file per the spec, then crash. Models a torn or
    /// rotted write that the process died in the middle of.
    CorruptAndCrash(CorruptSpec),
}

// Named failpoints evaluated by the maintenance layer (`ivm::manager` /
// `ivm::durability`). Kept here so the arming side (tests, simulator) and
// the evaluating side agree on spelling.

/// Before the transaction's WAL record is appended: nothing durable yet.
pub const FP_WAL_BEFORE_APPEND: &str = "wal.before_append";
/// After the WAL record is appended *and synced* (the commit point), but
/// before any in-memory state changes.
pub const FP_WAL_AFTER_APPEND: &str = "wal.after_append";
/// Mid-apply: base relations updated, view deltas not yet applied.
pub const FP_APPLY_MID: &str = "apply.mid";
/// At the start of a checkpoint, before the image is written.
pub const FP_CHECKPOINT_BEFORE: &str = "checkpoint.before";
/// Mid-checkpoint: the new image is on disk, pruning/compaction not yet
/// run.
pub const FP_CHECKPOINT_MID: &str = "checkpoint.mid";

/// Every failpoint name the maintenance layer evaluates, for sweeps.
pub const ALL_FAILPOINTS: &[&str] = &[
    FP_WAL_BEFORE_APPEND,
    FP_WAL_AFTER_APPEND,
    FP_APPLY_MID,
    FP_CHECKPOINT_BEFORE,
    FP_CHECKPOINT_MID,
];

#[derive(Debug)]
struct Armed {
    /// Hits to let pass before triggering (0 = trigger on the next hit).
    skip: u64,
    action: FailpointAction,
}

/// A declarative fault plan: named failpoints armed with trigger counts
/// and actions. The maintenance layer calls [`FailpointPlan::hit`] at each
/// named point; arming is done by tests and the simulator. Each armed
/// entry fires exactly once. Thread-safe (`Mutex`), shareable via `Arc`.
///
/// ```
/// use ivm_storage::fault::{FailpointPlan, FailpointAction, FP_WAL_AFTER_APPEND};
///
/// let plan = FailpointPlan::new();
/// plan.arm(FP_WAL_AFTER_APPEND, 2, FailpointAction::Crash); // 3rd hit fires
/// assert!(plan.hit(FP_WAL_AFTER_APPEND).is_none());
/// assert!(plan.hit(FP_WAL_AFTER_APPEND).is_none());
/// assert_eq!(plan.hit(FP_WAL_AFTER_APPEND), Some(FailpointAction::Crash));
/// assert!(plan.hit(FP_WAL_AFTER_APPEND).is_none()); // one-shot
/// assert!(plan.fired(FP_WAL_AFTER_APPEND));
/// ```
#[derive(Debug, Default)]
pub struct FailpointPlan {
    armed: Mutex<HashMap<String, Armed>>,
    fired: Mutex<Vec<String>>,
}

impl FailpointPlan {
    /// An empty plan: every hit passes.
    pub fn new() -> Self {
        FailpointPlan::default()
    }

    /// Arm `name`: let `skip` hits pass, trigger `action` on the next one.
    /// Re-arming an already-armed name replaces its entry.
    pub fn arm(&self, name: impl Into<String>, skip: u64, action: FailpointAction) {
        self.armed
            .lock()
            .expect("failpoint plan poisoned")
            .insert(name.into(), Armed { skip, action });
    }

    /// Disarm `name` without firing it.
    pub fn disarm(&self, name: &str) {
        self.armed
            .lock()
            .expect("failpoint plan poisoned")
            .remove(name);
    }

    /// Evaluate a failpoint: `None` passes, `Some(action)` means the
    /// caller must perform the action and abort as if the process died.
    pub fn hit(&self, name: &str) -> Option<FailpointAction> {
        let mut armed = self.armed.lock().expect("failpoint plan poisoned");
        let entry = armed.get_mut(name)?;
        if entry.skip > 0 {
            entry.skip -= 1;
            return None;
        }
        let action = entry.action;
        armed.remove(name);
        self.fired
            .lock()
            .expect("failpoint plan poisoned")
            .push(name.to_owned());
        Some(action)
    }

    /// True when the named failpoint has triggered.
    pub fn fired(&self, name: &str) -> bool {
        self.fired
            .lock()
            .expect("failpoint plan poisoned")
            .iter()
            .any(|n| n == name)
    }

    /// Names of failpoints that have triggered, in firing order.
    pub fn fired_names(&self) -> Vec<String> {
        self.fired.lock().expect("failpoint plan poisoned").clone()
    }

    /// True when nothing is armed (all entries fired or disarmed).
    pub fn is_exhausted(&self) -> bool {
        self.armed
            .lock()
            .expect("failpoint plan poisoned")
            .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::scratch_dir;

    #[test]
    fn faults_change_bytes_as_described() {
        let dir = scratch_dir("fault");
        let path = dir.join("f");
        std::fs::write(&path, [0xAAu8; 16]).unwrap();

        truncate_file(&path, 10).unwrap();
        assert_eq!(file_len(&path).unwrap(), 10);

        flip_byte(&path, 3, 0xFF).unwrap();
        flip_bit(&path, 4, 0).unwrap();
        zero_range(&path, 7, 2).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[3], 0x55);
        assert_eq!(bytes[4], 0xAB);
        assert_eq!(&bytes[7..9], &[0, 0]);
        assert_eq!(bytes[0], 0xAA);
    }

    #[test]
    fn corrupt_specs_resolve_positions() {
        let dir = scratch_dir("spec");
        let path = dir.join("f");
        std::fs::write(&path, [0xAAu8; 16]).unwrap();

        corrupt(&path, CorruptSpec::FlipByte(FaultPos::Fraction(1, 2), 0xFF)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[8], 0x55);

        corrupt(&path, CorruptSpec::FlipBit(FaultPos::FromStart(0), 0)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[0], 0xAB);

        corrupt(&path, CorruptSpec::ZeroRange(FaultPos::FromEnd(2), 99)).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[14..], &[0, 0]);

        corrupt(&path, CorruptSpec::TruncateAt(FaultPos::FromEnd(3))).unwrap();
        assert_eq!(file_len(&path).unwrap(), 13);
        corrupt(&path, CorruptSpec::TruncateAt(FaultPos::FromStart(4))).unwrap();
        assert_eq!(file_len(&path).unwrap(), 4);

        // Corrupting an empty file is a no-op, never an error.
        corrupt(&path, CorruptSpec::TruncateAt(FaultPos::FromStart(0))).unwrap();
        corrupt(&path, CorruptSpec::FlipBit(FaultPos::FromEnd(1), 0)).unwrap();
        assert_eq!(file_len(&path).unwrap(), 0);
    }

    #[test]
    fn failpoint_plan_skip_counts_and_one_shot() {
        let plan = FailpointPlan::new();
        assert!(plan.hit(FP_APPLY_MID).is_none(), "unarmed point fires");
        plan.arm(FP_APPLY_MID, 1, FailpointAction::Crash);
        assert!(!plan.is_exhausted());
        assert!(plan.hit(FP_APPLY_MID).is_none());
        assert_eq!(plan.hit(FP_APPLY_MID), Some(FailpointAction::Crash));
        assert!(plan.hit(FP_APPLY_MID).is_none());
        assert!(plan.fired(FP_APPLY_MID));
        assert_eq!(plan.fired_names(), vec![FP_APPLY_MID.to_string()]);
        assert!(plan.is_exhausted());

        plan.arm(FP_WAL_BEFORE_APPEND, 0, FailpointAction::Crash);
        plan.disarm(FP_WAL_BEFORE_APPEND);
        assert!(plan.hit(FP_WAL_BEFORE_APPEND).is_none());
    }
}
