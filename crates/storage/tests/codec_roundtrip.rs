//! Property tests: every `Codec` implementation must round-trip
//! (`decode(encode(x)) == x`) for arbitrary values, and decoding must
//! reject trailing garbage.

use ivm_relational::predicate::Atom;
use ivm_relational::prelude::*;
use ivm_storage::{Codec, StorageError};
use proptest::prelude::*;
use proptest::strategy::TestRng;

// ---------------------------------------------------------------------------
// Strategies for relational values.
// ---------------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z0-9]{0,12}".prop_map(Value::str),
    ]
}

fn tuple_strategy(arity: usize) -> impl Strategy<Value = Tuple> {
    prop::collection::vec(value_strategy(), arity..arity + 1).prop_map(Tuple::new)
}

/// A two-attribute schema plus tuples of matching arity and positive
/// multiplicities — i.e. an arbitrary well-formed counted relation.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec((tuple_strategy(2), 1u64..5), 0..12).prop_map(|rows| {
        let mut rel = Relation::empty(Schema::new(["A", "B"]).unwrap());
        for (tuple, count) in rows {
            rel.insert(tuple, count).unwrap();
        }
        rel
    })
}

fn transaction_strategy() -> impl Strategy<Value = Transaction> {
    prop::collection::vec((0u8..2, 0u8..2, tuple_strategy(2)), 0..16).prop_map(|ops| {
        let mut txn = Transaction::new();
        for (rel_pick, op, tuple) in ops {
            let rel = if rel_pick == 0 { "R" } else { "S" };
            if op == 0 {
                txn.insert(rel, tuple).unwrap();
            } else {
                txn.delete(rel, tuple).unwrap();
            }
        }
        txn
    })
}

// ---------------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn value_roundtrip(v in value_strategy()) {
        prop_assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn tuple_roundtrip(t in tuple_strategy(3)) {
        prop_assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn relation_roundtrip(r in relation_strategy()) {
        let back = Relation::decode(&r.encode()).unwrap();
        prop_assert_eq!(back.schema(), r.schema());
        prop_assert_eq!(back.sorted(), r.sorted());
    }

    #[test]
    fn transaction_roundtrip(t in transaction_strategy()) {
        // Transaction equality is net-effect equality, which is exactly
        // what the codec preserves (it serializes net insert/delete sets).
        prop_assert_eq!(Transaction::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_rejects_trailing_bytes(v in value_strategy(), extra in 1usize..8) {
        let mut bytes = v.encode();
        bytes.resize(bytes.len() + extra, 0u8);
        prop_assert!(matches!(
            Value::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_value_never_panics(v in value_strategy(), cut in 0usize..64) {
        let bytes = v.encode();
        prop_assume!(cut < bytes.len());
        // Any prefix must produce a typed error, not a panic.
        prop_assert!(Value::decode(&bytes[..cut]).is_err());
    }
}

// Expression round-trips use handwritten cases: the interesting structure
// (nesting, operator mix) is small and enumerable.
#[test]
fn spj_expr_roundtrip() {
    let exprs = [
        SpjExpr::new(["R"], Atom::lt_const("A", 10).into(), None),
        SpjExpr::new(
            ["R", "S"],
            Atom::lt_const("A", 10).into(),
            Some(vec!["A".into(), "C".into()]),
        ),
    ];
    for e in exprs {
        assert_eq!(SpjExpr::decode(&e.encode()).unwrap(), e);
    }
}

#[test]
fn tree_expr_roundtrip() {
    let base = |n: &str| Expr::base(n);
    let exprs = [
        base("R"),
        Expr::union(base("R"), base("S")),
        base("R")
            .join(base("S"))
            .select(Condition::from(Atom::lt_const("A", 10)))
            .project(["A"])
            .difference(base("T")),
    ];
    for e in exprs {
        assert_eq!(Expr::decode(&e.encode()).unwrap(), e);
    }
}

/// The per-test deterministic RNG plumbing is part of the vendored stub;
/// make sure two different tests see different sequences (guards against a
/// stub regression silently collapsing coverage).
#[test]
fn stub_rngs_differ_per_test() {
    use rand::Rng;
    let mut a: TestRng = proptest::strategy::rng_for_test("alpha");
    let mut b: TestRng = proptest::strategy::rng_for_test("beta");
    let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
    let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
    assert_ne!(xs, ys);
}
