//! Structured tracing spans and maintenance metrics — std-only, zero
//! dependencies.
//!
//! The paper's efficiency claims (§4 irrelevant-update filtering, §5
//! differential re-evaluation) are about *work avoided*; this crate is
//! how the rest of the repository proves the avoidance happened. Every
//! maintenance layer — the relevance filter, the differential engine,
//! the view manager, the worker pool, the WAL/checkpoint path — emits
//! counters, histogram observations and tracing spans through an
//! [`Obs`] handle. What happens to them is the caller's choice of
//! [`Recorder`]:
//!
//! * nothing at all ([`Obs::disabled`], the default — a single `Option`
//!   check per emission site, no clocks read, no allocation);
//! * aggregation in memory ([`InMemoryRecorder`], for tests and the
//!   shell's `\stats` command);
//! * one JSON object per event appended to a file
//!   ([`JsonLinesRecorder`], for offline analysis).
//!
//! The full metric catalog lives in [`names`] and is documented for
//! humans in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ivm_obs::{names, InMemoryRecorder, Obs};
//!
//! let recorder = Arc::new(InMemoryRecorder::new());
//! let obs = Obs::new(recorder.clone());
//!
//! {
//!     let _outer = obs.span(names::SPAN_EXECUTE);
//!     let _inner = obs.span(names::SPAN_DIFFERENTIATE);
//!     obs.add(names::DIFF_ROWS_EVALUATED, 3);
//! } // spans close here, innermost first
//!
//! assert_eq!(recorder.counter(names::DIFF_ROWS_EVALUATED), 3);
//! assert_eq!(recorder.span("execute/differentiate").count, 1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

pub mod names;
mod recorder;

pub use recorder::{
    HistogramSummary, InMemoryRecorder, JsonLinesRecorder, NoopRecorder, Recorder, Snapshot,
    SpanEvent, SpanSummary,
};

thread_local! {
    /// Per-thread stack of open span names; spans opened on a pool worker
    /// nest under whatever that worker opens, not under the caller's
    /// stack (worker spans are root spans of their own thread).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A cheap, clonable handle to the configured [`Recorder`], or to
/// nothing.
///
/// Every emission method starts with an `Option` check: with no recorder
/// installed there is no virtual call, no clock read and no allocation,
/// which is what keeps the instrumented hot paths within the repo's
/// "< 2% overhead when disabled" budget (measured by the `parallel_spj`
/// and `wal_append` benches).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// A handle that forwards to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Obs {
            inner: Some(recorder),
        }
    }

    /// The no-op handle: every emission is a branch on `None`.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Is a recorder installed?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to a counter. No-ops when disabled or `delta == 0`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.inner {
            if delta > 0 {
                r.add_counter(name, delta);
            }
        }
    }

    /// Record one histogram observation.
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(r) = &self.inner {
            r.observe(name, value);
        }
    }

    /// Open a tracing span; it closes (and is recorded) when the returned
    /// guard drops. Spans nest per thread: a span opened while another is
    /// open on the same thread records a `/`-joined path
    /// (`execute/differentiate`). When disabled the guard is inert — no
    /// clock is read.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(r) => {
                let path = SPAN_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    let mut path = String::with_capacity(32);
                    for parent in stack.iter() {
                        path.push_str(parent);
                        path.push('/');
                    }
                    path.push_str(name);
                    stack.push(name);
                    path
                });
                SpanGuard {
                    active: Some(ActiveSpan {
                        recorder: r.clone(),
                        name,
                        path,
                        started: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Time `f` under a span (convenience for single-expression phases).
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _guard = self.span(name);
        f()
    }
}

struct ActiveSpan {
    recorder: Arc<dyn Recorder>,
    name: &'static str,
    path: String,
    started: Instant,
}

/// RAII guard returned by [`Obs::span`]; records the span on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let nanos = span.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards can in principle be dropped out of order; pop our own
            // entry specifically so a stray long-lived guard cannot corrupt
            // sibling paths.
            if let Some(pos) = stack.iter().rposition(|n| *n == span.name) {
                stack.remove(pos);
            }
        });
        span.recorder.record_span(&SpanEvent {
            name: span.name,
            path: span.path,
            nanos,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.add(names::DIFF_ROWS_EVALUATED, 5);
        obs.observe(names::POOL_CHUNK_MICROS, 5);
        let _g = obs.span(names::SPAN_EXECUTE);
        // Nothing to assert beyond "does not panic / allocate a recorder".
    }

    #[test]
    fn counters_accumulate() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        obs.add(names::DIFF_ROWS_EVALUATED, 2);
        obs.add(names::DIFF_ROWS_EVALUATED, 3);
        obs.add(names::DIFF_JOINS_PERFORMED, 0); // zero deltas are skipped
        assert_eq!(rec.counter(names::DIFF_ROWS_EVALUATED), 5);
        assert_eq!(rec.counter(names::DIFF_JOINS_PERFORMED), 0);
        assert!(!rec
            .snapshot()
            .counters
            .contains_key(names::DIFF_JOINS_PERFORMED));
    }

    #[test]
    fn counter_atomicity_under_threads() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let obs = obs.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        obs.add(names::POOL_CHUNKS, 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter(names::POOL_CHUNKS), 8_000);
    }

    /// Regression: `snapshot()` must be a consistent cut across
    /// counters. The writer bumps `rows` strictly before `joins`, so no
    /// valid snapshot can ever show `joins` ahead of `rows`; the old
    /// read-lock snapshot interleaved with in-flight `fetch_add`s and
    /// could.
    #[test]
    fn snapshot_is_a_consistent_cut_across_counters() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        // Materialize both counters before racing so the snapshot always
        // sees both keys.
        obs.add(names::DIFF_ROWS_EVALUATED, 1);
        obs.add(names::DIFF_JOINS_PERFORMED, 1);
        std::thread::scope(|s| {
            let writer = obs.clone();
            s.spawn(move || {
                for _ in 0..2_000 {
                    writer.add(names::DIFF_ROWS_EVALUATED, 1);
                    writer.add(names::DIFF_JOINS_PERFORMED, 1);
                }
            });
            for _ in 0..200 {
                let snap = rec.snapshot();
                let rows = snap.counters[names::DIFF_ROWS_EVALUATED];
                let joins = snap.counters[names::DIFF_JOINS_PERFORMED];
                assert!(
                    rows >= joins,
                    "snapshot saw joins={joins} ahead of rows={rows}"
                );
            }
        });
    }

    #[test]
    fn histogram_summary_tracks_bounds() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        for v in [5u64, 1, 9, 5] {
            obs.observe(names::DIFF_ROW_OUTPUT_TUPLES, v);
        }
        let h = rec.histogram(names::DIFF_ROW_OUTPUT_TUPLES);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 20);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 9);
        assert_eq!(h.mean(), 5);
    }

    #[test]
    fn spans_nest_into_paths() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        {
            let _outer = obs.span(names::SPAN_EXECUTE);
            {
                let _inner = obs.span(names::SPAN_FILTER);
            }
            {
                let _inner = obs.span(names::SPAN_DIFFERENTIATE);
            }
        }
        {
            let _again = obs.span(names::SPAN_EXECUTE);
        }
        assert_eq!(rec.span("execute").count, 2);
        assert_eq!(rec.span("execute/filter").count, 1);
        assert_eq!(rec.span("execute/differentiate").count, 1);
        // After everything closed, a new root span is a root path again.
        {
            let _root = obs.span(names::SPAN_CHECKPOINT);
        }
        assert_eq!(rec.span("checkpoint").count, 1);
    }

    #[test]
    fn spans_on_other_threads_are_their_own_roots() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        let _outer = obs.span(names::SPAN_EXECUTE);
        std::thread::scope(|s| {
            let obs = obs.clone();
            s.spawn(move || {
                let _worker = obs.span(names::SPAN_FILTER);
            });
        });
        assert_eq!(rec.span("filter").count, 1, "worker span is a root");
        assert_eq!(rec.span("execute/filter").count, 0);
    }

    #[test]
    fn snapshot_display_is_deterministic() {
        let rec = InMemoryRecorder::new();
        rec.add_counter(names::DIFF_ROWS_EVALUATED, 7);
        rec.observe(names::POOL_CHUNK_MICROS, 40);
        rec.record_span(&SpanEvent {
            name: names::SPAN_EXECUTE,
            path: "execute".into(),
            nanos: 2_000,
        });
        let text = rec.snapshot().to_string();
        assert!(text.contains("diff.rows_evaluated"));
        assert!(text.contains("pool.chunk_micros"));
        assert!(text.contains("execute"));
        let empty = InMemoryRecorder::new().snapshot().to_string();
        assert!(empty.contains("no metrics recorded"));
    }

    #[test]
    fn reset_clears_everything() {
        let rec = InMemoryRecorder::new();
        rec.add_counter(names::WAL_SYNCS, 3);
        rec.observe(names::POOL_CHUNK_MICROS, 1);
        rec.reset();
        assert_eq!(rec.counter(names::WAL_SYNCS), 0);
        assert_eq!(rec.snapshot(), Snapshot::default());
    }

    #[test]
    fn json_lines_recorder_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("ivm-obs-test-{}.jsonl", std::process::id()));
        {
            let rec = JsonLinesRecorder::create(&path).unwrap();
            let obs = Obs::new(Arc::new(rec));
            obs.add(names::WAL_SYNCS, 2);
            obs.observe(names::POOL_CHUNK_MICROS, 17);
            let _g = obs.span(names::SPAN_CHECKPOINT);
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"wal.syncs\",\"delta\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"histogram\",\"name\":\"pool.chunk_micros\",\"value\":17}"
        );
        assert!(lines[2].starts_with("{\"type\":\"span\",\"path\":\"checkpoint\",\"nanos\":"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut out = String::new();
        recorder::escape_for_test("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn catalog_names_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for name in names::ALL_COUNTERS
            .iter()
            .chain(names::ALL_HISTOGRAMS)
            .chain(names::ALL_SPANS)
        {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "bad metric name {name}"
            );
        }
    }
}
