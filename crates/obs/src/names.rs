//! The metric catalog: every counter, histogram and span name emitted by
//! the maintenance layers, as `&'static str` constants.
//!
//! Centralizing the names serves three purposes:
//!
//! 1. Emitting code cannot typo a name — it references a constant.
//! 2. `docs/OBSERVABILITY.md` documents each metric; the CI script
//!    `ci/check_metrics.sh` greps every metric name mentioned there
//!    against this file, so the catalog and the docs cannot drift apart.
//! 3. Consumers (the shell's `\stats`, tests, benches) match on the same
//!    constants instead of string literals.
//!
//! Naming scheme: `layer.metric`, lowercase, dot-separated. Spans use
//! bare phase names; nested spans render as `/`-joined paths (e.g.
//! `execute/differentiate`).

// --- §4 relevance filter ---------------------------------------------

/// Counter: tuples examined by Algorithm 4.1 (inserted + deleted).
pub const FILTER_TUPLES_CHECKED: &str = "filter.tuples_checked";
/// Counter: tuples that passed the Theorem 4.1 test (kept for §5).
pub const FILTER_TUPLES_ADMITTED: &str = "filter.tuples_admitted";
/// Counter: tuples proved irrelevant and dropped before the engine ran.
pub const FILTER_TUPLES_FILTERED: &str = "filter.tuples_filtered";
/// Counter: invariant-graph constructions (one Floyd–Warshall APSP pass
/// per view/relation pair, paid once and cached).
pub const FILTER_GRAPHS_BUILT: &str = "filter.graphs_built";
/// Counter: filter invocations served by an already-built cached graph.
pub const FILTER_GRAPH_CACHE_HITS: &str = "filter.graph_cache_hits";
/// Histogram (µs): wall time of one invariant-graph construction,
/// dominated by the O(n³) all-pairs-shortest-path pass.
pub const FILTER_APSP_BUILD_MICROS: &str = "filter.apsp_build_micros";

// --- §5 differential engine ------------------------------------------

/// Counter: truth-table rows actually evaluated (≤ 2^k − 1).
pub const DIFF_ROWS_EVALUATED: &str = "diff.rows_evaluated";
/// Counter: truth-table rows pruned before evaluation (empty prefix).
pub const DIFF_ROWS_PRUNED: &str = "diff.rows_pruned";
/// Counter: binary join operations performed across all rows.
pub const DIFF_JOINS_PERFORMED: &str = "diff.joins_performed";
/// Counter: joins skipped by prefix sharing / empty-operand pruning.
pub const DIFF_JOINS_SKIPPED: &str = "diff.joins_skipped";
/// Counter: operand tuple occurrences fed into row evaluations.
pub const DIFF_OPERAND_TUPLES: &str = "diff.operand_tuples";
/// Counter: net inserted tuple occurrences in produced view deltas.
pub const DIFF_OUTPUT_INSERTS: &str = "diff.output_inserts";
/// Counter: net deleted tuple occurrences in produced view deltas.
pub const DIFF_OUTPUT_DELETES: &str = "diff.output_deletes";
/// Histogram (tuples): output cardinality of one truth-table row after
/// the residual condition and final projection.
pub const DIFF_ROW_OUTPUT_TUPLES: &str = "diff.row_output_tuples";
/// Counter: distinct `insert`-tagged entries in tagged-engine row output.
pub const DIFF_TAG_INSERTS: &str = "diff.tag_inserts";
/// Counter: distinct `delete`-tagged entries in tagged-engine row output.
pub const DIFF_TAG_DELETES: &str = "diff.tag_deletes";
/// Counter: distinct `old`-tagged entries in tagged-engine row output
/// (context tuples that cancel out of the final delta).
pub const DIFF_TAG_OLDS: &str = "diff.tag_olds";

// --- join-key indexes -------------------------------------------------

/// Counter: join-key hash indexes built (initial builds at view
/// registration plus rebuilds after recovery).
pub const INDEX_BUILDS: &str = "index.builds";
/// Counter: index probes issued by the differential engines (one per
/// prefix tuple per probe join).
pub const INDEX_PROBES: &str = "index.probes";
/// Counter: index postings visited by probes (including fully-deleted
/// postings skipped during `r − d_r` subtraction).
pub const INDEX_PROBE_ROWS: &str = "index.probe_rows";
/// Counter: tuple occurrences written through index maintenance while
/// applying base-table transactions (changed tuples × indexes touched).
pub const INDEX_MAINTENANCE_ROWS: &str = "index.maintenance_rows";
/// Histogram (bytes): estimated resident size of all join indexes of one
/// touched relation, sampled after each transaction apply.
pub const INDEX_MEMORY_BYTES: &str = "index.memory_bytes";

// --- view manager -----------------------------------------------------

/// Counter: transactions executed through [`ViewManager::execute`]
/// (whether or not any view was touched).
///
/// [`ViewManager::execute`]: https://docs.rs/ivm
pub const MANAGER_TRANSACTIONS: &str = "manager.transactions";
/// Counter: per-view differential maintenance runs.
pub const MANAGER_MAINTENANCE_RUNS: &str = "manager.maintenance_runs";
/// Counter: per-view skips where the filter proved the whole transaction
/// irrelevant.
pub const MANAGER_SKIPPED_BY_FILTER: &str = "manager.skipped_by_filter";
/// Counter: full re-evaluations chosen by the maintenance strategy.
pub const MANAGER_FULL_RECOMPUTES: &str = "manager.full_recomputes";

// --- view dependency DAG ----------------------------------------------

/// Counter: DAG nodes (user views *and* internal shared nodes) brought up
/// to date during transaction commits — differential runs plus full
/// recomputes, but not filter-skips.
pub const DAG_NODES_MAINTAINED: &str = "dag.nodes_maintained";
/// Counter: times the delta of a shared internal node (a common
/// subexpression maintained once) was consumed by a dependent view
/// instead of being recomputed — one hit per (node, dependent) pair per
/// transaction.
pub const DAG_SHARED_HITS: &str = "dag.shared_hits";
/// Histogram (views): number of DAG nodes maintained together in one
/// topological stratum of one transaction (the fan-out width the parallel
/// pool can exploit).
pub const DAG_STRATUM_WIDTH: &str = "dag.stratum_width";

// --- parallel pool ----------------------------------------------------

/// Counter: chunks dispatched to pool workers.
pub const POOL_CHUNKS: &str = "pool.chunks";
/// Histogram (µs): wall time of one worker's chunk body.
pub const POOL_CHUNK_MICROS: &str = "pool.chunk_micros";
/// Histogram (µs): delay between fan-out start and a chunk beginning to
/// run (spawn latency / queue wait).
pub const POOL_QUEUE_WAIT_MICROS: &str = "pool.queue_wait_micros";

// --- WAL / checkpoint path --------------------------------------------

/// Counter: records appended to the write-ahead log.
pub const WAL_RECORDS_APPENDED: &str = "wal.records_appended";
/// Counter: payload + frame-header bytes appended to the WAL.
pub const WAL_BYTES_APPENDED: &str = "wal.bytes_appended";
/// Counter: explicit `fdatasync` points issued on the WAL.
pub const WAL_SYNCS: &str = "wal.syncs";
/// Counter: WAL compaction passes that actually rewrote the log.
pub const WAL_COMPACTIONS: &str = "wal.compactions";
/// Counter: bytes reclaimed by WAL compaction (savings).
pub const WAL_BYTES_RECLAIMED: &str = "wal.bytes_reclaimed";
/// Counter: checkpoints written.
pub const CHECKPOINTS_WRITTEN: &str = "checkpoint.written";

// --- serving layer ----------------------------------------------------

/// Counter: requests served over the wire (every decoded frame that
/// produced a response, including error responses).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Counter: malformed frames / undecodable requests observed by server
/// sessions (the `serve-smoke` CI gate asserts this stays zero).
pub const SERVE_PROTOCOL_ERRORS: &str = "serve.protocol_errors";
/// Counter: client sessions accepted.
pub const SERVE_SESSIONS_OPENED: &str = "serve.sessions_opened";
/// Counter: client sessions ended (active sessions = opened − closed).
pub const SERVE_SESSIONS_CLOSED: &str = "serve.sessions_closed";
/// Counter: write transactions applied through the serving layer.
pub const SERVE_TXNS_EXECUTED: &str = "serve.txns_executed";
/// Counter: view tuples returned to clients by query responses.
pub const SERVE_ROWS_RETURNED: &str = "serve.rows_returned";
/// Histogram (µs): server-side service time of one request, from decoded
/// frame to response flushed. Client-observed p50/p99 (queueing + wire
/// included) are computed by the load generator from its own samples.
pub const SERVE_REQUEST_MICROS: &str = "serve.request_micros";
/// Histogram (epochs): staleness of the snapshot a query was served
/// from, measured as `hub epoch − snapshot epoch` at read time.
pub const SERVE_SNAPSHOT_AGE_EPOCHS: &str = "serve.snapshot_age_epochs";

// --- span names -------------------------------------------------------

/// Span: one whole [`ViewManager::execute`] call.
///
/// [`ViewManager::execute`]: https://docs.rs/ivm
pub const SPAN_EXECUTE: &str = "execute";
/// Span: WAL append + sync (the commit point), under `execute`.
pub const SPAN_LOG: &str = "log";
/// Span: §4 relevance filtering of one view's update sets, under
/// `execute`.
pub const SPAN_FILTER: &str = "filter";
/// Span: one §5 differential engine run, under `execute`.
pub const SPAN_DIFFERENTIATE: &str = "differentiate";
/// Span: base-table + view-delta application and listener dispatch,
/// under `execute`.
pub const SPAN_APPLY: &str = "apply";
/// Span: one checkpoint (snapshot write + prune + WAL compaction).
pub const SPAN_CHECKPOINT: &str = "checkpoint";
/// Span: one serving-layer request (decode, dispatch, respond).
pub const SPAN_SERVE: &str = "serve";

/// Every counter name in the catalog (used by tests to keep this module
/// and the docs exhaustive).
pub const ALL_COUNTERS: &[&str] = &[
    FILTER_TUPLES_CHECKED,
    FILTER_TUPLES_ADMITTED,
    FILTER_TUPLES_FILTERED,
    FILTER_GRAPHS_BUILT,
    FILTER_GRAPH_CACHE_HITS,
    DIFF_ROWS_EVALUATED,
    DIFF_ROWS_PRUNED,
    DIFF_JOINS_PERFORMED,
    DIFF_JOINS_SKIPPED,
    DIFF_OPERAND_TUPLES,
    DIFF_OUTPUT_INSERTS,
    DIFF_OUTPUT_DELETES,
    DIFF_TAG_INSERTS,
    DIFF_TAG_DELETES,
    DIFF_TAG_OLDS,
    INDEX_BUILDS,
    INDEX_PROBES,
    INDEX_PROBE_ROWS,
    INDEX_MAINTENANCE_ROWS,
    MANAGER_TRANSACTIONS,
    MANAGER_MAINTENANCE_RUNS,
    MANAGER_SKIPPED_BY_FILTER,
    MANAGER_FULL_RECOMPUTES,
    DAG_NODES_MAINTAINED,
    DAG_SHARED_HITS,
    POOL_CHUNKS,
    WAL_RECORDS_APPENDED,
    WAL_BYTES_APPENDED,
    WAL_SYNCS,
    WAL_COMPACTIONS,
    WAL_BYTES_RECLAIMED,
    CHECKPOINTS_WRITTEN,
    SERVE_REQUESTS,
    SERVE_PROTOCOL_ERRORS,
    SERVE_SESSIONS_OPENED,
    SERVE_SESSIONS_CLOSED,
    SERVE_TXNS_EXECUTED,
    SERVE_ROWS_RETURNED,
];

/// Every histogram name in the catalog.
pub const ALL_HISTOGRAMS: &[&str] = &[
    FILTER_APSP_BUILD_MICROS,
    DIFF_ROW_OUTPUT_TUPLES,
    DAG_STRATUM_WIDTH,
    INDEX_MEMORY_BYTES,
    POOL_CHUNK_MICROS,
    POOL_QUEUE_WAIT_MICROS,
    SERVE_REQUEST_MICROS,
    SERVE_SNAPSHOT_AGE_EPOCHS,
];

/// Every span name in the catalog.
pub const ALL_SPANS: &[&str] = &[
    SPAN_EXECUTE,
    SPAN_LOG,
    SPAN_FILTER,
    SPAN_DIFFERENTIATE,
    SPAN_APPLY,
    SPAN_CHECKPOINT,
    SPAN_SERVE,
];
