//! The [`Recorder`] trait and its three implementations: no-op,
//! in-memory (for tests and the shell) and JSON-lines file sink.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// One closed tracing span: where it sat in the span tree and how long it
/// ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Leaf name of the span (e.g. `differentiate`).
    pub name: &'static str,
    /// `/`-joined path from the root span (e.g. `execute/differentiate`).
    pub path: String,
    /// Wall time between entry and exit, in nanoseconds.
    pub nanos: u64,
}

/// A metrics/tracing backend. Implementations must be cheap and
/// thread-safe: counters are bumped from pool workers concurrently.
///
/// All hooks receive `&self`; interior mutability is the implementor's
/// business. Names come from the [`crate::names`] catalog.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the named monotonic counter.
    fn add_counter(&self, name: &'static str, delta: u64);
    /// Record one observation of the named histogram.
    fn observe(&self, name: &'static str, value: u64);
    /// A span closed; `event.path` reflects its nesting at close time.
    fn record_span(&self, event: &SpanEvent);
}

/// The do-nothing backend: every hook is an empty inline-able body.
/// [`crate::Obs::disabled`] avoids even the virtual call, so this type
/// mostly exists so call sites that *require* some recorder have one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add_counter(&self, _name: &'static str, _delta: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn record_span(&self, _event: &SpanEvent) {}
}

/// Summary of one histogram's observations (no per-sample storage, so
/// memory stays bounded no matter how hot the instrumented loop is).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when `count == 0`).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSummary {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean observed value (0 when there are no observations).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregate of all closed spans sharing one path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Spans closed at this path.
    pub count: u64,
    /// Total wall nanoseconds across them.
    pub total_nanos: u64,
}

/// A point-in-time copy of everything an [`InMemoryRecorder`] has seen.
/// `BTreeMap`s so iteration (and the [`fmt::Display`] rendering the shell
/// prints) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span aggregates by `/`-joined path.
    pub spans: BTreeMap<String, SpanSummary>,
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<28} {value}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "  {name:<28} n={} sum={} min={} mean={} max={}",
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.max
                )?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans:")?;
            for (path, s) in &self.spans {
                let mean = s.total_nanos.checked_div(s.count).unwrap_or(0);
                writeln!(
                    f,
                    "  {path:<28} n={} total={}µs mean={}µs",
                    s.count,
                    s.total_nanos / 1_000,
                    mean / 1_000
                )?;
            }
        }
        Ok(())
    }
}

/// Thread-safe in-memory backend for tests and the interactive shell.
///
/// Counters are `AtomicU64`s behind an `RwLock`ed map: the common case
/// (the counter already exists) is a read lock plus a relaxed
/// `fetch_add`, so concurrent pool workers never serialize on a mutex for
/// the hot counters. Histograms and spans take a `Mutex` — they are
/// emitted at chunk/phase granularity, not per tuple.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    counters: RwLock<HashMap<&'static str, AtomicU64>>,
    histograms: Mutex<HashMap<&'static str, HistogramSummary>>,
    spans: Mutex<BTreeMap<String, SpanSummary>>,
}

impl InMemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("counter map poisoned")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Summary of a histogram (default/empty if never observed).
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms
            .lock()
            .expect("histogram map poisoned")
            .get(name)
            .copied()
            .unwrap_or_default()
    }

    /// Aggregate of all spans closed at `path`.
    pub fn span(&self, path: &str) -> SpanSummary {
        self.spans
            .lock()
            .expect("span map poisoned")
            .get(path)
            .copied()
            .unwrap_or_default()
    }

    /// Copy out everything recorded so far.
    ///
    /// Counters are read under the *write* lock: adders hold the read
    /// lock across their `fetch_add`, so exclusive access here means no
    /// adder is mid-update and the per-counter `Relaxed` loads form a
    /// consistent cut (a writer that bumps `a` then `b` can never be
    /// seen with `b` ahead of `a`). Under the read lock the loads would
    /// interleave with concurrent `fetch_add`s and `\stats` could show
    /// cross-counter totals that never coexisted.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .write()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect();
        let spans = self.spans.lock().expect("span map poisoned").clone();
        Snapshot {
            counters,
            histograms,
            spans,
        }
    }

    /// Drop everything recorded so far.
    pub fn reset(&self) {
        self.counters.write().expect("counter map poisoned").clear();
        self.histograms
            .lock()
            .expect("histogram map poisoned")
            .clear();
        self.spans.lock().expect("span map poisoned").clear();
    }
}

impl Recorder for InMemoryRecorder {
    fn add_counter(&self, name: &'static str, delta: u64) {
        {
            let map = self.counters.read().expect("counter map poisoned");
            if let Some(c) = map.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        self.counters
            .write()
            .expect("counter map poisoned")
            .entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .expect("histogram map poisoned")
            .entry(name)
            .or_default()
            .record(value);
    }

    fn record_span(&self, event: &SpanEvent) {
        let mut spans = self.spans.lock().expect("span map poisoned");
        let s = spans.entry(event.path.clone()).or_default();
        s.count += 1;
        s.total_nanos += event.nanos;
    }
}

/// Append every metric event as one JSON object per line to a file —
/// greppable, `jq`-able, and written with hand-rolled serialization so
/// the crate stays dependency-free.
///
/// Line shapes:
///
/// ```json
/// {"type":"counter","name":"diff.rows_evaluated","delta":3}
/// {"type":"histogram","name":"pool.chunk_micros","value":120}
/// {"type":"span","path":"execute/differentiate","nanos":41000}
/// ```
#[derive(Debug)]
pub struct JsonLinesRecorder {
    writer: Mutex<BufWriter<File>>,
}

/// Escape a string for inclusion in a JSON string literal. Metric names
/// are plain ASCII identifiers, but span paths are built at runtime, so
/// escape defensively.
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
pub(crate) fn escape_for_test(s: &str, out: &mut String) {
    escape_json(s, out);
}

impl JsonLinesRecorder {
    /// Create (truncating) the sink file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesRecorder {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("json sink poisoned");
        // Metrics are best-effort: a full disk must not abort maintenance.
        let _ = writeln!(w, "{line}");
    }

    /// Flush buffered lines to the file.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("json sink poisoned").flush()
    }
}

impl Drop for JsonLinesRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Recorder for JsonLinesRecorder {
    fn add_counter(&self, name: &'static str, delta: u64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"counter\",\"name\":\"");
        escape_json(name, &mut line);
        line.push_str("\",\"delta\":");
        line.push_str(&delta.to_string());
        line.push('}');
        self.write_line(&line);
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"histogram\",\"name\":\"");
        escape_json(name, &mut line);
        line.push_str("\",\"value\":");
        line.push_str(&value.to_string());
        line.push('}');
        self.write_line(&line);
    }

    fn record_span(&self, event: &SpanEvent) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"type\":\"span\",\"path\":\"");
        escape_json(&event.path, &mut line);
        line.push_str("\",\"nanos\":");
        line.push_str(&event.nanos.to_string());
        line.push('}');
        self.write_line(&line);
    }
}
