//! Instrumentation counters for maintenance runs.
//!
//! The paper's efficiency arguments ("it is cheaper to update the view by
//! the above sequence of operations than recomputing the expression from
//! scratch", §5.1) are about work proportional to change-set size versus
//! base-relation size. These counters expose that work so the experiments
//! can report it alongside wall-clock times.

use std::fmt;
use std::ops::AddAssign;

/// Work counters for one differential (or full) maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Truth-table rows evaluated (§5.3; ≤ 2^k − 1 for k updated
    /// relations).
    pub rows_evaluated: usize,
    /// Binary join operations performed across all rows.
    pub joins_performed: usize,
    /// Join operations skipped thanks to prefix sharing or empty-operand
    /// pruning.
    pub joins_skipped: usize,
    /// Tuples (counted with multiplicity) fed into row evaluations.
    pub operand_tuples: u64,
    /// Net inserted tuple occurrences in the produced view delta.
    pub output_inserts: u64,
    /// Net deleted tuple occurrences in the produced view delta.
    pub output_deletes: u64,
}

impl DiffStats {
    /// Total net change magnitude.
    pub fn output_changes(&self) -> u64 {
        self.output_inserts + self.output_deletes
    }
}

impl AddAssign for DiffStats {
    fn add_assign(&mut self, o: DiffStats) {
        self.rows_evaluated += o.rows_evaluated;
        self.joins_performed += o.joins_performed;
        self.joins_skipped += o.joins_skipped;
        self.operand_tuples += o.operand_tuples;
        self.output_inserts += o.output_inserts;
        self.output_deletes += o.output_deletes;
    }
}

impl fmt::Display for DiffStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rows={} joins={} (skipped {}) operand_tuples={} out=+{}/-{}",
            self.rows_evaluated,
            self.joins_performed,
            self.joins_skipped,
            self.operand_tuples,
            self.output_inserts,
            self.output_deletes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = DiffStats {
            rows_evaluated: 1,
            joins_performed: 2,
            joins_skipped: 1,
            operand_tuples: 10,
            output_inserts: 3,
            output_deletes: 4,
        };
        a += a;
        assert_eq!(a.rows_evaluated, 2);
        assert_eq!(a.operand_tuples, 20);
        assert_eq!(a.output_changes(), 14);
    }

    #[test]
    fn display_mentions_counts() {
        let s = DiffStats::default().to_string();
        assert!(s.contains("rows=0"));
    }
}
