//! Instrumentation counters for maintenance runs.
//!
//! The paper's efficiency arguments ("it is cheaper to update the view by
//! the above sequence of operations than recomputing the expression from
//! scratch", §5.1) are about work proportional to change-set size versus
//! base-relation size. These counters expose that work so the experiments
//! can report it alongside wall-clock times.

use std::fmt;
use std::ops::AddAssign;

/// Work counters for one differential (or full) maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Truth-table rows evaluated (§5.3; ≤ 2^k − 1 for k updated
    /// relations).
    pub rows_evaluated: usize,
    /// Binary join operations performed across all rows.
    pub joins_performed: usize,
    /// Join operations skipped thanks to prefix sharing or empty-operand
    /// pruning.
    pub joins_skipped: usize,
    /// Tuples (counted with multiplicity) fed into row evaluations.
    pub operand_tuples: u64,
    /// Net inserted tuple occurrences in the produced view delta.
    pub output_inserts: u64,
    /// Net deleted tuple occurrences in the produced view delta.
    pub output_deletes: u64,
    /// Join-index probes issued (one per prefix tuple per probe join).
    /// Zero on the materialized fallback path — the only stats field,
    /// with `index_probe_rows`, allowed to differ between the indexed
    /// and fallback executions of the same maintenance pass.
    pub index_probes: u64,
    /// Index postings visited by probes (including fully-deleted postings
    /// skipped during §5.3 `r − d_r` subtraction).
    pub index_probe_rows: u64,
}

impl DiffStats {
    /// Total net change magnitude.
    pub fn output_changes(&self) -> u64 {
        self.output_inserts + self.output_deletes
    }
}

impl AddAssign for DiffStats {
    fn add_assign(&mut self, o: DiffStats) {
        self.rows_evaluated += o.rows_evaluated;
        self.joins_performed += o.joins_performed;
        self.joins_skipped += o.joins_skipped;
        self.operand_tuples += o.operand_tuples;
        self.output_inserts += o.output_inserts;
        self.output_deletes += o.output_deletes;
        self.index_probes += o.index_probes;
        self.index_probe_rows += o.index_probe_rows;
    }
}

impl fmt::Display for DiffStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rows={} joins={} (skipped {}) operand_tuples={} probes={}/{} out=+{}/-{}",
            self.rows_evaluated,
            self.joins_performed,
            self.joins_skipped,
            self.operand_tuples,
            self.index_probes,
            self.index_probe_rows,
            self.output_inserts,
            self.output_deletes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = DiffStats {
            rows_evaluated: 1,
            joins_performed: 2,
            joins_skipped: 1,
            operand_tuples: 10,
            output_inserts: 3,
            output_deletes: 4,
            index_probes: 5,
            index_probe_rows: 7,
        };
        a += a;
        assert_eq!(a.rows_evaluated, 2);
        assert_eq!(a.operand_tuples, 20);
        assert_eq!(a.output_changes(), 14);
        assert_eq!(a.index_probes, 10);
        assert_eq!(a.index_probe_rows, 14);
    }

    #[test]
    fn display_mentions_counts() {
        let s = DiffStats::default().to_string();
        assert!(s.contains("rows=0"));
    }
}
