//! *Efficiently Updating Materialized Views* — a from-scratch Rust
//! reproduction of Blakeley, Larson & Tompa (SIGMOD 1986).
//!
//! The paper's method has two stages, both implemented here:
//!
//! 1. **Irrelevant-update detection** (§4, [`relevance`]): every database
//!    update is first filtered through a state-independent test — the
//!    update's tuple values are substituted into the view's selection
//!    condition, and if the result is unsatisfiable (decided via a
//!    weighted constraint graph and negative-cycle detection,
//!    Rosenkrantz–Hunt) the update provably cannot affect the view in any
//!    database state. The conditions are necessary *and* sufficient
//!    (Theorem 4.1); the multi-tuple generalization (Theorem 4.2) is in
//!    [`relevance::joint`].
//! 2. **Differential re-evaluation** (§5, [`differential`]): surviving
//!    updates drive Algorithm 5.1 — truth-table expansion over the updated
//!    relations, the insert/delete/old tag algebra, multiplicity counters
//!    for projection — producing a view transaction instead of a full
//!    recomputation.
//!
//! [`manager::ViewManager`] packages both behind a database-with-views
//! API supporting immediate, deferred (§6 snapshot refresh) and on-demand
//! maintenance; [`full_reval`] is the complete re-evaluation baseline the
//! benchmarks compare against.
//!
//! # Quick start
//!
//! ```
//! use ivm::prelude::*;
//!
//! let mut m = ViewManager::new();
//! m.create_relation("R", Schema::new(["A", "B"]).unwrap()).unwrap();
//! m.create_relation("S", Schema::new(["B", "C"]).unwrap()).unwrap();
//! m.load("R", [[1, 10], [2, 20]]).unwrap();
//! m.load("S", [[10, 100]]).unwrap();
//!
//! // v := π_{A,C}(σ_{A<10}(R ⋈ S)), maintained on every commit.
//! let expr = SpjExpr::new(
//!     ["R", "S"],
//!     Atom::lt_const("A", 10).into(),
//!     Some(vec!["A".into(), "C".into()]),
//! );
//! m.register_view("v", expr, RefreshPolicy::Immediate).unwrap();
//!
//! let mut txn = Transaction::new();
//! txn.insert("R", [3, 10]).unwrap();
//! txn.insert("R", [99, 10]).unwrap(); // A=99 ≥ 10: provably irrelevant
//! m.execute(&txn).unwrap();
//!
//! let v = m.view_contents("v").unwrap();
//! assert!(v.contains(&Tuple::from([3, 100])));
//! assert_eq!(m.stats("v").unwrap().filter.irrelevant, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod differential;
pub mod durability;
pub mod error;
pub mod full_reval;
pub mod integrity;
pub mod manager;
pub mod relevance;
pub mod snapshot;
pub mod stats;
pub mod view;
pub mod workload;

/// Convenient glob-import of the commonly used types (re-exports the
/// relational prelude too).
pub mod prelude {
    pub use ivm_relational::prelude::*;

    pub use crate::differential::{differential_delta, DiffOptions, DifferentialResult, Engine};
    pub use crate::durability::{DurabilityPolicy, DurabilityStatus, RecoveryReport};
    pub use crate::error::{IvmError, Result};
    pub use crate::full_reval;
    pub use crate::integrity::{IntegrityMonitor, Violation};
    pub use crate::manager::{
        DagNodeInfo, MaintenanceReport, MaintenanceStats, MaintenanceStrategy, ManagerOptions,
        RefreshPolicy, SharedViewManager, ViewKind, ViewManager,
    };
    pub use crate::relevance::{combination_relevant, relevance_witness, RelevanceFilter};
    pub use crate::snapshot::{digest_views, SnapshotHandle, SnapshotHub, ViewSnapshot};
    pub use crate::stats::DiffStats;
    pub use crate::view::{MaterializedView, ViewDefinition};
    pub use crate::workload::Workload;
    pub use ivm_obs::{
        names as metric_names, InMemoryRecorder, JsonLinesRecorder, NoopRecorder, Obs, Recorder,
        Snapshot,
    };
    pub use ivm_storage::fault::{
        FP_APPLY_MID, FP_CHECKPOINT_BEFORE, FP_CHECKPOINT_MID, FP_WAL_AFTER_APPEND,
        FP_WAL_BEFORE_APPEND,
    };
    pub use ivm_storage::{CorruptSpec, FailpointAction, FailpointPlan, FaultPos};
}
