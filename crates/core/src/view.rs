//! View definitions and materializations (§3).
//!
//! "A view definition V corresponds to a relational algebra expression on
//! the database scheme. A view materialization v is a stored relation
//! resulting from the evaluation of this relational algebra expression
//! against an instance of the database." Views here are SPJ expressions in
//! the normal form `π_X(σ_C(R₁ ⋈ … ⋈ R_p))`; per §5.2 every materialized
//! tuple carries a multiplicity counter.

use std::fmt;

use ivm_relational::database::Database;
use ivm_relational::delta::DeltaRelation;
use ivm_relational::expr::SpjExpr;
use ivm_relational::relation::Relation;
use ivm_relational::schema::Schema;

use crate::error::{IvmError, Result};

/// A named SPJ view definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDefinition {
    name: String,
    expr: SpjExpr,
}

impl ViewDefinition {
    /// Create a named view from an SPJ expression.
    pub fn new(name: impl Into<String>, expr: SpjExpr) -> Result<Self> {
        if expr.relations.is_empty() {
            return Err(IvmError::UnsupportedView(
                "an SPJ view needs at least one operand relation".into(),
            ));
        }
        Ok(ViewDefinition {
            name: name.into(),
            expr,
        })
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining expression.
    pub fn expr(&self) -> &SpjExpr {
        &self.expr
    }

    /// Check the definition against a database (relations exist, condition
    /// and projection attributes resolve).
    pub fn validate(&self, db: &Database) -> Result<()> {
        self.expr.validate(db)?;
        Ok(())
    }

    /// The view's scheme.
    pub fn schema(&self, db: &Database) -> Result<Schema> {
        Ok(self.expr.output_schema(db)?)
    }
}

impl fmt::Display for ViewDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := {}", self.name, self.expr)
    }
}

/// A stored view materialization: the definition plus the counted relation
/// it currently holds.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    def: ViewDefinition,
    data: Relation,
}

impl MaterializedView {
    /// Materialize a view by full evaluation against the database.
    pub fn materialize(def: ViewDefinition, db: &Database) -> Result<Self> {
        def.validate(db)?;
        let data = def.expr().eval(db)?;
        Ok(MaterializedView { def, data })
    }

    /// Materialize a view by full evaluation over explicit positional
    /// operands — the registration path for stacked views, whose operands
    /// are other views' materializations rather than base relations.
    pub fn materialize_with(def: ViewDefinition, operands: &[&Relation]) -> Result<Self> {
        let schemas: Vec<&Schema> = operands.iter().map(|r| r.schema()).collect();
        def.expr().validate_with(&schemas)?;
        let data = def.expr().eval_with(operands)?;
        Ok(MaterializedView { def, data })
    }

    /// Swap the defining expression while keeping the materialization.
    /// Used when a view is retroactively rewritten over a shared common
    /// subexpression node: the rewrite is plan-level only — the rewritten
    /// expression must evaluate to the same contents.
    pub fn redefine(&mut self, def: ViewDefinition) {
        self.def = def;
    }

    /// Reinstall a view from persisted state **without re-evaluating it**:
    /// `data` is trusted to be the materialization the definition had when
    /// it was checkpointed. This is the recovery path — re-evaluating here
    /// would defeat differential replay.
    pub fn from_saved(def: ViewDefinition, data: Relation) -> Self {
        MaterializedView { def, data }
    }

    /// The definition.
    pub fn definition(&self) -> &ViewDefinition {
        &self.def
    }

    /// The current contents.
    pub fn contents(&self) -> &Relation {
        &self.data
    }

    /// Apply a maintenance delta (the "transaction to update the view" that
    /// Algorithm 5.1 outputs).
    pub fn apply(&mut self, delta: &DeltaRelation) -> Result<()> {
        self.data.apply_delta(delta)?;
        Ok(())
    }

    /// Replace the contents wholesale (full re-evaluation refresh).
    pub fn replace(&mut self, data: Relation) {
        self.data = data;
    }

    /// True when the stored contents equal a full re-evaluation against
    /// `db` — the consistency invariant every maintenance path must
    /// preserve.
    pub fn consistent_with(&self, db: &Database) -> Result<bool> {
        Ok(self.def.expr().eval(db)? == self.data)
    }
}

impl fmt::Display for MaterializedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.def)?;
        write!(f, "{}", self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_relational::predicate::Atom;
    use ivm_relational::tuple::Tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.create("R", Schema::new(["A", "B"]).unwrap()).unwrap();
        db.create("S", Schema::new(["B", "C"]).unwrap()).unwrap();
        db.load("R", [[1, 10], [2, 20]]).unwrap();
        db.load("S", [[10, 7], [20, 3]]).unwrap();
        db
    }

    fn def() -> ViewDefinition {
        ViewDefinition::new(
            "v",
            SpjExpr::new(
                ["R", "S"],
                Atom::lt_const("A", 10).into(),
                Some(vec!["A".into()]),
            ),
        )
        .unwrap()
    }

    #[test]
    fn empty_view_rejected() {
        let e = SpjExpr::new(Vec::<String>::new(), Atom::lt_const("A", 1).into(), None);
        assert!(matches!(
            ViewDefinition::new("v", e).unwrap_err(),
            IvmError::UnsupportedView(_)
        ));
    }

    #[test]
    fn materialize_and_consistency() {
        let d = db();
        let mv = MaterializedView::materialize(def(), &d).unwrap();
        assert_eq!(mv.contents().total_count(), 2);
        assert!(mv.consistent_with(&d).unwrap());
    }

    #[test]
    fn apply_delta_maintains() {
        let mut d = db();
        let mut mv = MaterializedView::materialize(def(), &d).unwrap();
        // Remove (2,20) from R by hand and apply the matching view delta.
        let mut txn = ivm_relational::transaction::Transaction::new();
        txn.delete("R", [2, 20]).unwrap();
        d.apply(&txn).unwrap();
        let mut delta = DeltaRelation::empty(mv.contents().schema().clone());
        delta.add(Tuple::from([2]), -1);
        mv.apply(&delta).unwrap();
        assert!(mv.consistent_with(&d).unwrap());
    }

    #[test]
    fn schema_of_view() {
        let d = db();
        assert_eq!(def().schema(&d).unwrap(), Schema::new(["A"]).unwrap());
    }

    #[test]
    fn validate_catches_bad_refs() {
        let d = db();
        let bad = ViewDefinition::new(
            "v",
            SpjExpr::new(["R", "Z"], Atom::lt_const("A", 10).into(), None),
        )
        .unwrap();
        assert!(bad.validate(&d).is_err());
    }

    #[test]
    fn display() {
        let s = def().to_string();
        assert!(s.starts_with("v :="));
    }
}
