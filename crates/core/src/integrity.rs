//! Integrity assertions via empty views — the Hammer & Sarin application.
//!
//! §2 reviews \[HS78\]: every integrity assertion has an *error predicate*
//! (its logical complement); "if the error-predicate is true for some
//! instance of the database, then the instance violates the assertion".
//! The conclusion of the paper notes that its irrelevant-update detection
//! "can be used in those contexts as well" — this module does exactly
//! that:
//!
//! * an assertion is registered as an SPJ *error view* that must stay
//!   **empty**;
//! * when a transaction arrives, each assertion's §4 relevance filter
//!   first decides — from the tuple values alone, independent of the
//!   database state — whether the transaction could possibly introduce an
//!   error tuple (the analogue of Hammer–Sarin's compile-time candidate
//!   tests);
//! * only for the surviving updates is the error view evaluated
//!   differentially; any *inserted* error tuple is a violation (deletions
//!   from the error view are repairs and always admissible).
//!
//! Checking happens **before** the transaction is applied, so a caller can
//! reject violating transactions outright ([`IntegrityMonitor::check`])
//! or use the guard wrapper [`IntegrityMonitor::apply_checked`].
//!
//! ```
//! use ivm::integrity::IntegrityMonitor;
//! use ivm::prelude::*;
//!
//! let mut db = Database::new();
//! db.create("emp", Schema::new(["ID", "SALARY"]).unwrap()).unwrap();
//!
//! let mut monitor = IntegrityMonitor::new();
//! // Assertion: no salary above 100 000 (the error view must stay empty).
//! monitor.assert_empty(
//!     "salary_cap",
//!     SpjExpr::new(["emp"], Atom::gt_const("SALARY", 100_000).into(), None),
//!     &db,
//! ).unwrap();
//!
//! let mut ok = Transaction::new();
//! ok.insert("emp", [1, 50_000]).unwrap();
//! assert!(monitor.apply_checked(&mut db, &ok).unwrap().is_ok());
//!
//! let mut bad = Transaction::new();
//! bad.insert("emp", [2, 200_000]).unwrap();
//! let rejected = monitor.apply_checked(&mut db, &bad).unwrap();
//! assert_eq!(rejected.unwrap_err()[0].assertion, "salary_cap");
//! assert_eq!(db.relation("emp").unwrap().total_count(), 1);
//! ```

use std::collections::HashMap;

use ivm_relational::database::Database;
use ivm_relational::expr::SpjExpr;
use ivm_relational::transaction::Transaction;
use ivm_relational::tuple::Tuple;

use crate::differential::{differential_delta, DiffOptions};
use crate::error::{IvmError, Result};
use crate::relevance::RelevanceFilter;

/// A violation introduced by a candidate transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated assertion.
    pub assertion: String,
    /// Error-view tuples the transaction would introduce (with
    /// multiplicities).
    pub witnesses: Vec<(Tuple, u64)>,
}

struct PreparedAssertion {
    name: String,
    error_view: SpjExpr,
    /// Lazily built relevance filters per updated relation.
    filters: HashMap<String, RelevanceFilter>,
}

/// Statistics over the monitor's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Transactions checked.
    pub checked: usize,
    /// Per-assertion checks skipped because the relevance filter proved
    /// the transaction harmless.
    pub skipped_by_filter: usize,
    /// Differential evaluations performed.
    pub evaluated: usize,
    /// Violations found.
    pub violations: usize,
}

/// A set of integrity assertions checked against candidate transactions.
pub struct IntegrityMonitor {
    assertions: Vec<PreparedAssertion>,
    options: DiffOptions,
    stats: IntegrityStats,
}

impl IntegrityMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        IntegrityMonitor {
            assertions: Vec::new(),
            options: DiffOptions::default(),
            stats: IntegrityStats::default(),
        }
    }

    /// Register an assertion: `error_view` must be empty in every
    /// consistent state. Errors if the view is non-empty *now* (the
    /// current state already violates the assertion) or is malformed.
    pub fn assert_empty(
        &mut self,
        name: impl Into<String>,
        error_view: SpjExpr,
        db: &Database,
    ) -> Result<()> {
        let name = name.into();
        error_view.validate(db)?;
        let current = error_view.eval(db)?;
        if !current.is_empty() {
            return Err(IvmError::UnsupportedView(format!(
                "assertion {name} already violated by the current state ({} error tuples)",
                current.total_count()
            )));
        }
        self.assertions.push(PreparedAssertion {
            name,
            error_view,
            filters: HashMap::new(),
        });
        Ok(())
    }

    /// Names of registered assertions.
    pub fn assertion_names(&self) -> impl Iterator<Item = &str> {
        self.assertions.iter().map(|a| a.name.as_str())
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> IntegrityStats {
        self.stats
    }

    /// Check a candidate transaction against the pre-transaction database:
    /// returns every violation it would introduce (empty ⇒ admissible).
    pub fn check(&mut self, db: &Database, txn: &Transaction) -> Result<Vec<Violation>> {
        self.stats.checked += 1;
        let mut violations = Vec::new();
        for assertion in &mut self.assertions {
            // Stage 1: relevance filtering (state-independent).
            let mut filtered = Transaction::new();
            let mut any_relevant = false;
            for relation in txn.touched() {
                if assertion.error_view.position_of(relation).is_none() {
                    continue;
                }
                if !assertion.filters.contains_key(relation) {
                    let f = RelevanceFilter::new(&assertion.error_view, db, relation)?;
                    assertion.filters.insert(relation.to_owned(), f);
                }
                let f = &assertion.filters[relation];
                for t in txn.inserted(relation) {
                    if f.is_relevant(t)? {
                        filtered.insert(relation, t.clone())?;
                        any_relevant = true;
                    }
                }
                for t in txn.deleted(relation) {
                    if f.is_relevant(t)? {
                        filtered.delete(relation, t.clone())?;
                        any_relevant = true;
                    }
                }
            }
            if !any_relevant {
                self.stats.skipped_by_filter += 1;
                continue;
            }
            // Stage 2: differential evaluation of the error view. Since
            // the view is empty, any positive delta tuple is a new error.
            self.stats.evaluated += 1;
            let result = differential_delta(&assertion.error_view, db, &filtered, &self.options)?;
            let (introduced, _removed) = result.delta.split();
            if !introduced.is_empty() {
                self.stats.violations += 1;
                violations.push(Violation {
                    assertion: assertion.name.clone(),
                    witnesses: introduced,
                });
            }
        }
        Ok(violations)
    }

    /// Apply the transaction only if it introduces no violation; otherwise
    /// leave the database untouched and return the violations.
    pub fn apply_checked(
        &mut self,
        db: &mut Database,
        txn: &Transaction,
    ) -> Result<std::result::Result<(), Vec<Violation>>> {
        db.validate(txn)?;
        let violations = self.check(db, txn)?;
        if violations.is_empty() {
            db.apply(txn)?;
            Ok(Ok(()))
        } else {
            Ok(Err(violations))
        }
    }
}

impl Default for IntegrityMonitor {
    fn default() -> Self {
        IntegrityMonitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_relational::predicate::{Atom, CompOp};
    use ivm_relational::schema::Schema;

    /// employees(EMP, DEPT, SALARY), depts(DEPT, CAP): two assertions —
    /// no salary above 100 000, and no employee in a department with
    /// CAP < 1 (referentially-flavoured cross-relation check).
    fn setup() -> (Database, IntegrityMonitor) {
        let mut db = Database::new();
        db.create("employees", Schema::new(["EMP", "DEPT", "SALARY"]).unwrap())
            .unwrap();
        db.create("depts", Schema::new(["DEPT", "CAP"]).unwrap())
            .unwrap();
        db.load("employees", [[1, 10, 50_000], [2, 20, 80_000]])
            .unwrap();
        db.load("depts", [[10, 5], [20, 3]]).unwrap();

        let mut m = IntegrityMonitor::new();
        m.assert_empty(
            "salary_cap",
            SpjExpr::new(
                ["employees"],
                Atom::gt_const("SALARY", 100_000).into(),
                None,
            ),
            &db,
        )
        .unwrap();
        m.assert_empty(
            "dept_capacity",
            SpjExpr::new(
                ["employees", "depts"],
                Atom::cmp_const("CAP", CompOp::Lt, 1).into(),
                None,
            ),
            &db,
        )
        .unwrap();
        (db, m)
    }

    #[test]
    fn admissible_transaction_passes() {
        let (db, mut m) = setup();
        let mut txn = Transaction::new();
        txn.insert("employees", [3, 10, 60_000]).unwrap();
        assert!(m.check(&db, &txn).unwrap().is_empty());
    }

    #[test]
    fn violating_insert_is_caught_with_witness() {
        let (db, mut m) = setup();
        let mut txn = Transaction::new();
        txn.insert("employees", [3, 10, 200_000]).unwrap();
        let v = m.check(&db, &txn).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].assertion, "salary_cap");
        assert_eq!(v[0].witnesses, vec![(Tuple::from([3, 10, 200_000]), 1)]);
    }

    #[test]
    fn harmless_updates_skip_evaluation_entirely() {
        let (db, mut m) = setup();
        let mut txn = Transaction::new();
        txn.insert("employees", [3, 10, 99_000]).unwrap();
        m.check(&db, &txn).unwrap();
        let s = m.stats();
        // salary_cap: 99 000 ≤ 100 000 is provably harmless → skipped.
        // dept_capacity: the condition is on CAP, so employee inserts are
        // potentially relevant → evaluated.
        assert_eq!(s.skipped_by_filter, 1);
        assert_eq!(s.evaluated, 1);
        assert_eq!(s.violations, 0);
    }

    #[test]
    fn cross_relation_violation_via_dept_change() {
        let (db, mut m) = setup();
        // Shrinking a department's capacity to 0 while employees remain.
        let mut txn = Transaction::new();
        txn.delete("depts", [10, 5]).unwrap();
        txn.insert("depts", [10, 0]).unwrap();
        let v = m.check(&db, &txn).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].assertion, "dept_capacity");
    }

    #[test]
    fn apply_checked_guards_the_database() {
        let (mut db, mut m) = setup();
        let before = db.relation("employees").unwrap().clone();

        let mut bad = Transaction::new();
        bad.insert("employees", [3, 10, 200_000]).unwrap();
        let outcome = m.apply_checked(&mut db, &bad).unwrap();
        assert!(outcome.is_err());
        assert_eq!(
            db.relation("employees").unwrap(),
            &before,
            "rejected txn not applied"
        );

        let mut good = Transaction::new();
        good.insert("employees", [3, 10, 70_000]).unwrap();
        assert!(m.apply_checked(&mut db, &good).unwrap().is_ok());
        assert!(db
            .relation("employees")
            .unwrap()
            .contains(&Tuple::from([3, 10, 70_000])));
    }

    #[test]
    fn registering_an_already_violated_assertion_fails() {
        let (db, mut m) = setup();
        let err = m.assert_empty(
            "impossible",
            SpjExpr::new(["employees"], Atom::gt_const("SALARY", 60_000).into(), None),
            &db,
        );
        assert!(matches!(err.unwrap_err(), IvmError::UnsupportedView(_)));
    }

    #[test]
    fn repairing_deletions_are_admissible() {
        let (mut db, mut m) = setup();
        // Force the DB toward the boundary: a 100k salary is fine.
        let mut txn = Transaction::new();
        txn.insert("employees", [5, 10, 100_000]).unwrap();
        assert!(m.apply_checked(&mut db, &txn).unwrap().is_ok());
        // Deleting employees can never violate either assertion.
        let mut del = Transaction::new();
        del.delete("employees", [5, 10, 100_000]).unwrap();
        assert!(m.check(&db, &del).unwrap().is_empty());
    }

    #[test]
    fn multi_assertion_reporting() {
        let (db, mut m) = setup();
        // One transaction violating both assertions at once.
        let mut txn = Transaction::new();
        txn.insert("employees", [3, 30, 500_000]).unwrap();
        txn.insert("depts", [30, 0]).unwrap();
        let v = m.check(&db, &txn).unwrap();
        let names: Vec<&str> = v.iter().map(|x| x.assertion.as_str()).collect();
        assert!(names.contains(&"salary_cap"));
        assert!(names.contains(&"dept_capacity"));
    }
}
