//! Error type for the view-maintenance layer.

use std::fmt;
use std::sync::Arc;

use ivm_relational::error::RelError;
use ivm_satisfiability::error::SatError;
use ivm_storage::StorageError;

/// Errors raised by view registration, relevance analysis and differential
/// maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IvmError {
    /// An error bubbled up from the relational substrate.
    Relational(RelError),
    /// An error bubbled up from the satisfiability engine.
    Satisfiability(SatError),
    /// A view with this name is already registered.
    DuplicateView(String),
    /// No view with this name is registered.
    UnknownView(String),
    /// The named relation does not participate in the view, so a relevance
    /// filter for it cannot be built.
    RelationNotInView {
        /// The relation name.
        relation: String,
        /// The view it was checked against.
        view: String,
    },
    /// The view definition fell outside the supported SPJ class (e.g. no
    /// operand relations).
    UnsupportedView(String),
    /// An error bubbled up from the durability layer (WAL, checkpoint or
    /// codec). `Arc`-wrapped because [`StorageError`] carries
    /// [`std::io::Error`], which is not `Clone`.
    Storage(Arc<StorageError>),
}

impl fmt::Display for IvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IvmError::Relational(e) => write!(f, "relational error: {e}"),
            IvmError::Satisfiability(e) => write!(f, "satisfiability error: {e}"),
            IvmError::DuplicateView(n) => write!(f, "view {n} already registered"),
            IvmError::UnknownView(n) => write!(f, "unknown view {n}"),
            IvmError::RelationNotInView { relation, view } => {
                write!(f, "relation {relation} does not participate in view {view}")
            }
            IvmError::UnsupportedView(msg) => write!(f, "unsupported view definition: {msg}"),
            IvmError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for IvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IvmError::Relational(e) => Some(e),
            IvmError::Satisfiability(e) => Some(e),
            IvmError::Storage(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<RelError> for IvmError {
    fn from(e: RelError) -> Self {
        IvmError::Relational(e)
    }
}

impl From<SatError> for IvmError {
    fn from(e: SatError) -> Self {
        IvmError::Satisfiability(e)
    }
}

impl From<StorageError> for IvmError {
    fn from(e: StorageError) -> Self {
        IvmError::Storage(Arc::new(e))
    }
}

/// Result alias for the view-maintenance layer.
pub type Result<T> = std::result::Result<T, IvmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: IvmError = RelError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains('r'));
        let e: IvmError = SatError::VarOutOfRange {
            var: 1,
            num_vars: 0,
        }
        .into();
        assert!(e.to_string().contains("x1"));
        assert!(IvmError::UnknownView("v".into()).to_string().contains('v'));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: IvmError = RelError::UnknownRelation("r".into()).into();
        assert!(e.source().is_some());
        assert!(IvmError::DuplicateView("v".into()).source().is_none());
    }
}
