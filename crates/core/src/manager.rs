//! The view manager: end-to-end maintenance of registered views.
//!
//! Ties the paper together: transactions are validated and applied to the
//! base relations; for every registered view the update sets are first
//! passed through the §4 relevance filter, and the survivors drive the §5
//! differential engine. Three refresh policies are supported:
//!
//! * [`RefreshPolicy::Immediate`] — the paper's main assumption: "views
//!   are materialized every time a transaction updates the database",
//!   maintenance runs as the last operation of the transaction;
//! * [`RefreshPolicy::Deferred`] — the §6 *snapshot* model \[AL80\]:
//!   changes accumulate and are folded in on explicit
//!   [`ViewManager::refresh`] (snapshot refresh);
//! * [`RefreshPolicy::OnDemand`] — like deferred, but a query
//!   ([`ViewManager::query`]) triggers the refresh first.
//!
//! Alerters in the style of Buneman & Clemons \[BC79\] can subscribe to a
//! view with [`ViewManager::on_change`]; they are invoked with the view
//! delta whenever maintenance changes the view.
//!
//! Orthogonally to *when*, [`MaintenanceStrategy`] controls *how*: always
//! differentially (the paper's proposal), always by full re-evaluation
//! (the §1 strawman), or per-transaction via the §6 cost model. General
//! algebra trees (∪/− included) register through
//! [`ViewManager::register_tree_view`] and are maintained by the recursive
//! delta rules of [`crate::differential::tree`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::RwLock;

use ivm_obs::{names, Obs, Recorder};
use ivm_relational::database::Database;
use ivm_relational::delta::DeltaRelation;
use ivm_relational::expr::{Expr, SpjExpr};
use ivm_relational::relation::Relation;
use ivm_relational::schema::Schema;
use ivm_relational::transaction::Transaction;
use ivm_relational::tuple::Tuple;

use ivm_relational::attribute::AttrName;

use ivm_relational::predicate::Condition;

use crate::differential::{
    differential_delta_parts_observed, DiffOptions, DifferentialResult, OperandUpdate,
};
use crate::error::{IvmError, Result};
use crate::relevance::{FilterStats, RelevanceFilter};
use crate::stats::DiffStats;
use crate::view::{MaterializedView, ViewDefinition};

/// Reserved name prefix for internal shared common-subexpression nodes.
/// User registrations may not use it; everything else treats these nodes
/// as implementation detail (hidden from [`ViewManager::view_names`] and
/// from snapshot publication).
pub(crate) const SHARED_PREFIX: &str = "~s";

/// How an immediate view is brought up to date when a relevant
/// transaction arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceStrategy {
    /// Always run the §5 differential algorithm (the paper's proposal).
    #[default]
    AlwaysDifferential,
    /// Always re-evaluate from scratch (the §1 strawman; useful as a
    /// baseline and for bulk rebuilds).
    AlwaysFull,
    /// Decide per transaction with the §6 cost model
    /// ([`crate::cost::prefer_differential`]): differential while change
    /// sets are small, full re-evaluation for wholesale changes.
    CostBased,
}

/// When a registered view is brought up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Maintain as part of every transaction commit (§5 assumption).
    #[default]
    Immediate,
    /// Accumulate changes; refresh only on an explicit
    /// [`ViewManager::refresh`] (§6 snapshot refresh).
    Deferred,
    /// Accumulate changes; refresh lazily when the view is queried.
    OnDemand,
}

/// Per-view maintenance statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceStats {
    /// Transactions that touched at least one operand relation.
    pub transactions_seen: usize,
    /// Differential maintenance runs actually executed.
    pub maintenance_runs: usize,
    /// Transactions skipped entirely because the relevance filter proved
    /// every changed tuple irrelevant.
    pub skipped_by_filter: usize,
    /// Full re-evaluations chosen by the maintenance strategy.
    pub full_recomputes: usize,
    /// Accumulated relevance-filter statistics.
    pub filter: FilterStats,
    /// Accumulated differential-engine statistics.
    pub diff: DiffStats,
    /// Delta tuples produced by the most recent maintenance run (full
    /// recomputes report the derived replacement delta).
    pub last_delta_tuples: usize,
    /// Truth-table rows evaluated by the most recent differential run.
    pub last_rows_evaluated: usize,
}

/// What one [`ViewManager::execute`] call did, so callers (tests,
/// benches, the shell) can assert on *work counts* instead of timing.
/// The counters cover this transaction only; the cumulative per-view
/// history is [`ViewManager::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Views whose operand relations the transaction touched.
    pub views_touched: usize,
    /// Views maintained differentially (including deferred refreshes
    /// queued — see `views_deferred`).
    pub views_maintained: usize,
    /// Views skipped because the §4 filter proved every tuple irrelevant.
    pub views_skipped: usize,
    /// Views rebuilt by full re-evaluation (strategy decision).
    pub full_recomputes: usize,
    /// Views whose (filtered) changes were queued for a later refresh.
    pub views_deferred: usize,
    /// Truth-table rows evaluated by the §5 engine across all immediate
    /// views (equals `diff.rows_evaluated`; identical at every thread
    /// count).
    pub rows_evaluated: usize,
    /// View-operand deltas consumed from internal shared
    /// common-subexpression nodes this transaction: one hit per
    /// (shared node, consuming dependent) pair. A positive value proves
    /// the shared core was evaluated once and its delta reused.
    pub shared_hits: usize,
    /// Relevance-filter work for this transaction.
    pub filter: FilterStats,
    /// Differential-engine work for this transaction.
    pub diff: DiffStats,
}

/// Change listener: called with the view's delta after maintenance.
pub type ChangeListener = Arc<dyn Fn(&str, &DeltaRelation) + Send + Sync>;

/// Manager-wide configuration in one bundle: the differential-engine
/// options plus the knobs that live on the manager itself. `threads`
/// governs every maintenance hot path (truth-table rows, relevance
/// checks, partitioned joins): `0` means one worker per available core
/// (the default), `1` forces the fully sequential paths — the
/// deterministic oracle the thread-invariance tests compare against.
/// Results are identical at every width; only wall-clock changes.
#[derive(Debug, Clone)]
pub struct ManagerOptions {
    /// Differential-engine options. The `threads` field below overrides
    /// `diff.threads` so there is a single source of truth.
    pub diff: DiffOptions,
    /// How immediate views are maintained.
    pub strategy: MaintenanceStrategy,
    /// Whether the §4 relevance filter runs.
    pub filtering: bool,
    /// Maintenance worker threads (`0` = available cores).
    pub threads: usize,
    /// Metrics/tracing backend. Defaults to the disabled handle: no
    /// recorder, no clocks read, no overhead (see `docs/OBSERVABILITY.md`
    /// and the `parallel_spj` bench guard). Attach one with
    /// [`ManagerOptions::with_recorder`].
    pub recorder: Obs,
}

impl Default for ManagerOptions {
    fn default() -> Self {
        ManagerOptions {
            diff: DiffOptions::default(),
            strategy: MaintenanceStrategy::default(),
            filtering: true,
            threads: 0,
            recorder: Obs::disabled(),
        }
    }
}

impl ManagerOptions {
    /// Fully sequential configuration (`threads = 1`).
    pub fn sequential() -> Self {
        ManagerOptions {
            threads: 1,
            ..ManagerOptions::default()
        }
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Install a metrics/tracing recorder.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Obs::new(recorder);
        self
    }
}

/// Whether a DAG node was registered by a user or synthesized by the
/// common-subexpression detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Registered through [`ViewManager::register_view`].
    User,
    /// Internal shared node (name prefixed `~s`): the bare core
    /// `σ_C(R₁ ⋈ … ⋈ R_p)` two or more sibling views project from. It is
    /// maintained exactly once per transaction; the siblings consume its
    /// delta. Hidden from [`ViewManager::view_names`] and snapshots.
    Shared,
}

pub(crate) struct ManagedView {
    pub(crate) view: MaterializedView,
    /// The definition as registered (shared nodes: the maintained core).
    /// `view.definition()` holds the *effective* plan, which may be a
    /// projection over a shared node instead.
    pub(crate) user_expr: SpjExpr,
    pub(crate) kind: ViewKind,
    pub(crate) policy: RefreshPolicy,
    /// Upstream view operands (deduplicated, operand order). Derived by
    /// [`ViewManager::rebuild_dag`] from the effective expression.
    pub(crate) depends_on: Vec<String>,
    /// Topological level: 0 for base-only nodes, else 1 + max upstream.
    pub(crate) stratum: usize,
    /// Accumulated operand deltas since the last refresh (deferred
    /// policies only), already relevance-filtered; keyed by operand name
    /// (base relation or upstream view).
    pub(crate) pending: BTreeMap<String, DeltaRelation>,
    /// Lazily built relevance filters, one per *base* operand relation.
    pub(crate) filters: HashMap<String, RelevanceFilter>,
    pub(crate) listeners: Vec<ChangeListener>,
    pub(crate) stats: MaintenanceStats,
}

/// How a new registration maps onto the existing DAG (see
/// [`ViewManager::plan_sharing`]).
struct SharingPlan {
    /// The plan actually maintained for the new view.
    effective: SpjExpr,
    /// A shared core node to mint first: (name, core expression,
    /// materialized contents).
    new_node: Option<(String, SpjExpr, Relation)>,
    /// A sibling to retroactively re-hang over the shared core:
    /// (view name, its new effective expression).
    rewrite: Option<(String, SpjExpr)>,
}

/// One node of the view dependency DAG, as reported by
/// [`ViewManager::dag`].
#[derive(Debug, Clone)]
pub struct DagNodeInfo {
    /// Node name (internal shared nodes keep their reserved `~s` names).
    pub name: String,
    /// True for internal shared common-subexpression nodes.
    pub shared: bool,
    /// Topological stratum (0 = defined over base relations only).
    pub stratum: usize,
    /// Refresh policy.
    pub policy: RefreshPolicy,
    /// Upstream view operands.
    pub depends_on: Vec<String>,
    /// Views consuming this node's deltas.
    pub dependents: Vec<String>,
    /// The definition as registered by the user (for shared nodes: the
    /// maintained core expression).
    pub user_expr: SpjExpr,
    /// The effective plan actually maintained (a projection over a shared
    /// node when the core is shared).
    pub effective_expr: SpjExpr,
    /// Current materialized cardinality (distinct tuples).
    pub rows: usize,
    /// Cumulative maintenance statistics, including last-run figures.
    pub stats: MaintenanceStats,
}

/// A general-algebra view maintained by
/// [`crate::differential::tree_delta`] (always immediate, no relevance
/// filtering — there is no SPJ normal form to analyze).
pub(crate) struct ManagedTreeView {
    pub(crate) view: crate::differential::MaterializedExpr,
    pub(crate) base_relations: Vec<String>,
    pub(crate) listeners: Vec<ChangeListener>,
    pub(crate) stats: MaintenanceStats,
}

/// A database plus its registered, automatically maintained views.
pub struct ViewManager {
    pub(crate) db: Database,
    pub(crate) views: BTreeMap<String, ManagedView>,
    pub(crate) tree_views: BTreeMap<String, ManagedTreeView>,
    /// Topological strata of the SPJ-view DAG (stratum 0 first; names in
    /// key order within a stratum). Rebuilt on every registration and
    /// after recovery by [`ViewManager::rebuild_dag`].
    pub(crate) strata: Vec<Vec<String>>,
    /// Reverse dependency edges: node name → views consuming its delta.
    pub(crate) dependents: BTreeMap<String, Vec<String>>,
    pub(crate) options: DiffOptions,
    pub(crate) strategy: MaintenanceStrategy,
    pub(crate) filtering_enabled: bool,
    /// Metrics/tracing handle; the disabled handle (default) makes every
    /// emission site a single `Option` check.
    pub(crate) obs: Obs,
    /// Durable-state machinery (`None` for the default, purely in-memory
    /// manager). Installed by [`ViewManager::open`].
    pub(crate) durability: Option<Box<crate::durability::DurabilityState>>,
    /// Fault-injection plan evaluated at the commit-critical points of
    /// [`ViewManager::execute`] and [`ViewManager::checkpoint`] (`None` —
    /// the default — skips every check). Installed by tests and the
    /// deterministic simulator via [`ViewManager::set_failpoints`].
    pub(crate) failpoints: Option<Arc<ivm_storage::FailpointPlan>>,
    /// Snapshot publication hub for concurrent readers (see
    /// [`crate::snapshot`]). Dormant — one atomic load per commit — until
    /// [`ViewManager::snapshots`] arms it.
    pub(crate) snapshots: crate::snapshot::SnapshotHub,
}

/// Evaluate one named failpoint against an optional plan. On trigger, any
/// file-corruption action is applied to the WAL (when one exists) and an
/// [`ivm_storage::StorageError::Injected`] error is returned: the caller
/// aborts mid-operation exactly as if the process had died there, and the
/// manager must be discarded and re-opened. A free function (not a
/// method) so call sites inside `checkpoint()` can evaluate it while the
/// durability state is mutably borrowed.
pub(crate) fn fire_failpoint(
    plan: &Option<Arc<ivm_storage::FailpointPlan>>,
    name: &'static str,
    wal_path: Option<&std::path::Path>,
) -> Result<()> {
    let Some(plan) = plan else { return Ok(()) };
    let Some(action) = plan.hit(name) else {
        return Ok(());
    };
    if let (ivm_storage::FailpointAction::CorruptAndCrash(spec), Some(path)) = (action, wal_path) {
        ivm_storage::fault::corrupt(path, spec)?;
    }
    Err(ivm_storage::StorageError::Injected(name.to_owned()).into())
}

impl ViewManager {
    /// A manager over an empty database with default engine options
    /// (maintenance threads default to one worker per available core).
    pub fn new() -> Self {
        ViewManager {
            db: Database::new(),
            views: BTreeMap::new(),
            tree_views: BTreeMap::new(),
            strata: Vec::new(),
            dependents: BTreeMap::new(),
            options: DiffOptions {
                threads: 0,
                ..DiffOptions::default()
            },
            strategy: MaintenanceStrategy::default(),
            filtering_enabled: true,
            obs: Obs::disabled(),
            durability: None,
            failpoints: None,
            snapshots: crate::snapshot::SnapshotHub::new(),
        }
    }

    /// Override the differential-engine options.
    pub fn with_options(mut self, options: DiffOptions) -> Self {
        self.options = options;
        self
    }

    /// Apply a full [`ManagerOptions`] bundle.
    pub fn with_manager_options(mut self, opts: ManagerOptions) -> Self {
        self.options = DiffOptions {
            threads: opts.threads,
            ..opts.diff
        };
        self.strategy = opts.strategy;
        self.filtering_enabled = opts.filtering;
        self.obs = opts.recorder;
        self
    }

    /// Install a metrics/tracing recorder (see `docs/OBSERVABILITY.md`
    /// for the emitted metric catalog).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.obs = Obs::new(recorder);
        self
    }

    /// The manager's metrics handle (disabled unless a recorder was
    /// installed).
    pub fn observability(&self) -> &Obs {
        &self.obs
    }

    /// The snapshot-publication hub for concurrent readers (see
    /// [`crate::snapshot`]). The first call arms publication and pushes
    /// the current state; from then on every commit —
    /// [`ViewManager::execute`], [`ViewManager::refresh`], view
    /// registration — publishes a new immutable [`crate::snapshot::ViewSnapshot`]
    /// atomically. Clone the hub (or call
    /// [`crate::snapshot::SnapshotHub::reader`]) from as many threads as
    /// needed; readers never block maintenance.
    pub fn snapshots(&self) -> crate::snapshot::SnapshotHub {
        if !self.snapshots.is_armed() {
            self.snapshots.arm();
            self.publish_snapshot(|_| true);
        }
        self.snapshots.clone()
    }

    /// Publish the committed state of every registered view (no-op while
    /// the hub is unarmed). `changed` marks views whose contents differ
    /// from the previous publication; the rest share allocations with it.
    fn publish_snapshot(&self, changed: impl Fn(&str) -> bool) {
        if !self.snapshots.is_armed() {
            return;
        }
        let views = self
            .views
            .iter()
            .filter(|(_, mv)| mv.kind == ViewKind::User)
            .map(|(n, mv)| (n.as_str(), mv.view.contents()))
            .chain(
                self.tree_views
                    .iter()
                    .map(|(n, tv)| (n.as_str(), tv.view.contents())),
            );
        self.snapshots.publish(views, changed);
    }

    /// Install a fault-injection plan (see [`ivm_storage::FailpointPlan`]).
    /// When an armed failpoint triggers during [`ViewManager::execute`] or
    /// [`ViewManager::checkpoint`], the call returns
    /// [`ivm_storage::StorageError::Injected`] and this manager must be
    /// treated as crashed: discard it and re-open the storage directory.
    pub fn set_failpoints(&mut self, plan: Arc<ivm_storage::FailpointPlan>) {
        self.failpoints = Some(plan);
    }

    /// Builder form of [`ViewManager::set_failpoints`].
    pub fn with_failpoints(mut self, plan: Arc<ivm_storage::FailpointPlan>) -> Self {
        self.failpoints = Some(plan);
        self
    }

    /// Override only the maintenance worker thread count (`0` = available
    /// cores, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Override the maintenance strategy for immediate views.
    pub fn with_strategy(mut self, strategy: MaintenanceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Disable the §4 relevance filter (ablation: differential maintenance
    /// runs on every update).
    pub fn with_filtering(mut self, enabled: bool) -> Self {
        self.filtering_enabled = enabled;
        self
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Create a base relation. Durable managers log the DDL so recovery
    /// can rebuild relations created after the last checkpoint.
    pub fn create_relation(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.views.contains_key(&name) || self.tree_views.contains_key(&name) {
            // Views and relations share the operand namespace now that
            // views can be stacked; a collision would make every later
            // operand reference ambiguous.
            return Err(IvmError::UnsupportedView(format!(
                "relation name {name} collides with a registered view"
            )));
        }
        if self.durability.is_some() {
            if self.db.contains_relation(&name) {
                return Err(ivm_relational::error::RelError::DuplicateRelation(name).into());
            }
            self.log_record(ivm_storage::WalRecord::CreateRelation {
                name: name.clone(),
                schema: schema.clone(),
            })?;
        }
        self.db.create(name, schema)?;
        Ok(())
    }

    /// Bulk-load rows. Routed through a transaction so registered views
    /// stay consistent.
    pub fn load<T: Into<Tuple>>(
        &mut self,
        relation: &str,
        rows: impl IntoIterator<Item = T>,
    ) -> Result<()> {
        let mut txn = Transaction::new();
        txn.insert_all(relation, rows)?;
        self.execute(&txn)?;
        Ok(())
    }

    /// Register and materialize a view. Operands may be base relations
    /// *or previously registered SPJ views* — registrations form a
    /// dependency DAG (acyclic by construction: operands must already
    /// exist and definitions are immutable; self-reference is rejected
    /// here, and `ivm-lint`'s Frontend B additionally cycle-checks whole
    /// definition sets ahead of registration). View operands must be
    /// [`RefreshPolicy::Immediate`] so their deltas are available within
    /// the registering transaction; the stacked view itself may use any
    /// policy.
    ///
    /// Sibling views sharing the same core `σ_C(R₁ ⋈ … ⋈ R_p)` (same
    /// operand order, same condition) and differing only in their final
    /// projection are rewritten over a single shared node that is
    /// maintained once per transaction (see `docs/PIPELINES.md`).
    ///
    /// Join-key hash indexes are derived from the equijoin structure of
    /// the maintained core and built on the base operands; the indexes
    /// are maintained inside every subsequent base-table apply and probed
    /// by the differential engines.
    pub fn register_view(
        &mut self,
        name: impl Into<String>,
        expr: SpjExpr,
        policy: RefreshPolicy,
    ) -> Result<()> {
        let name = name.into();
        if name.starts_with(SHARED_PREFIX) {
            return Err(IvmError::UnsupportedView(format!(
                "view names starting with {SHARED_PREFIX:?} are reserved for internal shared nodes"
            )));
        }
        if self.views.contains_key(&name) || self.tree_views.contains_key(&name) {
            return Err(IvmError::DuplicateView(name));
        }
        if self.db.contains_relation(&name) {
            return Err(IvmError::UnsupportedView(format!(
                "view name {name} collides with a base relation"
            )));
        }
        if expr.relations.is_empty() {
            return Err(IvmError::UnsupportedView(
                "an SPJ view needs at least one operand relation".into(),
            ));
        }
        // Operand classification: each operand must be a base relation or
        // an already-registered immediate SPJ view.
        for op in &expr.relations {
            if *op == name {
                return Err(IvmError::UnsupportedView(format!(
                    "view {name} cannot reference itself"
                )));
            }
            if self.db.contains_relation(op) {
                continue;
            }
            if self.tree_views.contains_key(op) {
                return Err(IvmError::UnsupportedView(format!(
                    "operand {op} is a tree view; only base relations and SPJ views can be stacked"
                )));
            }
            match self.views.get(op) {
                Some(up) if up.policy == RefreshPolicy::Immediate => {}
                Some(_) => {
                    return Err(IvmError::UnsupportedView(format!(
                        "view operand {op} must be an immediate view (a deferred operand \
                         would feed stale deltas downstream)"
                    )))
                }
                None => {
                    return Err(ivm_relational::error::RelError::UnknownRelation(op.clone()).into())
                }
            }
        }
        // Validate the user expression against resolved operand schemes.
        let op_schemas = expr
            .relations
            .iter()
            .map(|op| self.operand_schema(op))
            .collect::<Result<Vec<Schema>>>()?;
        {
            let refs: Vec<&Schema> = op_schemas.iter().collect();
            expr.validate_with(&refs)?;
        }
        // Common-subexpression sharing (syntactic core match), then
        // materialize the effective plan. All fallible work happens
        // before the WAL record so a failed registration leaves no trace.
        let plan = self.plan_sharing(&name, &expr)?;
        let contents = {
            let mut inputs: Vec<&Relation> = Vec::with_capacity(plan.effective.arity());
            for op in &plan.effective.relations {
                match &plan.new_node {
                    Some((node_name, _, data)) if node_name == op => inputs.push(data),
                    _ => inputs.push(self.operand_contents(op)?),
                }
            }
            plan.effective.eval_with(&inputs)?
        };
        let def = ViewDefinition::new(name.clone(), plan.effective.clone())?;
        let node_parts = match plan.new_node {
            Some((node_name, core, data)) => {
                let node_def = ViewDefinition::new(node_name.clone(), core.clone())?;
                Some((node_name, core, data, node_def))
            }
            None => None,
        };
        let rewrite_parts = match plan.rewrite {
            Some((partner, new_expr)) => {
                let rdef = ViewDefinition::new(partner.clone(), new_expr)?;
                Some((partner, rdef))
            }
            None => None,
        };
        // Index the equijoin structure of the core actually maintained
        // (the shared node when one is created, the effective plan
        // otherwise); only base operands get indexes.
        let indexed_expr = node_parts
            .as_ref()
            .map(|(_, core, _, _)| core.clone())
            .unwrap_or_else(|| plan.effective.clone());
        let built = self.derive_indexes_for(&indexed_expr)?;
        if built > 0 {
            self.obs.add(names::INDEX_BUILDS, built as u64);
        }
        if self.durability.is_some() {
            // The *user* expression is logged; replay re-derives the
            // sharing plan deterministically from the rebuilt registry.
            self.log_record(ivm_storage::WalRecord::RegisterView {
                name: name.clone(),
                expr: expr.clone(),
                policy: crate::durability::policy_to_u8(policy),
            })?;
        }
        // Commit point: everything below is infallible.
        if let Some((node_name, core, data, node_def)) = node_parts {
            self.views.insert(
                node_name,
                ManagedView {
                    view: MaterializedView::from_saved(node_def, data),
                    user_expr: core,
                    kind: ViewKind::Shared,
                    policy: RefreshPolicy::Immediate,
                    depends_on: Vec::new(),
                    stratum: 0,
                    pending: BTreeMap::new(),
                    filters: HashMap::new(),
                    listeners: Vec::new(),
                    stats: MaintenanceStats::default(),
                },
            );
        }
        if let Some((partner, rdef)) = rewrite_parts {
            let p = self
                .views
                .get_mut(&partner)
                .expect("rewrite partner exists");
            p.view.redefine(rdef);
            // Plan changed: relevance filters belong to the old plan.
            p.filters.clear();
        }
        self.views.insert(
            name.clone(),
            ManagedView {
                view: MaterializedView::from_saved(def, contents),
                user_expr: expr,
                kind: ViewKind::User,
                policy,
                depends_on: Vec::new(),
                stratum: 0,
                pending: BTreeMap::new(),
                filters: HashMap::new(),
                listeners: Vec::new(),
                stats: MaintenanceStats::default(),
            },
        );
        self.rebuild_dag();
        self.publish_snapshot(|n| n == name);
        Ok(())
    }

    /// The scheme of a base relation or registered SPJ view.
    fn operand_schema(&self, name: &str) -> Result<Schema> {
        if self.db.contains_relation(name) {
            return Ok(self.db.schema(name)?.clone());
        }
        Ok(self.managed(name)?.view.contents().schema().clone())
    }

    /// Resolve operand schemes and ensure join-key indexes on the *base*
    /// operands of `expr` (see [`derive_view_indexes_resolved`]).
    pub(crate) fn derive_indexes_for(&mut self, expr: &SpjExpr) -> Result<usize> {
        let mut schemas = Vec::with_capacity(expr.arity());
        let mut is_base = Vec::with_capacity(expr.arity());
        for op in &expr.relations {
            schemas.push(self.operand_schema(op)?);
            is_base.push(self.db.contains_relation(op));
        }
        derive_view_indexes_resolved(&mut self.db, &expr.relations, &schemas, &is_base)
    }

    /// The current contents of a base relation or registered SPJ view.
    fn operand_contents(&self, name: &str) -> Result<&Relation> {
        if self.db.contains_relation(name) {
            return Ok(self.db.relation(name)?);
        }
        Ok(self.managed(name)?.view.contents())
    }

    /// Evaluate an effective expression against current operand state
    /// (base relations and materialized upstream views).
    fn eval_effective(&self, expr: &SpjExpr) -> Result<Relation> {
        let mut inputs: Vec<&Relation> = Vec::with_capacity(expr.arity());
        for op in &expr.relations {
            inputs.push(self.operand_contents(op)?);
        }
        Ok(expr.eval_with(&inputs)?)
    }

    /// Flattened-oracle evaluation: recursively re-evaluate `expr` from
    /// base relations only, resolving view operands by re-evaluating
    /// *their* definitions from scratch (no materialized view state is
    /// consulted).
    fn eval_scratch(&self, expr: &SpjExpr) -> Result<Relation> {
        let mut owned: Vec<Option<Relation>> = Vec::with_capacity(expr.arity());
        for op in &expr.relations {
            if self.db.contains_relation(op) {
                owned.push(None);
            } else {
                let up = self.managed(op)?;
                owned.push(Some(self.eval_scratch(up.view.definition().expr())?));
            }
        }
        let mut inputs: Vec<&Relation> = Vec::with_capacity(expr.arity());
        for (op, maybe) in expr.relations.iter().zip(&owned) {
            match maybe {
                Some(r) => inputs.push(r),
                None => inputs.push(self.db.relation(op)?),
            }
        }
        Ok(expr.eval_with(&inputs)?)
    }

    /// Decide how a new definition maps onto the existing DAG: reuse an
    /// existing core node, become one, or mint a shared node for a core
    /// two projection-bearing siblings have in common. Deterministic over
    /// the registry state, so WAL replay of user expressions re-derives
    /// the identical plan.
    fn plan_sharing(&self, name: &str, expr: &SpjExpr) -> Result<SharingPlan> {
        let key = expr.core_key();
        // (a) A node whose output *is* this core already exists: hang the
        // new view off it with a bare projection.
        if let Some(node) = self.find_core_node(&key) {
            return Ok(SharingPlan {
                effective: SpjExpr::new([node], Condition::always_true(), expr.projection.clone()),
                new_node: None,
                rewrite: None,
            });
        }
        // No partner: the definition stands alone (for now).
        let Some(partner) = self.find_share_partner(&key) else {
            return Ok(SharingPlan {
                effective: expr.clone(),
                new_node: None,
                rewrite: None,
            });
        };
        let partner_proj = self.views[&partner]
            .user_expr
            .projection
            .clone()
            .expect("share partner carries a projection");
        // (b) The new view exposes the bare core itself: register it
        // as-is and retroactively re-hang the partner off it.
        if expr.projection.is_none() {
            return Ok(SharingPlan {
                effective: expr.clone(),
                new_node: None,
                rewrite: Some((
                    partner,
                    SpjExpr::new([name], Condition::always_true(), Some(partner_proj)),
                )),
            });
        }
        // (c) Both siblings project: materialize the core once as an
        // internal shared node and project both off it. The node name is
        // a deterministic sequence number (shared nodes are never
        // removed, so the count is stable across recovery rebuilds).
        let seq = self
            .views
            .keys()
            .filter(|n| n.starts_with(SHARED_PREFIX))
            .count();
        let node_name = format!("{SHARED_PREFIX}{seq}");
        let core = expr.core();
        let contents = self.eval_effective(&core)?;
        Ok(SharingPlan {
            effective: SpjExpr::new(
                [node_name.clone()],
                Condition::always_true(),
                expr.projection.clone(),
            ),
            new_node: Some((node_name.clone(), core, contents)),
            rewrite: Some((
                partner,
                SpjExpr::new([node_name], Condition::always_true(), Some(partner_proj)),
            )),
        })
    }

    /// An existing node whose *output* is exactly the core `key`: an
    /// internal shared node, or an immediate projection-less user view
    /// still on its original plan. At most one such node can exist (a
    /// second candidate would have been rewritten over the first at its
    /// own registration), so the first match is canonical.
    fn find_core_node(&self, key: &str) -> Option<String> {
        for (n, mv) in &self.views {
            let effective = mv.view.definition().expr();
            let eligible = effective.projection.is_none()
                && mv.policy == RefreshPolicy::Immediate
                && (mv.kind == ViewKind::Shared || mv.user_expr == *effective);
            if eligible && effective.core_key() == key {
                return Some(n.clone());
            }
        }
        None
    }

    /// An immediate user view differing from the core `key` only by its
    /// final projection and still on its original plan — the candidate
    /// for a retroactive rewrite onto a shared node. First key-order
    /// match wins (deterministic).
    fn find_share_partner(&self, key: &str) -> Option<String> {
        for (n, mv) in &self.views {
            if mv.kind == ViewKind::User
                && mv.policy == RefreshPolicy::Immediate
                && mv.user_expr.projection.is_some()
                && mv.user_expr == *mv.view.definition().expr()
                && mv.user_expr.core_key() == key
            {
                return Some(n.clone());
            }
        }
        None
    }

    /// Recompute `depends_on`/`stratum` for every SPJ node and the
    /// manager's stratum list + reverse edges from the effective
    /// expressions. Called after every registration and after recovery
    /// restores the registry.
    pub(crate) fn rebuild_dag(&mut self) {
        let names: Vec<String> = self.views.keys().cloned().collect();
        let mut depends: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for name in &names {
            let expr = self.views[name].view.definition().expr();
            let mut ups: Vec<String> = Vec::new();
            for op in &expr.relations {
                if self.views.contains_key(op) && !ups.contains(op) {
                    ups.push(op.clone());
                }
            }
            depends.insert(name.clone(), ups);
        }
        // stratum(v) = 0 if base-only, else 1 + max(stratum(upstream)).
        // The registry is acyclic by construction, so the fixpoint
        // terminates; the pass cap is a belt-and-braces guard.
        let mut stratum: BTreeMap<&str, usize> = names.iter().map(|n| (n.as_str(), 0)).collect();
        for _ in 0..=names.len() {
            let mut changed = false;
            for name in &names {
                let want = depends[name]
                    .iter()
                    .map(|u| stratum.get(u.as_str()).copied().unwrap_or(0) + 1)
                    .max()
                    .unwrap_or(0);
                if stratum[name.as_str()] != want {
                    stratum.insert(name, want);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let top = stratum.values().copied().max().unwrap_or(0);
        let mut strata: Vec<Vec<String>> = vec![Vec::new(); top + 1];
        for name in &names {
            // ivm-lint: allow(no-unchecked-index) — strata has top+1 levels and every stratum value is ≤ top
            strata[stratum[name.as_str()]].push(name.clone());
        }
        let mut dependents: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (name, ups) in &depends {
            for up in ups {
                dependents.entry(up.clone()).or_default().push(name.clone());
            }
        }
        for name in &names {
            let s = stratum[name.as_str()];
            let ups = depends.remove(name).unwrap_or_default();
            let mv = self.views.get_mut(name).expect("view exists");
            mv.stratum = s;
            mv.depends_on = ups;
        }
        self.strata = strata;
        self.dependents = dependents;
    }

    /// The view dependency DAG in topological order (stratum-major, name
    /// order within a stratum), including internal shared nodes.
    pub fn dag(&self) -> Vec<DagNodeInfo> {
        let mut out = Vec::new();
        for stratum in &self.strata {
            for name in stratum {
                let mv = &self.views[name];
                out.push(DagNodeInfo {
                    name: name.clone(),
                    shared: mv.kind == ViewKind::Shared,
                    stratum: mv.stratum,
                    policy: mv.policy,
                    depends_on: mv.depends_on.clone(),
                    dependents: self.dependents.get(name).cloned().unwrap_or_default(),
                    user_expr: mv.user_expr.clone(),
                    effective_expr: mv.view.definition().expr().clone(),
                    rows: mv.view.contents().len(),
                    stats: mv.stats,
                });
            }
        }
        out
    }

    /// Register a general-algebra view (any [`Expr`] tree, including ∪
    /// and −), maintained immediately via the recursive delta rules of
    /// [`crate::differential::tree_delta`]. Tree views do not go through
    /// the relevance filter.
    pub fn register_tree_view(&mut self, name: impl Into<String>, expr: Expr) -> Result<()> {
        let name = name.into();
        if self.views.contains_key(&name) || self.tree_views.contains_key(&name) {
            return Err(IvmError::DuplicateView(name));
        }
        let base_relations = expr.base_relations();
        let view = crate::differential::MaterializedExpr::materialize(expr, &self.db)?;
        if self.durability.is_some() {
            self.log_record(ivm_storage::WalRecord::RegisterTreeView {
                name: name.clone(),
                expr: view.expr().clone(),
            })?;
        }
        self.tree_views.insert(
            name.clone(),
            ManagedTreeView {
                view,
                base_relations,
                listeners: Vec::new(),
                stats: MaintenanceStats::default(),
            },
        );
        self.publish_snapshot(|n| n == name);
        Ok(())
    }

    /// Subscribe an alerter to a view's changes.
    pub fn on_change(&mut self, view: &str, listener: ChangeListener) -> Result<()> {
        if let Some(tv) = self.tree_views.get_mut(view) {
            tv.listeners.push(listener);
            return Ok(());
        }
        self.managed_mut(view)?.listeners.push(listener);
        Ok(())
    }

    fn managed(&self, name: &str) -> Result<&ManagedView> {
        self.views
            .get(name)
            .ok_or_else(|| IvmError::UnknownView(name.to_owned()))
    }

    fn managed_mut(&mut self, name: &str) -> Result<&mut ManagedView> {
        self.views
            .get_mut(name)
            .ok_or_else(|| IvmError::UnknownView(name.to_owned()))
    }

    /// Current contents of a view *without* refreshing (deferred views may
    /// be stale).
    pub fn view_contents(&self, name: &str) -> Result<&Relation> {
        if let Some(tv) = self.tree_views.get(name) {
            return Ok(tv.view.contents());
        }
        Ok(self.managed(name)?.view.contents())
    }

    /// Maintenance statistics for a view.
    pub fn stats(&self, name: &str) -> Result<MaintenanceStats> {
        if let Some(tv) = self.tree_views.get(name) {
            return Ok(tv.stats);
        }
        Ok(self.managed(name)?.stats)
    }

    /// The defining expression of a registered view, as the user wrote it
    /// (sharing rewrites are plan-internal; see [`ViewManager::dag`] for
    /// the effective plans).
    pub fn view_expr(&self, name: &str) -> Result<SpjExpr> {
        Ok(self.managed(name)?.user_expr.clone())
    }

    /// The refresh policy of a registered (SPJ) view.
    pub fn view_policy(&self, name: &str) -> Result<RefreshPolicy> {
        Ok(self.managed(name)?.policy)
    }

    /// Names of registered views (internal shared nodes are hidden; they
    /// appear in [`ViewManager::dag`]).
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views
            .iter()
            .filter(|(_, mv)| mv.kind == ViewKind::User)
            .map(|(n, _)| n.as_str())
            .chain(self.tree_views.keys().map(String::as_str))
    }

    /// True when a transaction (or a delta emitted upstream this
    /// transaction) touches one of the node's operands.
    fn node_touched(
        mv: &ManagedView,
        txn: &Transaction,
        emitted: &HashMap<String, DeltaRelation>,
    ) -> bool {
        mv.view.definition().expr().relations.iter().any(|op| {
            txn.touched().contains(&op.as_str())
                || emitted.get(op.as_str()).is_some_and(|d| !d.is_empty())
        })
    }

    /// Execute a transaction: validate, maintain immediate views, apply to
    /// the base relations, and queue changes for deferred views.
    ///
    /// Durable managers follow the *log before apply* discipline: once the
    /// transaction validates, a WAL record is appended and synced before
    /// any in-memory state changes. A crash after the sync point replays
    /// the transaction on recovery; a crash before it loses only work that
    /// was never acknowledged.
    ///
    /// Returns a [`MaintenanceReport`] describing the work done for this
    /// transaction. With a recorder installed
    /// ([`ManagerOptions::with_recorder`]) the same numbers are also
    /// emitted as `manager.*`, `filter.*` and `diff.*` metrics under an
    /// `execute` span tree (`execute/log`, `execute/filter`,
    /// `execute/differentiate`, `execute/apply`).
    ///
    /// ```
    /// use ivm::prelude::*;
    ///
    /// let mut m = ViewManager::new();
    /// m.create_relation("R", Schema::new(["A"]).unwrap()).unwrap();
    /// m.register_view(
    ///     "v",
    ///     SpjExpr::new(["R"], Atom::lt_const("A", 10).into(), None),
    ///     RefreshPolicy::Immediate,
    /// )
    /// .unwrap();
    /// let mut txn = Transaction::new();
    /// txn.insert("R", [1]).unwrap();
    /// let report = m.execute(&txn).unwrap();
    /// assert_eq!(report.views_maintained, 1);
    /// assert!(report.rows_evaluated >= 1);
    /// ```
    pub fn execute(&mut self, txn: &Transaction) -> Result<MaintenanceReport> {
        let obs = self.obs.clone();
        let _execute_span = obs.span(names::SPAN_EXECUTE);
        obs.add(names::MANAGER_TRANSACTIONS, 1);
        let mut report = MaintenanceReport::default();
        self.db.validate(txn)?;
        if self.durability.is_some() && !txn.is_empty() {
            let _log_span = obs.span(names::SPAN_LOG);
            let wal_path = self.durability.as_deref().map(|s| s.wal_path().to_owned());
            fire_failpoint(
                &self.failpoints,
                ivm_storage::fault::FP_WAL_BEFORE_APPEND,
                wal_path.as_deref(),
            )?;
            self.log_txn(txn)?;
            // The record is synced: this is the commit point. A crash here
            // loses no acknowledged work — recovery replays the record.
            fire_failpoint(
                &self.failpoints,
                ivm_storage::fault::FP_WAL_AFTER_APPEND,
                wal_path.as_deref(),
            )?;
        }
        // Phase 1: stratified delta computation against the
        // pre-transaction state, bottom-up over the dependency DAG. Each
        // maintained node's delta (`emitted`) becomes the input delta of
        // its dependents in the next strata — topological delta flow.
        // `deltas` records apply order; `true` marks a node scheduled for
        // full re-evaluation after the base update (strategy decision).
        let mut deltas: Vec<(String, bool)> = Vec::new();
        let mut emitted: HashMap<String, DeltaRelation> = HashMap::new();
        let mut nodes_maintained: u64 = 0;
        let threads = self.options.resolved_threads();
        let strata = self.strata.clone();
        for stratum in &strata {
            let touched: Vec<String> = stratum
                .iter()
                .filter(|n| Self::node_touched(&self.views[n.as_str()], txn, &emitted))
                .cloned()
                .collect();
            if touched.is_empty() {
                continue;
            }
            if obs.enabled() {
                obs.observe(names::DAG_STRATUM_WIDTH, touched.len() as u64);
            }
            // Nodes within one stratum are independent (their operands
            // live strictly below): fan out over the pool when the
            // stratum is wide enough, otherwise stay on the sequential
            // path (which also emits the per-node filter/differentiate
            // spans).
            let outcomes: Vec<NodeOutcome> = if touched.len() >= 2 && threads > 1 {
                let pool = ivm_parallel::Pool::new(threads);
                let db = &self.db;
                let views = &self.views;
                let dependents = &self.dependents;
                let options = &self.options;
                let strategy = self.strategy;
                let filtering = self.filtering_enabled;
                let emitted_ref = &emitted;
                let obs_ref = &obs;
                pool.try_map(&touched, |name: &String| {
                    let mv = &views[name.as_str()];
                    let deps = dependents.get(name).is_some_and(|d| !d.is_empty());
                    compute_node_outcome(
                        db,
                        views,
                        mv,
                        txn,
                        emitted_ref,
                        options,
                        strategy,
                        filtering,
                        deps,
                        obs_ref,
                        false,
                    )
                })?
            } else {
                let mut out = Vec::with_capacity(touched.len());
                for name in &touched {
                    let mv = &self.views[name.as_str()];
                    let deps = self.dependents.get(name).is_some_and(|d| !d.is_empty());
                    out.push(compute_node_outcome(
                        &self.db,
                        &self.views,
                        mv,
                        txn,
                        &emitted,
                        &self.options,
                        self.strategy,
                        self.filtering_enabled,
                        deps,
                        &obs,
                        true,
                    )?);
                }
                out
            };
            // Apply outcomes sequentially in stratum order: stats,
            // metrics and the emitted-delta map stay deterministic at
            // every thread count.
            for (name, outcome) in touched.iter().zip(outcomes) {
                let mv = self.views.get_mut(name).expect("view exists");
                mv.stats.transactions_seen += 1;
                report.views_touched += 1;
                for (op, f) in outcome.new_filters {
                    mv.filters.insert(op, f);
                }
                mv.stats.filter += outcome.fstats;
                report.filter += outcome.fstats;
                if outcome.shared_hits > 0 {
                    report.shared_hits += outcome.shared_hits;
                    obs.add(names::DAG_SHARED_HITS, outcome.shared_hits as u64);
                }
                match outcome.action {
                    NodeAction::Skipped => {
                        mv.stats.skipped_by_filter += 1;
                        report.views_skipped += 1;
                        obs.add(names::MANAGER_SKIPPED_BY_FILTER, 1);
                    }
                    NodeAction::Deferred(adds) => {
                        report.views_deferred += 1;
                        for (op, d) in adds {
                            match mv.pending.get_mut(&op) {
                                Some(acc) => acc.merge(&d)?,
                                None => {
                                    mv.pending.insert(op, d);
                                }
                            }
                        }
                    }
                    NodeAction::FullRecompute => {
                        mv.stats.full_recomputes += 1;
                        report.full_recomputes += 1;
                        obs.add(names::MANAGER_FULL_RECOMPUTES, 1);
                        nodes_maintained += 1;
                        deltas.push((name.clone(), true));
                    }
                    NodeAction::Maintained(result) => {
                        mv.stats.maintenance_runs += 1;
                        mv.stats.diff += result.stats;
                        mv.stats.last_rows_evaluated = result.stats.rows_evaluated;
                        mv.stats.last_delta_tuples = result.delta.len();
                        report.views_maintained += 1;
                        report.diff += result.stats;
                        obs.add(names::MANAGER_MAINTENANCE_RUNS, 1);
                        nodes_maintained += 1;
                        emitted.insert(name.clone(), result.delta);
                        deltas.push((name.clone(), false));
                    }
                }
            }
        }
        if nodes_maintained > 0 {
            obs.add(names::DAG_NODES_MAINTAINED, nodes_maintained);
        }
        // Phase 1b: tree views (always immediate; read-only against the
        // pre-transaction state).
        let mut tree_deltas: Vec<(String, DeltaRelation)> = Vec::new();
        for (name, tv) in &mut self.tree_views {
            let touches = txn
                .touched()
                .iter()
                .any(|r| tv.base_relations.iter().any(|b| b == r));
            if !touches {
                continue;
            }
            tv.stats.transactions_seen += 1;
            report.views_touched += 1;
            let delta = {
                let _diff_span = obs.span(names::SPAN_DIFFERENTIATE);
                crate::differential::tree_delta(tv.view.expr(), &self.db, txn)?
            };
            tv.stats.maintenance_runs += 1;
            report.views_maintained += 1;
            obs.add(names::MANAGER_MAINTENANCE_RUNS, 1);
            tree_deltas.push((name.clone(), delta));
        }
        // Views whose materialized contents phase 3 will change; the
        // post-commit publication reuses allocations for the rest.
        let mut dirty: std::collections::BTreeSet<String> = deltas
            .iter()
            .filter(|(n, full)| *full || emitted.get(n).is_some_and(|d| !d.is_empty()))
            .map(|(n, _)| n.clone())
            .collect();
        dirty.extend(
            tree_deltas
                .iter()
                .filter(|(_, d)| !d.is_empty())
                .map(|(n, _)| n.clone()),
        );
        let _apply_span = obs.span(names::SPAN_APPLY);
        // Phase 2: apply to base relations (join indexes are maintained
        // inside each relation's insert/remove).
        self.db.apply(txn)?;
        if obs.enabled() {
            for rel in txn.touched() {
                let r = self.db.relation(rel)?;
                let n = r.index_count() as u64;
                if n == 0 {
                    continue;
                }
                let changed = (txn.inserted(rel).count() + txn.deleted(rel).count()) as u64;
                obs.add(names::INDEX_MAINTENANCE_ROWS, changed * n);
                obs.observe(names::INDEX_MEMORY_BYTES, r.index_memory_bytes());
            }
        }
        // Base relations updated, view deltas not yet applied: the most
        // inconsistent instant of the whole operation. A crash here must
        // recover to a fully consistent post-transaction state (the WAL
        // record is already durable).
        fire_failpoint(
            &self.failpoints,
            ivm_storage::fault::FP_APPLY_MID,
            self.durability.as_deref().map(|s| s.wal_path()),
        )?;
        // Phase 3: apply view deltas (or full recomputations) and notify
        // listeners. `deltas` is in strata order, so a full re-evaluation
        // of a stacked node sees its upstream views already up to date.
        for (name, full) in deltas {
            let delta = if full {
                // Full re-evaluation against the new state (operands
                // resolve to updated base relations and upstream views);
                // the delta is still derived so listeners see a change
                // stream. Only dependent-free nodes take this path —
                // nodes with dependents are pinned to differential
                // maintenance because their delta feeds downstream.
                let expr = self.views[&name].view.definition().expr().clone();
                let new_contents = self.eval_effective(&expr)?;
                let mv = self.views.get_mut(&name).expect("view exists");
                let mut d = new_contents.to_delta();
                for (t, c) in mv.view.contents().iter() {
                    d.add(t.clone(), -crate::differential::spj::signed_count(c)?);
                }
                mv.view.replace(new_contents);
                mv.stats.last_delta_tuples = d.len();
                d
            } else {
                let d = emitted.remove(&name).expect("delta emitted in phase 1");
                let mv = self.views.get_mut(&name).expect("view exists");
                mv.view.apply(&d)?;
                d
            };
            if !delta.is_empty() {
                let mv = &self.views[&name];
                for l in &mv.listeners {
                    l(&name, &delta);
                }
            }
        }
        for (name, delta) in tree_deltas {
            let tv = self.tree_views.get_mut(&name).expect("tree view exists");
            tv.view.apply(&delta)?;
            if !delta.is_empty() {
                for l in &tv.listeners {
                    l(&name, &delta);
                }
            }
        }
        drop(_apply_span); // a threshold checkpoint is not part of `apply`
                           // The transaction is committed and every view delta applied: this
                           // is the atomic publication point for concurrent readers. A crash
                           // or error anywhere above leaves the previous snapshot current,
                           // so readers never observe a half-applied transaction.
        self.publish_snapshot(|n| dirty.contains(n));
        self.maybe_checkpoint()?;
        report.rows_evaluated = report.diff.rows_evaluated;
        Ok(report)
    }

    /// Refresh a deferred/on-demand view by folding in its accumulated
    /// changes with one differential pass (snapshot refresh, §6). No-op for
    /// immediate views or when nothing is pending.
    pub fn refresh(&mut self, name: &str) -> Result<()> {
        if self.tree_views.contains_key(name) {
            return Ok(()); // tree views are maintained immediately
        }
        let options = self.options;
        let mv = self.managed_mut(name)?;
        if mv.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut mv.pending);
        // Reconstruct only the *changed* operands as of the last refresh
        // (old = current − pending); untouched operands are borrowed from
        // the live database.
        //
        // Soundness note: `pending` is relevance-filtered, so the
        // reconstructed state differs from the true old state by exactly
        // the irrelevant tuples. By Theorem 4.1 those tuples cannot appear
        // in any view tuple (their substituted condition is unsatisfiable
        // in every state), so V(reconstructed) = V(true old) and the
        // differential below is computed against an equivalent baseline.
        let expr = mv.view.definition().expr().clone();
        let mut reconstructed: HashMap<&str, Relation> = HashMap::new();
        for (operand, delta) in &pending {
            // Operands may be base relations or upstream (immediate)
            // views; either way the current contents minus the queued
            // delta is the state as of the last refresh.
            let mut rel = self.operand_contents(operand)?.clone();
            rel.apply_delta(&delta.negated())?;
            reconstructed.insert(operand.as_str(), rel);
        }
        let mut old: Vec<&Relation> = Vec::with_capacity(expr.arity());
        let mut updates = Vec::with_capacity(expr.arity());
        for operand in &expr.relations {
            match reconstructed.get(operand.as_str()) {
                Some(rel) => {
                    old.push(rel);
                    // Queued view deltas may carry |count| > 1; the
                    // engines are count-linear, so multiplicities flow
                    // through exactly.
                    updates.push(Some(operand_update_from_delta(&pending[operand])?));
                }
                None => {
                    old.push(self.operand_contents(operand)?);
                    updates.push(None);
                }
            }
        }
        let obs = self.obs.clone();
        let result = {
            let _diff_span = obs.span(names::SPAN_DIFFERENTIATE);
            crate::differential::differential_delta_parts_observed(
                &expr, &old, &updates, &options, &obs,
            )?
        };
        obs.add(names::MANAGER_MAINTENANCE_RUNS, 1);
        let mv = self.managed_mut(name)?;
        mv.stats.maintenance_runs += 1;
        mv.stats.diff += result.stats;
        mv.stats.last_rows_evaluated = result.stats.rows_evaluated;
        mv.stats.last_delta_tuples = result.delta.len();
        mv.view.apply(&result.delta)?;
        let changed = !result.delta.is_empty();
        if changed {
            let listeners = mv.listeners.clone();
            let delta = result.delta;
            for l in &listeners {
                l(name, &delta);
            }
            self.publish_snapshot(|n| n == name);
        }
        Ok(())
    }

    /// Query a view: refreshes first for [`RefreshPolicy::OnDemand`]
    /// views, then returns a clone of the contents.
    pub fn query(&mut self, name: &str) -> Result<Relation> {
        if let Some(tv) = self.tree_views.get(name) {
            return Ok(tv.view.contents().clone());
        }
        if self.managed(name)?.policy == RefreshPolicy::OnDemand {
            self.refresh(name)?;
        }
        Ok(self.managed(name)?.view.contents().clone())
    }

    /// Check every view — including internal shared nodes — against a
    /// recursive from-scratch re-evaluation over base relations only (the
    /// flattened oracle; test/debug helper). Deferred views are compared
    /// after an implicit refresh.
    pub fn verify_consistency(&mut self) -> Result<()> {
        let names: Vec<String> = self.views.keys().cloned().collect();
        for name in names {
            self.refresh(&name)?;
            let mv = self.managed(&name)?;
            let expected = self.eval_scratch(mv.view.definition().expr())?;
            if expected != *mv.view.contents() {
                return Err(IvmError::UnsupportedView(format!(
                    "view {name} diverged from full re-evaluation"
                )));
            }
        }
        for (name, tv) in &self.tree_views {
            if !tv.view.consistent_with(&self.db)? {
                return Err(IvmError::UnsupportedView(format!(
                    "tree view {name} diverged from full re-evaluation"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ViewManager {
    fn default() -> Self {
        ViewManager::new()
    }
}

/// Derive join-key index specs from a view's equijoin structure and
/// ensure the indexes exist on the *base* operands (views are not
/// indexed — their deltas arrive pre-joined from upstream maintenance).
///
/// For every operand `X` of the view, the candidate key sets are
///
/// * `attrs(X) ∩ attrs(Y)` for every other operand `Y` — the natural-join
///   key a differential probe uses when `X`'s unchanged portion joins a
///   prefix consisting of `Y`'s substitution, and
/// * `attrs(X) ∩ ⋃_{Y ≠ X} attrs(Y)` — the key against a multi-operand
///   prefix that reaches `X` through several relations at once.
///
/// Empty intersections (cross products) are dropped; duplicate key sets
/// collapse inside [`Database::ensure_index`], which treats keys as
/// column-position sets. A self-join contributes the full scheme as a
/// key, falling out of the pairwise rule. Returns how many indexes were
/// newly built (0 when every candidate already existed).
pub(crate) fn derive_view_indexes_resolved(
    db: &mut Database,
    names: &[String],
    schemas: &[Schema],
    is_base: &[bool],
) -> Result<usize> {
    let mut built = 0;
    for (i, name) in names.iter().enumerate() {
        // ivm-lint: allow(no-unchecked-index) — i indexes the parallel slices the caller built one-per-name
        if !is_base[i] {
            continue;
        }
        let mut candidates: Vec<Vec<AttrName>> = Vec::new();
        for (j, other) in schemas.iter().enumerate() {
            if i == j {
                continue;
            }
            // ivm-lint: allow(no-unchecked-index) — i indexes the parallel slices the caller built one-per-name
            let key = schemas[i].intersection(other);
            if !key.is_empty() {
                candidates.push(key);
            }
        }
        // ivm-lint: allow(no-unchecked-index) — i indexes the parallel slices the caller built one-per-name
        let union_key: Vec<AttrName> = schemas[i]
            .attrs()
            .iter()
            .filter(|a| {
                schemas
                    .iter()
                    .enumerate()
                    .any(|(j, s)| j != i && s.position(a).is_some())
            })
            .cloned()
            .collect();
        if !union_key.is_empty() {
            candidates.push(union_key);
        }
        for key in candidates {
            if db.ensure_index(name, &key)? {
                built += 1;
            }
        }
    }
    Ok(built)
}

/// Outcome of computing one DAG node's maintenance for a transaction,
/// produced against immutable pre-transaction state (so independent
/// nodes of one stratum can fan out over the parallel pool) and applied
/// sequentially in deterministic stratum order afterwards.
struct NodeOutcome {
    fstats: FilterStats,
    /// Relevance filters built during this computation, cached onto the
    /// view when the outcome is applied.
    new_filters: Vec<(String, RelevanceFilter)>,
    /// Upstream deltas consumed from internal shared nodes (one per
    /// distinct shared operand).
    shared_hits: usize,
    action: NodeAction,
}

enum NodeAction {
    /// Touched, but the §4 filter proved every changed tuple irrelevant.
    Skipped,
    /// Differential delta computed (applied in phase 3).
    Maintained(DifferentialResult),
    /// Strategy chose full re-evaluation (runs post-apply in phase 3).
    FullRecompute,
    /// Deferred policy: per-operand deltas to queue for a later refresh.
    Deferred(Vec<(String, DeltaRelation)>),
}

/// Compute what maintaining `mv` for `txn` requires, without mutating
/// anything. Base operands go through the §4 relevance filter; view
/// operands consume the delta their node emitted earlier this
/// transaction (`emitted`). `emit_spans` is false on the parallel path
/// (spans are per-thread and would interleave).
#[allow(clippy::too_many_arguments)]
fn compute_node_outcome(
    db: &Database,
    views: &BTreeMap<String, ManagedView>,
    mv: &ManagedView,
    txn: &Transaction,
    emitted: &HashMap<String, DeltaRelation>,
    options: &DiffOptions,
    strategy: MaintenanceStrategy,
    filtering_enabled: bool,
    has_dependents: bool,
    obs: &Obs,
    emit_spans: bool,
) -> Result<NodeOutcome> {
    let expr = mv.view.definition().expr();
    let threads = options.resolved_threads();
    let mut fstats = FilterStats::default();
    let mut new_filters: Vec<(String, RelevanceFilter)> = Vec::new();
    // Filter each distinct touched *base* operand once; self-joins reuse
    // the filtered sets at every position.
    let mut filtered_base: Vec<(String, Relation, Relation)> = Vec::new();
    {
        let _filter_span = emit_spans.then(|| obs.span(names::SPAN_FILTER));
        for op in &expr.relations {
            if !db.contains_relation(op)
                || filtered_base.iter().any(|(n, _, _)| n == op)
                || !txn.touched().contains(&op.as_str())
            {
                continue;
            }
            let rel = db.relation(op)?;
            let (inserts, deletes) = if !filtering_enabled {
                (
                    txn.insert_set(op, rel.schema())?,
                    txn.delete_set(op, rel.schema())?,
                )
            } else {
                let f = match mv.filters.get(op.as_str()) {
                    Some(f) => {
                        obs.add(names::FILTER_GRAPH_CACHE_HITS, 1);
                        f
                    }
                    None => {
                        let built = RelevanceFilter::new_observed(expr, db, op, obs)?;
                        new_filters.push((op.clone(), built));
                        &new_filters.last().expect("just pushed").1
                    }
                };
                let (kept_ins, ins_stats) = f.filter_with(txn.inserted(op), threads)?;
                let (kept_del, del_stats) = f.filter_with(txn.deleted(op), threads)?;
                fstats += ins_stats;
                fstats += del_stats;
                let mut ins = Relation::empty(rel.schema().clone());
                for t in kept_ins {
                    ins.insert(t, 1)?;
                }
                let mut del = Relation::empty(rel.schema().clone());
                for t in kept_del {
                    del.insert(t, 1)?;
                }
                (ins, del)
            };
            filtered_base.push((op.clone(), inserts, deletes));
        }
    }
    if obs.enabled() {
        obs.add(names::FILTER_TUPLES_CHECKED, fstats.checked as u64);
        obs.add(names::FILTER_TUPLES_ADMITTED, fstats.relevant as u64);
        obs.add(names::FILTER_TUPLES_FILTERED, fstats.irrelevant as u64);
    }
    // Per-position old state and net update, all pre-apply.
    let mut old: Vec<&Relation> = Vec::with_capacity(expr.arity());
    let mut updates: Vec<Option<OperandUpdate>> = Vec::with_capacity(expr.arity());
    let mut shared_hits = 0usize;
    let mut counted_shared: Vec<&str> = Vec::new();
    for op in &expr.relations {
        if db.contains_relation(op) {
            old.push(db.relation(op)?);
            match filtered_base.iter().find(|(n, _, _)| n == op) {
                Some((_, ins, del)) if !(ins.is_empty() && del.is_empty()) => {
                    updates.push(Some(OperandUpdate {
                        inserts: ins.clone(),
                        deletes: del.clone(),
                    }));
                }
                _ => updates.push(None),
            }
        } else {
            let up = views
                .get(op.as_str())
                .ok_or_else(|| IvmError::UnknownView(op.clone()))?;
            old.push(up.view.contents());
            match emitted.get(op.as_str()).filter(|d| !d.is_empty()) {
                Some(d) => {
                    if up.kind == ViewKind::Shared && !counted_shared.contains(&op.as_str()) {
                        counted_shared.push(op.as_str());
                        shared_hits += 1;
                    }
                    updates.push(Some(operand_update_from_delta(d)?));
                }
                None => updates.push(None),
            }
        }
    }
    if !updates.iter().any(Option::is_some) {
        return Ok(NodeOutcome {
            fstats,
            new_filters,
            shared_hits: 0,
            action: NodeAction::Skipped,
        });
    }
    match mv.policy {
        RefreshPolicy::Deferred | RefreshPolicy::OnDemand => {
            // Queue per-operand deltas for a later refresh: filtered base
            // update sets plus upstream view deltas, one entry per
            // distinct operand.
            let mut adds: Vec<(String, DeltaRelation)> = Vec::new();
            for (op, ins, del) in &filtered_base {
                if ins.is_empty() && del.is_empty() {
                    continue;
                }
                let mut d = ins.to_delta();
                for (t, c) in del.iter() {
                    d.add(t.clone(), -crate::differential::spj::signed_count(c)?);
                }
                adds.push((op.clone(), d));
            }
            for op in &expr.relations {
                if db.contains_relation(op) || adds.iter().any(|(n, _)| n == op) {
                    continue;
                }
                if let Some(d) = emitted.get(op.as_str()).filter(|d| !d.is_empty()) {
                    adds.push((op.clone(), d.clone()));
                }
            }
            Ok(NodeOutcome {
                fstats,
                new_filters,
                shared_hits,
                action: NodeAction::Deferred(adds),
            })
        }
        RefreshPolicy::Immediate => {
            let use_full = if has_dependents {
                // Dependents consume this node's delta within the same
                // transaction: differential is mandatory regardless of
                // strategy.
                false
            } else {
                match strategy {
                    MaintenanceStrategy::AlwaysDifferential => false,
                    MaintenanceStrategy::AlwaysFull => true,
                    MaintenanceStrategy::CostBased => {
                        // §6 sizes: view operands price in their upstream
                        // cardinality and delta.
                        let mut sizes = Vec::new();
                        for ((op, update), oldr) in expr.relations.iter().zip(&updates).zip(&old) {
                            let changed = update.as_ref().map_or(0, OperandUpdate::len) as u64;
                            let (old_len, indexed) = if db.contains_relation(op) {
                                let r = db.relation(op)?;
                                (r.len() as u64, r.index_count() > 0)
                            } else {
                                (oldr.len() as u64, false)
                            };
                            sizes.push(crate::cost::OperandSize {
                                old: old_len,
                                changed,
                                indexed,
                            });
                        }
                        !crate::cost::prefer_differential(&sizes)
                    }
                }
            };
            if use_full {
                return Ok(NodeOutcome {
                    fstats,
                    new_filters,
                    shared_hits,
                    action: NodeAction::FullRecompute,
                });
            }
            let result = {
                let _diff_span = emit_spans.then(|| obs.span(names::SPAN_DIFFERENTIATE));
                differential_delta_parts_observed(expr, &old, &updates, options, obs)?
            };
            Ok(NodeOutcome {
                fstats,
                new_filters,
                shared_hits,
                action: NodeAction::Maintained(result),
            })
        }
    }
}

/// Split a counted view delta into the insert/delete relation pair the
/// differential engines consume. View deltas may carry |count| > 1; the
/// engines are count-linear, so multiplicities flow through exactly.
fn operand_update_from_delta(delta: &DeltaRelation) -> Result<OperandUpdate> {
    let schema = delta.schema().clone();
    let (ins, del) = delta.split();
    let mut inserts = Relation::empty(schema.clone());
    for (t, c) in ins {
        inserts.insert(t, c)?;
    }
    let mut deletes = Relation::empty(schema);
    for (t, c) in del {
        deletes.insert(t, c)?;
    }
    Ok(OperandUpdate { inserts, deletes })
}

/// A clonable, thread-safe handle around a [`ViewManager`]
/// (`parking_lot::RwLock`), for concurrent alerter-style consumers.
#[derive(Clone)]
pub struct SharedViewManager {
    inner: Arc<RwLock<ViewManager>>,
}

impl SharedViewManager {
    /// Wrap a manager.
    pub fn new(manager: ViewManager) -> Self {
        SharedViewManager {
            inner: Arc::new(RwLock::new(manager)),
        }
    }

    /// Execute a transaction under the write lock.
    pub fn execute(&self, txn: &Transaction) -> Result<MaintenanceReport> {
        self.inner.write().execute(txn)
    }

    /// Query a view (may refresh on-demand views; takes the write lock).
    pub fn query(&self, name: &str) -> Result<Relation> {
        self.inner.write().query(name)
    }

    /// Read-only access to the manager.
    pub fn read<T>(&self, f: impl FnOnce(&ViewManager) -> T) -> T {
        f(&self.inner.read())
    }

    /// Exclusive access to the manager.
    pub fn write<T>(&self, f: impl FnOnce(&mut ViewManager) -> T) -> T {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_relational::predicate::{Atom, Condition};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn manager_with_data() -> ViewManager {
        let mut m = ViewManager::new();
        m.create_relation("R", Schema::new(["A", "B"]).unwrap())
            .unwrap();
        m.create_relation("S", Schema::new(["B", "C"]).unwrap())
            .unwrap();
        m.load("R", [[1, 10], [2, 20]]).unwrap();
        m.load("S", [[10, 100], [20, 200]]).unwrap();
        m
    }

    fn view_expr() -> SpjExpr {
        SpjExpr::new(
            ["R", "S"],
            Atom::lt_const("A", 10).into(),
            Some(vec!["A".into(), "C".into()]),
        )
    }

    #[test]
    fn immediate_view_tracks_transactions() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        txn.delete("S", [20, 200]).unwrap();
        m.execute(&txn).unwrap();
        m.verify_consistency().unwrap();
        let v = m.view_contents("v").unwrap();
        assert!(v.contains(&Tuple::from([3, 100])));
        assert!(!v.contains(&Tuple::from([2, 200])));
    }

    #[test]
    fn filter_skips_irrelevant_transactions() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        // A = 50 violates A < 10: provably irrelevant.
        let mut txn = Transaction::new();
        txn.insert("R", [50, 10]).unwrap();
        m.execute(&txn).unwrap();
        let s = m.stats("v").unwrap();
        assert_eq!(s.skipped_by_filter, 1);
        assert_eq!(s.maintenance_runs, 0);
        assert_eq!(s.filter.irrelevant, 1);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn failpoint_crash_before_append_loses_transaction() {
        let dir = ivm_storage::temp::scratch_dir("fp-before-append");
        let plan = Arc::new(ivm_storage::FailpointPlan::new());
        {
            let mut m = ViewManager::open(&dir).unwrap();
            m.create_relation("R", Schema::new(["A"]).unwrap()).unwrap();
            m.set_failpoints(Arc::clone(&plan));
            plan.arm(
                ivm_storage::fault::FP_WAL_BEFORE_APPEND,
                0,
                ivm_storage::FailpointAction::Crash,
            );
            let mut txn = Transaction::new();
            txn.insert("R", [1]).unwrap();
            let err = m.execute(&txn).unwrap_err();
            match err {
                crate::error::IvmError::Storage(e) => assert!(e.is_injected()),
                other => panic!("expected injected crash, got {other}"),
            }
        }
        assert!(plan.fired(ivm_storage::fault::FP_WAL_BEFORE_APPEND));
        // The crash hit before the WAL append: the transaction was never
        // acknowledged, so recovery must not resurrect it.
        let m = ViewManager::open(&dir).unwrap();
        assert_eq!(m.database().relation("R").unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failpoint_crash_mid_apply_recovers_transaction() {
        let dir = ivm_storage::temp::scratch_dir("fp-mid-apply");
        let plan = Arc::new(ivm_storage::FailpointPlan::new());
        {
            let mut m = ViewManager::open(&dir).unwrap();
            m.create_relation("R", Schema::new(["A", "B"]).unwrap())
                .unwrap();
            m.create_relation("S", Schema::new(["B", "C"]).unwrap())
                .unwrap();
            m.register_view("v", view_expr(), RefreshPolicy::Immediate)
                .unwrap();
            m.set_failpoints(Arc::clone(&plan));
            plan.arm(
                ivm_storage::fault::FP_APPLY_MID,
                0,
                ivm_storage::FailpointAction::Crash,
            );
            let mut txn = Transaction::new();
            txn.insert("R", [1, 10]).unwrap();
            txn.insert("S", [10, 100]).unwrap();
            let err = m.execute(&txn).unwrap_err();
            assert!(matches!(
                err,
                crate::error::IvmError::Storage(ref e) if e.is_injected()
            ));
        }
        // The crash hit after the WAL sync (the commit point): recovery
        // replays the record and the view catches up differentially.
        let m = ViewManager::open(&dir).unwrap();
        assert!(m
            .database()
            .relation("R")
            .unwrap()
            .contains(&Tuple::from([1, 10])));
        let v = m.view_contents("v").unwrap();
        assert!(v.contains(&Tuple::from([1, 100])));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failpoint_torn_write_after_append_loses_only_last_txn() {
        let dir = ivm_storage::temp::scratch_dir("fp-torn-append");
        let plan = Arc::new(ivm_storage::FailpointPlan::new());
        {
            let mut m = ViewManager::open(&dir).unwrap();
            m.create_relation("R", Schema::new(["A"]).unwrap()).unwrap();
            let mut txn = Transaction::new();
            txn.insert("R", [1]).unwrap();
            m.execute(&txn).unwrap();
            m.set_failpoints(Arc::clone(&plan));
            // Tear the tail of the record we just appended, then crash: the
            // transaction is lost even though the append itself succeeded.
            plan.arm(
                ivm_storage::fault::FP_WAL_AFTER_APPEND,
                0,
                ivm_storage::FailpointAction::CorruptAndCrash(
                    ivm_storage::CorruptSpec::TruncateAt(ivm_storage::FaultPos::FromEnd(3)),
                ),
            );
            let mut txn = Transaction::new();
            txn.insert("R", [2]).unwrap();
            let err = m.execute(&txn).unwrap_err();
            assert!(matches!(
                err,
                crate::error::IvmError::Storage(ref e) if e.is_injected()
            ));
        }
        let m = ViewManager::open(&dir).unwrap();
        let r = m.database().relation("R").unwrap();
        assert!(r.contains(&Tuple::from([1])));
        assert!(!r.contains(&Tuple::from([2])));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filtering_can_be_disabled() {
        let mut m = manager_with_data().with_filtering(false);
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [50, 10]).unwrap();
        m.execute(&txn).unwrap();
        let s = m.stats("v").unwrap();
        assert_eq!(s.skipped_by_filter, 0);
        assert_eq!(s.maintenance_runs, 1);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn deferred_view_is_stale_until_refresh() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Deferred)
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        assert!(!m
            .view_contents("v")
            .unwrap()
            .contains(&Tuple::from([3, 100])));
        m.refresh("v").unwrap();
        assert!(m
            .view_contents("v")
            .unwrap()
            .contains(&Tuple::from([3, 100])));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn deferred_accumulates_and_cancels() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Deferred)
            .unwrap();
        let mut t1 = Transaction::new();
        t1.insert("R", [3, 10]).unwrap();
        m.execute(&t1).unwrap();
        let mut t2 = Transaction::new();
        t2.delete("R", [3, 10]).unwrap();
        m.execute(&t2).unwrap();
        m.refresh("v").unwrap();
        // Net no-op: view unchanged, and the refresh had nothing to do.
        assert!(!m
            .view_contents("v")
            .unwrap()
            .contains(&Tuple::from([3, 100])));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn on_demand_refreshes_at_query() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::OnDemand)
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        let v = m.query("v").unwrap();
        assert!(v.contains(&Tuple::from([3, 100])));
    }

    #[test]
    fn listeners_fire_with_deltas() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        m.on_change(
            "v",
            Arc::new(move |_name, delta| {
                h.fetch_add(delta.len(), Ordering::SeqCst);
            }),
        )
        .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Irrelevant change: no notification.
        let mut txn = Transaction::new();
        txn.insert("R", [99, 10]).unwrap();
        m.execute(&txn).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_and_unknown_views() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        assert!(matches!(
            m.register_view("v", view_expr(), RefreshPolicy::Immediate),
            Err(IvmError::DuplicateView(_))
        ));
        assert!(matches!(m.refresh("zzz"), Err(IvmError::UnknownView(_))));
    }

    #[test]
    fn multiple_views_one_transaction() {
        let mut m = manager_with_data();
        m.register_view("v1", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        m.register_view(
            "v2",
            SpjExpr::new(["S"], Atom::gt_const("C", 150).into(), None),
            RefreshPolicy::Immediate,
        )
        .unwrap();
        let mut txn = Transaction::new();
        txn.insert("S", [10, 300]).unwrap();
        m.execute(&txn).unwrap();
        m.verify_consistency().unwrap();
        assert!(m
            .view_contents("v2")
            .unwrap()
            .contains(&Tuple::from([10, 300])));
        assert!(m
            .view_contents("v1")
            .unwrap()
            .contains(&Tuple::from([1, 300])));
    }

    #[test]
    fn shared_manager_roundtrip() {
        let shared = SharedViewManager::new(manager_with_data());
        shared
            .write(|m| m.register_view("v", view_expr(), RefreshPolicy::Immediate))
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        shared.execute(&txn).unwrap();
        let v = shared.query("v").unwrap();
        assert!(v.contains(&Tuple::from([3, 100])));
        let count = shared.read(|m| m.view_names().count());
        assert_eq!(count, 1);
    }

    #[test]
    fn always_full_strategy_recomputes() {
        let mut m = manager_with_data().with_strategy(MaintenanceStrategy::AlwaysFull);
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        let s = m.stats("v").unwrap();
        assert_eq!(s.full_recomputes, 1);
        assert_eq!(s.maintenance_runs, 0);
        assert!(m
            .view_contents("v")
            .unwrap()
            .contains(&Tuple::from([3, 100])));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn full_strategy_still_notifies_listeners() {
        let mut m = manager_with_data().with_strategy(MaintenanceStrategy::AlwaysFull);
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        m.on_change(
            "v",
            Arc::new(move |_, d| {
                h.fetch_add(d.len(), Ordering::SeqCst);
            }),
        )
        .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cost_based_strategy_picks_differential_for_small_changes() {
        let mut m = manager_with_data().with_strategy(MaintenanceStrategy::CostBased);
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        let s = m.stats("v").unwrap();
        assert_eq!(s.maintenance_runs, 1);
        assert_eq!(s.full_recomputes, 0);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn cost_based_strategy_picks_full_for_wholesale_changes() {
        // Disjoint schemas: a cross product has no equijoin structure, so
        // no join-key index is derived and the unindexed crossover still
        // sends wholesale replacement to full re-evaluation.
        let mut m = ViewManager::new().with_strategy(MaintenanceStrategy::CostBased);
        m.create_relation("R", Schema::new(["A", "B"]).unwrap())
            .unwrap();
        m.create_relation("S", Schema::new(["C", "D"]).unwrap())
            .unwrap();
        m.load("R", (0..100i64).map(|i| [i, i % 10]).collect::<Vec<_>>())
            .unwrap();
        m.load("S", (0..10i64).map(|i| [i, i * 7]).collect::<Vec<_>>())
            .unwrap();
        m.register_view(
            "v",
            SpjExpr::new(["R", "S"], Condition::always_true(), None),
            RefreshPolicy::Immediate,
        )
        .unwrap();
        assert_eq!(m.database().relation("R").unwrap().index_count(), 0);
        // Replace nearly the whole of R in one transaction.
        let mut txn = Transaction::new();
        for i in 0..100i64 {
            txn.delete("R", [i, i % 10]).unwrap();
            txn.insert("R", [1000 + i, i % 10]).unwrap();
        }
        m.execute(&txn).unwrap();
        let s = m.stats("v").unwrap();
        assert_eq!(
            s.full_recomputes, 1,
            "wholesale change must trigger full re-eval"
        );
        assert_eq!(s.maintenance_runs, 0);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn cost_based_strategy_keeps_indexed_wholesale_differential() {
        // Same wholesale replacement, but R ⋈ S on B derives join-key
        // indexes at registration: the probe-priced differential estimate
        // now beats the full re-join, so maintenance stays incremental.
        let mut m = ViewManager::new().with_strategy(MaintenanceStrategy::CostBased);
        m.create_relation("R", Schema::new(["A", "B"]).unwrap())
            .unwrap();
        m.create_relation("S", Schema::new(["B", "C"]).unwrap())
            .unwrap();
        m.load("R", (0..100i64).map(|i| [i, i % 10]).collect::<Vec<_>>())
            .unwrap();
        m.load("S", (0..10i64).map(|i| [i, i * 7]).collect::<Vec<_>>())
            .unwrap();
        m.register_view(
            "v",
            SpjExpr::new(["R", "S"], Condition::always_true(), None),
            RefreshPolicy::Immediate,
        )
        .unwrap();
        assert!(m.database().relation("S").unwrap().index_count() > 0);
        let mut txn = Transaction::new();
        for i in 0..100i64 {
            txn.delete("R", [i, i % 10]).unwrap();
            txn.insert("R", [1000 + i, i % 10]).unwrap();
        }
        m.execute(&txn).unwrap();
        let s = m.stats("v").unwrap();
        assert_eq!(
            s.maintenance_runs, 1,
            "indexed wholesale stays differential"
        );
        assert_eq!(s.full_recomputes, 0);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn tree_view_maintained_through_manager() {
        let mut m = manager_with_data();
        // (R ⋈ S) ∪ (R ⋈ S with C > 150): counted union over a join.
        let joined =
            ivm_relational::expr::Expr::base("R").join(ivm_relational::expr::Expr::base("S"));
        let expr = joined
            .clone()
            .union(joined.select(Atom::gt_const("C", 150)));
        m.register_tree_view("t", expr).unwrap();
        assert_eq!(m.view_contents("t").unwrap().total_count(), 3); // 2 + 1

        let mut txn = Transaction::new();
        txn.insert("R", [3, 20]).unwrap(); // joins (20,200): counts in both branches
        txn.delete("S", [10, 100]).unwrap();
        m.execute(&txn).unwrap();
        m.verify_consistency().unwrap();
        let t = m.view_contents("t").unwrap();
        assert_eq!(t.count(&Tuple::from([3, 20, 200])), 2);
        assert!(!t.contains(&Tuple::from([1, 10, 100])));
        let s = m.stats("t").unwrap();
        assert_eq!(s.maintenance_runs, 1);
    }

    #[test]
    fn tree_view_listener_and_query() {
        let mut m = manager_with_data();
        m.register_tree_view("t", ivm_relational::expr::Expr::base("R").project(["B"]))
            .unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        m.on_change(
            "t",
            Arc::new(move |_, d| {
                h.fetch_add(d.len(), Ordering::SeqCst);
            }),
        )
        .unwrap();
        let mut txn = Transaction::new();
        txn.insert("R", [9, 90]).unwrap();
        m.execute(&txn).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        let q = m.query("t").unwrap();
        assert!(q.contains(&Tuple::from([90])));
        // Names include both kinds; duplicate names rejected across kinds.
        assert_eq!(m.view_names().count(), 1);
        assert!(matches!(
            m.register_view("t", view_expr(), RefreshPolicy::Immediate),
            Err(IvmError::DuplicateView(_))
        ));
        assert!(matches!(
            m.register_tree_view("t", ivm_relational::expr::Expr::base("R")),
            Err(IvmError::DuplicateView(_))
        ));
    }

    #[test]
    fn manager_options_bundle_applies() {
        let opts = ManagerOptions::sequential().with_threads(4);
        assert_eq!(opts.threads, 4);
        let m = ViewManager::new().with_manager_options(ManagerOptions {
            strategy: MaintenanceStrategy::AlwaysFull,
            filtering: false,
            threads: 2,
            ..ManagerOptions::default()
        });
        assert_eq!(m.strategy, MaintenanceStrategy::AlwaysFull);
        assert!(!m.filtering_enabled);
        assert_eq!(m.options.threads, 2);
    }

    #[test]
    fn thread_count_does_not_change_view_contents() {
        let run = |threads: usize| {
            let mut m = manager_with_data().with_threads(threads);
            m.register_view("v", view_expr(), RefreshPolicy::Immediate)
                .unwrap();
            for i in 0..30i64 {
                let mut txn = Transaction::new();
                txn.insert("R", [3 + i, 10 * (i % 3 + 1)]).unwrap();
                if i % 4 == 0 {
                    txn.insert("S", [10 * (i % 3 + 1), 500 + i]).unwrap();
                }
                m.execute(&txn).unwrap();
            }
            m.verify_consistency().unwrap();
            m.view_contents("v").unwrap().clone()
        };
        let seq = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn snapshots_publish_at_commit_points() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let hub = m.snapshots();
        let armed_epoch = hub.epoch();
        assert!(hub.is_armed());
        let before = hub.latest();
        assert_eq!(before.len(), 1);
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        let after = hub.latest();
        assert_eq!(after.epoch(), armed_epoch + 1);
        assert!(after.get("v").unwrap().contains(&Tuple::from([3, 100])));
        // The pinned pre-transaction snapshot is unchanged.
        assert!(!before.get("v").unwrap().contains(&Tuple::from([3, 100])));
    }

    #[test]
    fn snapshot_reuses_allocations_for_untouched_views() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        m.register_view(
            "w",
            SpjExpr::new(["S"], Atom::gt_const("C", 150).into(), None),
            RefreshPolicy::Immediate,
        )
        .unwrap();
        let hub = m.snapshots();
        let before = hub.latest();
        // Touches R only: `w` (over S) must share its allocation.
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        let after = hub.latest();
        assert!(std::ptr::eq(
            before.get("w").unwrap(),
            after.get("w").unwrap()
        ));
        assert!(!std::ptr::eq(
            before.get("v").unwrap(),
            after.get("v").unwrap()
        ));
    }

    #[test]
    fn deferred_view_snapshot_catches_up_on_refresh() {
        let mut m = manager_with_data();
        m.register_view("v", view_expr(), RefreshPolicy::Deferred)
            .unwrap();
        let hub = m.snapshots();
        let mut txn = Transaction::new();
        txn.insert("R", [3, 10]).unwrap();
        m.execute(&txn).unwrap();
        // Deferred: the snapshot mirrors the stale materialization.
        assert!(!hub
            .latest()
            .get("v")
            .unwrap()
            .contains(&Tuple::from([3, 100])));
        m.refresh("v").unwrap();
        assert!(hub
            .latest()
            .get("v")
            .unwrap()
            .contains(&Tuple::from([3, 100])));
    }

    #[test]
    fn injected_crash_publishes_nothing() {
        let dir = ivm_storage::temp::scratch_dir("snap-no-publish");
        let plan = Arc::new(ivm_storage::FailpointPlan::new());
        let mut m = ViewManager::open(&dir).unwrap();
        m.create_relation("R", Schema::new(["A", "B"]).unwrap())
            .unwrap();
        m.create_relation("S", Schema::new(["B", "C"]).unwrap())
            .unwrap();
        m.register_view("v", view_expr(), RefreshPolicy::Immediate)
            .unwrap();
        let hub = m.snapshots();
        let epoch_before = hub.epoch();
        m.set_failpoints(Arc::clone(&plan));
        plan.arm(
            ivm_storage::fault::FP_APPLY_MID,
            0,
            ivm_storage::FailpointAction::Crash,
        );
        let mut txn = Transaction::new();
        txn.insert("R", [1, 10]).unwrap();
        assert!(m.execute(&txn).is_err());
        // The crash hit mid-apply: readers must still see the old state.
        assert_eq!(hub.epoch(), epoch_before);
        assert!(hub.latest().get("v").unwrap().is_empty());
        drop(m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_after_registration_maintains_view() {
        let mut m = ViewManager::new();
        m.create_relation("R", Schema::new(["A"]).unwrap()).unwrap();
        m.register_view(
            "v",
            SpjExpr::new(["R"], Atom::lt_const("A", 10).into(), None),
            RefreshPolicy::Immediate,
        )
        .unwrap();
        m.load("R", [[1], [20]]).unwrap();
        let v = m.view_contents("v").unwrap();
        assert!(v.contains(&Tuple::from([1])));
        assert!(!v.contains(&Tuple::from([20])));
        m.verify_consistency().unwrap();
    }
}
